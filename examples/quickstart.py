#!/usr/bin/env python3
"""Quickstart: build and run a tiny Nimbus job with execution templates.

The job seeds four data partitions, then repeatedly doubles each partition
in parallel and reduces them into a sum, looping *on the returned value* —
a data-dependent loop, the thing static data flow systems cannot express.

Run:  python examples/quickstart.py
"""

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import FunctionRegistry, NimbusCluster

NUM_PARTITIONS = 4
DATA = list(range(1, NUM_PARTITIONS + 1))  # object ids of the partitions
TOTAL = 100  # object id of the reduced sum


def build_registry() -> FunctionRegistry:
    """Register the application's task functions.

    Each function gets a real Python body (so the example computes real
    values) and a virtual duration (what the simulated cluster charges).
    """
    registry = FunctionRegistry()

    def init(ctx):
        ctx.write(ctx.write_set[0], 1.0)

    def double(ctx):
        ctx.write(ctx.write_set[0], 2.0 * ctx.read(ctx.read_set[0]))

    def total(ctx):
        ctx.write(ctx.write_set[0], sum(ctx.reads()))

    registry.register("init", fn=init, duration=1e-3)
    registry.register("double", fn=double, duration=10e-3)
    registry.register("total", fn=total, duration=2e-3)
    return registry


def program(job):
    """The driver program: ordinary Python control flow over blocks."""
    # 1. declare the mutable data objects (one per partition + the sum)
    objects = [(oid, "data", i, 8, None) for i, oid in enumerate(DATA)]
    objects.append((TOTAL, "total", 0, 8, None))
    yield job.define(objects)

    # 2. an init block, run once
    init_block = BlockSpec("init", [StageSpec("init", [
        LogicalTask("init", read=(), write=(oid,)) for oid in DATA
    ])])
    yield job.run(init_block)

    # 3. the iteration block: double every partition, reduce, return sum
    loop_block = BlockSpec("loop", [
        StageSpec("double", [
            LogicalTask("double", read=(oid,), write=(oid,)) for oid in DATA
        ]),
        StageSpec("total", [
            LogicalTask("total", read=tuple(DATA), write=(TOTAL,)),
        ]),
    ], returns={"sum": TOTAL})

    # 4. loop until the reduced value crosses a threshold (data-dependent!)
    value = 0.0
    iteration = 0
    while value < 1000.0:
        result = yield job.run(loop_block)
        value = result["sum"]
        iteration += 1
        print(f"  iteration {iteration:2d}: sum = {value:8.1f} "
              f"(virtual time {job.now * 1000:7.2f} ms)")


def main() -> None:
    print("Quickstart: 2 workers, execution templates enabled")
    cluster = NimbusCluster(num_workers=2, program=program,
                            registry=build_registry(), use_templates=True)
    cluster.run_until_finished(max_seconds=60.0)

    metrics = cluster.metrics
    print("\nControl-plane summary:")
    print(f"  controller templates installed: "
          f"{metrics.count('controller_templates_installed'):.0f}")
    print(f"  template instantiations:        "
          f"{metrics.count('template_instantiations'):.0f}")
    print(f"  auto-validations (fast path):   "
          f"{metrics.count('auto_validations'):.0f}")
    print(f"  full validations:               "
          f"{metrics.count('full_validations'):.0f}")
    print(f"  tasks executed:                 "
          f"{metrics.count('tasks_executed'):.0f}")
    print(f"  total virtual time:             {cluster.sim.now * 1000:.2f} ms")


if __name__ == "__main__":
    main()
