#!/usr/bin/env python3
"""Dynamic scheduling with template edits (cf. Figures 9 and 10).

Runs logistic regression and, mid-job, (1) migrates 5 % of the tasks with
template *edits*, then (2) has the "cluster manager" evict half the
workers (templates regenerate), then (3) return them (cached templates are
revalidated and reused). Prints the per-iteration timeline.

Run:  python examples/dynamic_migration.py
"""

from repro.analysis import iteration_breakdowns
from repro.apps import LRApp, LRSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P


def main() -> None:
    num_workers = 16
    spec = LRSpec(num_workers=num_workers, data_bytes=10e9, iterations=1)
    app = LRApp(spec)
    box = {}
    state = {}

    def migrate(controller):
        moves = [(i, (i + 1) % num_workers)
                 for i in range(0, spec.num_partitions,
                                spec.num_partitions // 8)]
        mechanism = controller.migrate_tasks("lr.iteration", moves)
        print(f"  -> migrated {len(moves)} tasks via {mechanism}")

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        evicted = list(range(num_workers // 2, num_workers))
        controller.evict_workers(evicted)
        print(f"  -> cluster manager revoked workers {evicted[0]}..{evicted[-1]}")

    def restore(controller):
        controller.restore_workers(
            list(range(num_workers // 2, num_workers)),
            state["placement"], state["versions"])
        print("  -> cluster manager returned the workers; cached templates "
              "revalidate")

    def program(job):
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        controller = box["cluster"].controller
        for i in range(24):
            if i == 8:
                controller.deliver(P.ManagerDirective(migrate))
            elif i == 12:
                controller.deliver(P.ManagerDirective(evict))
            elif i == 18:
                controller.deliver(P.ManagerDirective(restore))
            yield job.run(app.iteration_block, {"step": spec.step_size})

    cluster = NimbusCluster(num_workers, program, registry=app.registry,
                            use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e5)

    print("\nPer-iteration timeline (cf. Fig. 9):")
    rows = iteration_breakdowns(cluster.metrics, block_id="lr.iteration")
    for i, row in enumerate(rows):
        note = {8: "  <- 12.5% migrated via edits",
                12: "  <- half the workers evicted",
                18: "  <- workers restored"}.get(i, "")
        print(f"  iter {i:2d}: total {row.total * 1000:8.1f} ms  "
              f"(compute {row.compute * 1000:7.1f} ms, "
              f"control {row.control * 1000:7.1f} ms, {row.mode}){note}")

    metrics = cluster.metrics
    print(f"\nEdits applied: {metrics.count('edits_applied'):.0f} "
          f"(41 us each in the paper's Table 3)")
    print(f"Worker-template regenerations: "
          f"{metrics.count('worker_template_regenerations'):.0f}")
    print(f"Patches: {metrics.count('patches_computed'):.0f} computed, "
          f"{metrics.count('patch_cache_hits'):.0f} cache hits")


if __name__ == "__main__":
    main()
