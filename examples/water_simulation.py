#!/usr/bin/env python3
"""The PhysBAM-proxy water simulation: a triply nested, data-dependent job.

One frame of the particle-levelset water simulation (scaled down): an
adaptive CFL-bounded substep loop, each substep running 21 computational
stages over 40+ variables, with a conjugate-gradient projection loop whose
iteration count depends on a residual returned through the control plane,
plus a particle-reseeding branch every few substeps.

Run:  python examples/water_simulation.py
"""

from collections import Counter

from repro.apps import WaterApp, WaterSpec
from repro.nimbus import NimbusCluster


def main() -> None:
    spec = WaterSpec(
        num_workers=8,
        partitions_per_worker=2,
        scale=0.02,            # scaled-down stage durations
        frame_duration=0.01,   # a short frame: ~5 substeps
        reseed_every=3,
    )
    app = WaterApp(spec)
    print(f"Simulation variables: {app.num_variables} "
          f"(paper: 'over 40 different variables')")
    print(f"Computational stages per substep: 21")
    print(f"Expected substeps this frame: {spec.expected_substeps()}\n")

    cluster = NimbusCluster(spec.num_workers, app.program(),
                            registry=app.registry, use_templates=True)
    cluster.run_until_finished(max_seconds=1e5)

    blocks = Counter(iv.labels["block_id"]
                     for iv in cluster.metrics.intervals["block"])
    print("Blocks executed:")
    for block_id, count in sorted(blocks.items()):
        print(f"  {block_id:15s} x {count}")

    cg_per_substep = []
    current = 0
    for iv in cluster.metrics.intervals["block"]:
        if iv.labels["block_id"] == "water.cg":
            current += 1
        elif iv.labels["block_id"] == "water.post":
            cg_per_substep.append(current)
            current = 0
    print(f"\nCG iterations per substep (data-dependent): {cg_per_substep}")

    metrics = cluster.metrics
    print(f"\nFrame virtual time: {cluster.sim.now:.3f} s")
    print(f"Tasks executed: {metrics.count('tasks_executed'):.0f}")
    print("Control plane:")
    print(f"  auto-validations (inner-loop fast path): "
          f"{metrics.count('auto_validations'):.0f}")
    print(f"  full validations (block transitions):    "
          f"{metrics.count('full_validations'):.0f}")
    print(f"  patches computed: {metrics.count('patches_computed'):.0f}, "
          f"patch-cache hits: {metrics.count('patch_cache_hits'):.0f}")


if __name__ == "__main__":
    main()
