#!/usr/bin/env python3
"""Strong scaling of logistic regression across control planes.

A scaled-down Figure 7a: the same 100 GB logistic-regression job (tasks are
virtual-time spin waits at the calibrated C++ rate, like the paper's
"-opt" variants) on growing worker counts under three control planes —
Nimbus with execution templates, a Naiad-like static data flow, and a
Spark-like centralized scheduler.

Run:  python examples/lr_scaling.py          (~1 minute)
      python examples/lr_scaling.py --full   (the paper's 20/50/100 points)
"""

import sys

from repro.analysis import mean_iteration_time, render_series, task_throughput
from repro.apps import LRApp, LRSpec
from repro.baselines import NaiadCluster, SparkCluster
from repro.nimbus import NimbusCluster

SYSTEMS = [
    ("Spark-opt", SparkCluster),
    ("Naiad-opt", NaiadCluster),
    ("Nimbus", NimbusCluster),
]


def run_one(cls, num_workers: int, iterations: int = 14):
    app = LRApp(LRSpec(num_workers=num_workers, iterations=iterations))
    cluster = cls(num_workers, app.program(blocking=False),
                  registry=app.registry)
    cluster.run_until_finished(max_seconds=1e5)
    skip = iterations // 2
    return (mean_iteration_time(cluster.metrics, "lr.iteration", skip=skip),
            task_throughput(cluster.metrics, "lr.iteration", skip=skip))


def main() -> None:
    full = "--full" in sys.argv
    worker_counts = [20, 50, 100] if full else [10, 20, 40]
    times = {name: [] for name, _ in SYSTEMS}
    throughputs = {name: [] for name, _ in SYSTEMS}
    for n in worker_counts:
        for name, cls in SYSTEMS:
            iteration_s, tput = run_one(cls, n)
            times[name].append(iteration_s)
            throughputs[name].append(tput)
            print(f"  {name:10s} @ {n:3d} workers: "
                  f"{iteration_s * 1000:8.1f} ms/iteration, "
                  f"{tput:9.0f} tasks/s")
    print()
    print(render_series("Iteration time vs. workers (cf. Fig. 7a)",
                        "workers", worker_counts, times, unit="s"))
    print()
    print(render_series("Task throughput vs. workers (cf. Fig. 8)",
                        "workers", worker_counts, throughputs, unit="tasks/s"))
    print("\nExpected shape: Nimbus and Naiad scale out nearly linearly;")
    print("Spark's centralized scheduler saturates near 6,000 tasks/s and")
    print("its iteration time grows with parallelism.")


if __name__ == "__main__":
    main()
