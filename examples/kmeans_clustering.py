#!/usr/bin/env python3
"""K-means clustering with real numerics on the simulated cluster.

Runs k-means with actual numpy task bodies (``real_compute=True``) until
the inertia improvement drops below a tolerance — a data-dependent loop
driven by values returned through the control plane — and verifies the
learned centroids against the generating centers.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.apps import KMeansApp, KMeansSpec
from repro.apps.datasets import make_cluster_data
from repro.nimbus import NimbusCluster


def main() -> None:
    spec = KMeansSpec(
        num_workers=4,
        data_bytes=4e9,
        partitions_per_worker=2,
        dim=2,
        num_clusters=4,
        real_compute=True,
        rows_per_partition=250,
    )
    app = KMeansApp(spec)
    cluster = NimbusCluster(spec.num_workers,
                            app.convergence_program(tolerance=1e-3),
                            registry=app.registry, use_templates=True)
    cluster.run_until_finished(max_seconds=1e4)

    inertia = [iv.labels["results"]["inertia"]
               for iv in cluster.metrics.intervals["block"]
               if iv.labels["block_id"] == "km.iteration"]
    print("Inertia per iteration:")
    for i, value in enumerate(inertia, start=1):
        print(f"  iteration {i:2d}: {value:12.2f}")

    learned = cluster.workers[0].store.get(app.centroids)["centroids"]
    _parts, centers = make_cluster_data(
        spec.num_partitions, spec.rows_per_partition, spec.dim,
        spec.num_clusters, spec.seed)
    print("\nTrue center -> nearest learned centroid (distance):")
    for center in centers:
        distances = np.linalg.norm(learned - center, axis=1)
        nearest = learned[distances.argmin()]
        print(f"  {np.round(center, 3)} -> {np.round(nearest, 3)} "
              f"(d={distances.min():.4f})")

    metrics = cluster.metrics
    print(f"\nConverged in {len(inertia)} iterations, "
          f"virtual time {cluster.sim.now * 1000:.1f} ms")
    print(f"Template fast path: {metrics.count('auto_validations'):.0f} "
          f"auto-validations, {metrics.count('full_validations'):.0f} full")


if __name__ == "__main__":
    main()
