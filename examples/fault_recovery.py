#!/usr/bin/env python3
"""Checkpointing and failure recovery (§4.4).

Runs an iterative job with automatic checkpoints, kills a worker mid-run,
and shows the controller detecting the failure (missed heartbeats),
halting the survivors, reloading the checkpoint, and the driver replaying
to resume — finishing with exactly the values an undisturbed run produces.

Run:  python examples/fault_recovery.py
"""

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import FunctionRegistry, NimbusCluster

DATA = [1, 2, 3, 4]
TOTAL = 50


def build_registry() -> FunctionRegistry:
    registry = FunctionRegistry()

    def init(ctx):
        ctx.write(ctx.write_set[0], 1.0)

    def grow(ctx):
        ctx.write(ctx.write_set[0], 1.5 * ctx.read(ctx.read_set[0]) + 1.0)

    def total(ctx):
        ctx.write(ctx.write_set[0], sum(ctx.reads()))

    registry.register("init", fn=init, duration=1e-3)
    registry.register("grow", fn=grow, duration=20e-3)
    registry.register("total", fn=total, duration=2e-3)
    return registry


def make_program(box, fail_at_iteration):
    init_block = BlockSpec("init", [StageSpec("init", [
        LogicalTask("init", read=(), write=(oid,)) for oid in DATA
    ])])
    loop_block = BlockSpec("loop", [
        StageSpec("grow", [
            LogicalTask("grow", read=(oid,), write=(oid,)) for oid in DATA
        ]),
        StageSpec("total", [
            LogicalTask("total", read=tuple(DATA), write=(TOTAL,)),
        ]),
    ], returns={"sum": TOTAL})

    def program(job):
        objects = [(oid, "data", i, 8, None) for i, oid in enumerate(DATA)]
        objects.append((TOTAL, "total", 0, 8, None))
        yield job.define(objects)
        yield job.run(init_block)
        for i in range(12):
            if i == fail_at_iteration and box.get("kill"):
                victim = box["cluster"].workers[2]
                if not victim._dead:
                    print(f"  !! killing worker 2 at virtual time "
                          f"{job.now:.3f} s (iteration {i})")
                    victim.fail()
            result = yield job.run(loop_block)
            print(f"  iteration {i:2d}: sum = {result['sum']:10.2f} "
                  f"(t = {job.now:.3f} s)")

    return program


def run(kill: bool) -> float:
    box = {"kill": kill}
    cluster = NimbusCluster(
        num_workers=3,
        program=make_program(box, fail_at_iteration=7),
        registry=build_registry(),
        use_templates=True,
        checkpoint_every=3,
        heartbeat_timeout=0.4,
    )
    box["cluster"] = cluster
    cluster.start_fault_tolerance(heartbeat_interval=0.1, check_interval=0.2)
    cluster.run_until_finished(max_seconds=1e4)
    metrics = cluster.metrics
    if kill:
        print(f"\n  checkpoints committed: "
              f"{metrics.count('checkpoints_committed'):.0f}")
        print(f"  recoveries completed:  "
              f"{metrics.count('recoveries_completed'):.0f}")
        print(f"  driver replays:        {metrics.count('driver_replays'):.0f}")
    holders = cluster.controller.directory.holders_of_latest(TOTAL)
    return cluster.workers[min(holders)].store.get(TOTAL)


def main() -> None:
    print("Run A: undisturbed")
    clean = run(kill=False)
    print("\nRun B: worker 2 dies mid-job")
    recovered = run(kill=True)
    print(f"\nFinal sums: undisturbed = {clean:.4f}, "
          f"recovered = {recovered:.4f}")
    assert abs(clean - recovered) < 1e-9, "recovery changed the results!"
    print("Recovery reproduced the undisturbed results exactly.")


if __name__ == "__main__":
    main()
