"""Figure 8 — task throughput of Nimbus and Spark as workers increase.

Paper: Spark saturates at ~6,000 tasks/second regardless of cluster size;
Nimbus grows superlinearly to ~128,000 tasks/second at 100 workers (more
workers simultaneously create more tasks *and* make each task shorter).
"""

from repro.analysis import render_series, task_throughput
from repro.apps import LRApp, LRSpec
from repro.baselines import SparkCluster
from repro.nimbus import NimbusCluster

from conftest import emit, once


def run_throughput(cluster_cls, num_workers, iterations=14):
    app = LRApp(LRSpec(num_workers=num_workers, iterations=iterations))
    cluster = cluster_cls(num_workers, app.program(blocking=False),
                          registry=app.registry)
    cluster.run_until_finished(max_seconds=1e6)
    return task_throughput(cluster.metrics, "lr.iteration",
                           skip=iterations // 2)


def test_fig08_task_throughput(benchmark, paper_scale):
    worker_counts = ([10, 20, 40, 60, 80, 100] if paper_scale
                     else [10, 20, 30])

    def sweep():
        return (
            [run_throughput(SparkCluster, n) for n in worker_counts],
            [run_throughput(NimbusCluster, n) for n in worker_counts],
        )

    spark, nimbus = once(benchmark, sweep)

    emit("")
    emit(render_series(
        "Figure 8 — task throughput vs workers",
        "workers", worker_counts,
        {"Spark (tasks/s)": spark, "Nimbus (tasks/s)": nimbus}))
    emit("Paper: Spark saturates ~6,000 tasks/s; Nimbus reaches ~128,000 "
         "tasks/s at 100 workers (superlinear).")

    # Spark saturates: throughput stops growing and never exceeds ~6,100
    assert max(spark) < 6100
    if paper_scale:
        assert spark[-1] < 1.25 * spark[-3]  # flat tail
        # Nimbus keeps growing, superlinearly
        for before, after in zip(nimbus, nimbus[1:]):
            assert after > before
        scale = worker_counts[-1] / worker_counts[0]
        assert nimbus[-1] / nimbus[0] > scale  # superlinear growth
        assert nimbus[-1] > 100_000
