"""Figure 10 — task migration every 5 iterations: Nimbus edits vs Naiad
reinstalls.

Paper: logistic regression over 100 workers, migrating 5 % of the tasks
every 5 iterations. Nimbus applies edits (~35 ms per migration) with
negligible per-iteration overhead; Naiad must reinstall the whole data
flow (~230 ms) for any change, so Nimbus finishes 20 iterations almost
twice as fast.
"""

from repro.analysis import render_table
from repro.apps import LRApp, LRSpec
from repro.baselines import NaiadCluster
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from conftest import emit, once

ITERATIONS = 20
MIGRATE_EVERY = 5
WARMUP = 4  # template installation iterations before measurement starts


def run_baseline(cluster_cls, num_workers):
    """20 iterations with no migrations (for the paper's Naiad methodology:
    'the curve here is simulated from the numbers in Table 3 and Fig 7a')."""
    spec = LRSpec(num_workers=num_workers, iterations=WARMUP + ITERATIONS)
    app = LRApp(spec)

    def program(job):
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        for _ in range(WARMUP + ITERATIONS):
            yield job.run(app.iteration_block, {"step": spec.step_size})

    cluster = cluster_cls(num_workers, program, registry=app.registry)
    cluster.run_until_finished(max_seconds=1e6)
    ends = sorted(iv.end for iv in cluster.metrics.intervals["driver_block"]
                  if iv.labels["block_id"] == "lr.iteration")
    return ends[-1] - ends[WARMUP - 1]


def run_with_migrations(cluster_cls, num_workers, fraction=0.05):
    spec = LRSpec(num_workers=num_workers,
                  iterations=WARMUP + ITERATIONS)
    app = LRApp(spec)
    box = {}
    count = max(1, int(fraction * spec.num_partitions))
    state = {"round": 0}

    def migrate(controller):
        # rotate a different 5% slice each time so moves never collide
        offset = state["round"]
        state["round"] += 1
        stride = spec.num_partitions // count
        moves = []
        wts_key = ("lr.iteration", controller.current_version["lr.iteration"])
        wts = controller.worker_templates[wts_key]
        for i in range(count):
            task = (i * stride + offset) % spec.num_partitions
            src = wts.task_locations[task][0]
            moves.append((task, (src + num_workers // 2) % num_workers))
        controller.migrate_tasks("lr.iteration", moves)

    def program(job):
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        controller = box["cluster"].controller
        for _ in range(WARMUP):  # install templates before measuring
            yield job.run(app.iteration_block, {"step": spec.step_size})
        for i in range(ITERATIONS):
            if i % MIGRATE_EVERY == 0:  # 4 rounds: iterations 0/5/10/15
                controller.deliver(P.ManagerDirective(migrate))
            yield job.run(app.iteration_block, {"step": spec.step_size})

    cluster = cluster_cls(num_workers, program, registry=app.registry)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    # span of the 20 measured iterations (after the warm-up window)
    ends = sorted(iv.end for iv in cluster.metrics.intervals["driver_block"]
                  if iv.labels["block_id"] == "lr.iteration")
    return ends[-1] - ends[WARMUP - 1], cluster.metrics


def test_fig10_migration_overhead(benchmark, paper_scale):
    num_workers = 100 if paper_scale else 20

    rounds = ITERATIONS // MIGRATE_EVERY  # 4 migration events

    def compare():
        nimbus_time, nimbus_metrics = run_with_migrations(
            NimbusCluster, num_workers)
        naiad_measured, naiad_metrics = run_with_migrations(
            NaiadCluster, num_workers)
        naiad_base = run_baseline(NaiadCluster, num_workers)
        return (nimbus_time, nimbus_metrics, naiad_measured, naiad_metrics,
                naiad_base)

    (nimbus_time, nimbus_metrics, naiad_measured, naiad_metrics,
     naiad_base) = once(benchmark, compare)

    # The paper's Naiad curve is *simulated* from Table 3 and Fig. 7a
    # ("current Naiad implementation does not support any data flow
    # flexibility once the job starts"). Reproduce the same arithmetic:
    # steady iterations + one full 230 ms installation per change.
    reinstall_s = 0.230
    naiad_paper_method = naiad_base + rounds * reinstall_s

    emit("")
    emit(render_table(
        f"Figure 10 — 20 LR iterations with 5% migration every 5 "
        f"({num_workers} workers)",
        ["system", "total time (s)", "mechanism", "events"],
        [
            ["Nimbus", round(nimbus_time, 3), "template edits",
             f"{nimbus_metrics.count('edits_applied'):.0f} edit ops"],
            ["Naiad (paper methodology)", round(naiad_paper_method, 3),
             "full dataflow reinstall",
             f"{rounds} reinstalls x 230 ms (Table 3)"],
            ["Naiad (this simulator, reinstalls overlap)",
             round(naiad_measured, 3), "full dataflow reinstall",
             f"{naiad_metrics.count('naiad_installs'):.0f} installs"],
        ]))
    ratio = naiad_paper_method / nimbus_time
    emit(f"Naiad/Nimbus completion ratio: {ratio:.2f}x "
         f"(paper: 'almost twice as fast', ~1.9x)")

    assert nimbus_metrics.count("edits_applied") > 0
    assert naiad_metrics.count("naiad_installs") >= 1 + rounds
    assert nimbus_time < naiad_measured
    if paper_scale:
        assert ratio > 1.4
