"""Shared benchmark utilities.

Every benchmark prints the rows/series of the paper table or figure it
regenerates (with the paper's numbers alongside), so ``pytest benchmarks/
--benchmark-only`` output can be compared against the paper line by line.

Scale knob: set ``REPRO_BENCH_SCALE=small`` for a quick pass (smaller
clusters, fewer iterations) or leave the default (``paper``) to run the
paper's configurations. Simulations run in virtual time either way — the
knob only bounds the wall-clock of the event loop.
"""

import os
import sys

import pytest

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "paper") != "small"

_REPORTS = []


def emit(text: str) -> None:
    """Queue a line of experiment output.

    Collected lines are printed in the terminal summary (which pytest does
    not capture), so ``pytest benchmarks/ --benchmark-only | tee ...``
    records every regenerated table and figure.
    """
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "================ reproduced tables and figures ================")
    for line in _REPORTS:
        terminalreporter.write_line(line)


@pytest.fixture
def paper_scale() -> bool:
    return PAPER_SCALE


def anchor_assignment(app):
    """Task->worker assignment by the controller's anchor rule (the home
    of each task's first written object), matching what a capture run
    records."""
    home = {oid: h for oid, _n, _p, _s, h in app.variables.definitions}
    assignment = []
    for _stage, task in app.iteration_block.all_tasks():
        anchor = task.write[0] if task.write else task.read[0]
        assignment.append(home[anchor] if home[anchor] is not None else 0)
    return assignment


def once(benchmark, fn, *args, **kwargs):
    """Run an (expensive, virtual-time) simulation once under
    pytest-benchmark, returning its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
