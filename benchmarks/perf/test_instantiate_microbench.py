"""Instantiation microbenchmark: compiled arena refill vs interpreted
command construction, in both time (ops/sec) and space (tracemalloc bytes
per instantiation).

The compiled path's whole premise is that steady-state instantiation
should touch only per-instance fields of pooled Command objects. These
tests pin that claim down quantitatively:

* the compiled path must beat the interpreted path on ops/sec with a
  wide margin (4x asserted; ~20x measured on an idle machine);
* a steady-state compiled instantiation must allocate a small fraction
  of the interpreted path's bytes (the interpreted path builds every
  Command, before-list, and tag tuple from scratch each time).
"""

from repro.perf import (
    bench_instantiate,
    bench_instantiate_compiled,
    instantiate_allocations,
)

NUM_WORKERS = 50


def test_compiled_instantiation_is_faster():
    interpreted = bench_instantiate(NUM_WORKERS)
    compiled = bench_instantiate_compiled(NUM_WORKERS)
    assert compiled >= 4.0 * interpreted, (
        f"compiled instantiation only {compiled / interpreted:.1f}x the "
        f"interpreted rate ({compiled:,.0f} vs {interpreted:,.0f} ops/s)"
    )


def test_compiled_instantiation_allocates_less():
    alloc = instantiate_allocations(NUM_WORKERS)
    interpreted = alloc["interpreted_bytes_per_instantiation"]
    compiled = alloc["compiled_bytes_per_instantiation"]
    assert interpreted > 0
    # tags and cids still allocate a few tuples/ints; the Command objects,
    # before lists, and registration dicts must not be rebuilt
    assert compiled <= interpreted // 4, (
        f"compiled path allocates {compiled} B per instantiation vs "
        f"{interpreted} B interpreted — pooling is not paying off"
    )
