"""Wall-clock perf suite: times fig07/fig08, guards virtual-time fidelity,
and maintains the repo-root ``BENCH_control_plane.json`` trajectory file.

Run with ``PYTHONPATH=src python -m pytest benchmarks/perf/ -q``; set
``REPRO_BENCH_SCALE=small`` for the CI smoke configuration.

Three guarantees, in order:

1. **fidelity** — the optimized simulator computes the exact same virtual
   results (steady-state iteration times, control-plane decision counters)
   as recorded when the fast path landed;
2. **no regression** — wall-clock must not degrade more than 2x against
   the committed BENCH numbers;
3. **trajectory** — the BENCH file is rewritten with this run's numbers so
   the history travels with the repository (CI uploads it as an artifact).
"""

import os

import pytest

from repro.perf import (
    MODE_SCALES,
    SCALES,
    bench_path,
    load_bench,
    run_harness,
    write_bench,
)

SCALE = "small" if os.environ.get("REPRO_BENCH_SCALE") == "small" else "paper"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

#: steady-state mean iteration times recorded when the control-plane fast
#: path landed. LR at 50/100 workers is bit-identical to the pre-optimization
#: seed; the 10/20-worker entries (and k-means at 10/20) differ from the seed
#: by 1 ulp because dispatch batching shifts warm-up *absolute* times, which
#: changes the float rounding of the interval subtraction — the virtual
#: timeline itself is unchanged (see DESIGN.md "Performance").
GOLDEN_ITERATION = {
    "fig07_lr": {
        10: 0.41346526557377467,
        20: 0.20854723278689025,
        50: 0.08559641311475552,
        100: 0.044612806557382534,
        # schema v6: the strong-scaling stress row, 10x the paper's max
        1000: 0.15197394285638868,
    },
    "fig08_kmeans": {
        10: 0.6174654584615371,
        20: 0.3169846892307699,
        50: 0.1366962276923105,
        100: 0.07660007384614964,
    },
    "patch_rotation": {
        10: 0.007280121600000076,
        20: 0.00828037759999963,
        50: 0.011281145600001144,
        100: 0.016282425600003925,
    },
}

#: control-plane decision counters are scale-keyed only through task counts
GOLDEN_TASKS = {10: 12211.0, 20: 24365.0, 50: 60827.0, 100: 121555.0,
                1000: 1214477.0}
GOLDEN_DECISIONS = {
    "auto_validations": 10.0,
    "full_validations": 1.0,
    "template_instantiations": 13.0,
    "patches_computed": 1.0,
    "patch_cache_hits": 0.0,
}

#: the rotation loop has one task per partition per block (4 per worker),
#: validates every steady round, patches once, and hits the cache after
GOLDEN_ROTATION_TASKS = {10: 1120.0, 20: 2240.0, 50: 5600.0, 100: 11200.0}
GOLDEN_ROTATION_DECISIONS = {
    "auto_validations": 0.0,
    "full_validations": 22.0,
    "template_instantiations": 26.0,
    "patches_computed": 1.0,
    "patch_cache_hits": 10.0,
}

#: schema v5: the multi-tenant job_arrival serving run. Both metrics are
#: pure virtual-time quantities (task count / virtual seconds; nearest-rank
#: p95 over virtual job latencies), so they gate exactly — any scheduling,
#: fair-share, or admission change that shifts the co-run timeline shows
#: up here.
GOLDEN_SERVE = {
    "paper": {
        "workers": 16, "jobs": 9, "jobs_finished": 9, "jobs_rejected": 0,
        "aggregate_task_throughput": 8048.613014649024,
        "p95_job_latency": 0.3522761268945168,
    },
    "small": {
        "workers": 8, "jobs": 6, "jobs_finished": 6, "jobs_rejected": 0,
        "aggregate_task_throughput": 3513.293707274314,
        "p95_job_latency": 0.32154639526607737,
    },
}


@pytest.fixture(scope="module")
def report():
    return run_harness(SCALE)


def test_virtual_results_are_bit_identical(report):
    for workload, rows in report["workloads"].items():
        rotation = workload == "patch_rotation"
        tasks = GOLDEN_ROTATION_TASKS if rotation else GOLDEN_TASKS
        decisions = GOLDEN_ROTATION_DECISIONS if rotation else GOLDEN_DECISIONS
        for row in rows:
            n = row["workers"]
            assert row["mean_iteration_time"] == \
                GOLDEN_ITERATION[workload][n], \
                f"{workload}@{n}: virtual iteration time drifted"
            counters = dict(row["counters"])
            assert counters.pop("tasks_executed") == tasks[n]
            assert counters.pop("tasks_scheduled") == tasks[n]
            assert counters == decisions, \
                f"{workload}@{n}: control-plane decisions changed"


def test_patch_cache_gets_real_coverage(report):
    """The rotation workload exists to exercise the patch cache: one
    computed patch, then a hit for every later steady-state round."""
    for row in report["workloads"]["patch_rotation"]:
        assert row["counters"]["patch_cache_hits"] > 0
        assert row["counters"]["patches_computed"] == 1.0


def test_faster_than_seed_baseline(report):
    """The recorded speedup vs the pre-optimization seed stays real.

    The committed BENCH file documents the measured 2x; this assertion
    uses a lower bar so an unlucky shared-CI machine does not flake.
    """
    for workload, speedup in report["speedup_vs_baseline"].items():
        assert speedup >= 1.3, \
            f"{workload}: only {speedup}x vs the seed baseline"


def test_no_wall_clock_regression_vs_committed(report):
    committed = load_bench(bench_path(REPO_ROOT))
    if committed is None or SCALE not in committed.get("scales", {}):
        pytest.skip(f"no committed BENCH numbers for scale {SCALE!r} yet")
    before = committed["scales"][SCALE]["workloads"]
    for workload, rows in report["workloads"].items():
        if workload not in before:
            continue  # newly added workload; no committed numbers yet
        committed_total = sum(r["wall_seconds"] for r in before[workload])
        current_total = sum(r["wall_seconds"] for r in rows)
        assert current_total <= 2.0 * committed_total, (
            f"{workload}: {current_total:.2f}s wall vs committed "
            f"{committed_total:.2f}s — >2x regression"
        )


def test_strong_scaling_fig07_at_1000_holds_fidelity(report):
    """Schema v6: the 1000-worker fig07 row — 10x the paper's largest
    configuration — completes and computes the exact golden virtual
    results (iteration time and every control-plane decision counter)."""
    rows = report["strong_scaling"]["fig07_lr"]
    if not rows:
        pytest.skip("strong scaling runs at paper scale only")
    assert len(rows) == 1
    row = rows[0]
    assert row["workers"] == 1000
    assert row["mean_iteration_time"] == GOLDEN_ITERATION["fig07_lr"][1000], \
        "fig07@1000: virtual iteration time drifted"
    counters = dict(row["counters"])
    assert counters.pop("tasks_executed") == GOLDEN_TASKS[1000]
    assert counters.pop("tasks_scheduled") == GOLDEN_TASKS[1000]
    assert counters == GOLDEN_DECISIONS, \
        "fig07@1000: control-plane decisions changed"
    assert row["events_per_second"] > 0
    assert row["wall_seconds"] < 600, \
        "fig07@1000 no longer completes in reasonable wall time"


def _mode_pairs(section):
    """Yield (workload, workers, centralized, decentralized, sharded).

    The sharded row is ``None`` for pre-v9 sections (committed files
    written before the third mode existed)."""
    for workload, rows in section.items():
        by_key = {(r["workers"], r["mode"]): r for r in rows}
        for n in sorted({r["workers"] for r in rows}):
            yield (workload, n, by_key[(n, "centralized")],
                   by_key[(n, "decentralized")],
                   by_key.get((n, "sharded")))


def test_scheduling_modes_hold_parity(report):
    """Schema v9: at every compared worker count, all three scheduling
    modes compute the exact same results (digest over the per-block
    history) and execute the same tasks; the decentralized controller
    sees ≤20% of the centralized steady-state messages per task (the v7
    gate; measured ~7% at fig07@100) and the sharded coordinator sees
    strictly less than either."""
    section = report["scheduling_modes"]
    assert section.keys() == {"fig07_lr", "fig08_kmeans"}
    for workload, n, cent, dec, shd in _mode_pairs(section):
        where = f"{workload}@{n}"
        assert shd is not None, f"{where}: no sharded row in a v9 report"
        for other, label in ((dec, "decentralized"), (shd, "sharded")):
            assert other["results_digest"] == cent["results_digest"], \
                f"{where}: {label} computed values diverged"
            assert other["tasks"] == cent["tasks"], \
                f"{where}: {label} task count diverged"
        assert cent["steady_controller_messages_per_task"] > 0, where
        ratio = (dec["steady_controller_messages_per_task"]
                 / cent["steady_controller_messages_per_task"])
        assert ratio <= 0.20, (
            f"{where}: decentralized steady controller traffic is "
            f"{ratio:.1%} of centralized — gate is 20%")
        assert dec["controller_messages_per_task"] < \
            cent["controller_messages_per_task"], where
        # the shards absorb the window fan-out/fan-in, so the sharded
        # coordinator must beat even the decentralized controller
        assert shd["steady_controller_messages_per_task"] < \
            dec["steady_controller_messages_per_task"], \
            f"{where}: sharded coordinator not below decentralized"
        assert shd["controller_messages_per_task"] < \
            cent["controller_messages_per_task"], \
            f"{where}: sharded coordinator not below centralized"
        assert shd["shards"] and shd["shards"] >= 2, where


def test_scheduling_mode_crossover(report):
    """Schema v9 acceptance: where the paper's wall stands — the scale's
    largest compared count — decentralized steady messages per task are
    ≥5x fewer than centralized, and at 1000 workers its virtual
    iteration time and wall clock (min over interleaved reps) are
    strictly better. The sharded mode must collapse coordinator traffic
    below centralized everywhere and keep wall clock within 10% of
    decentralized at 1000 workers (ISSUE gate)."""
    section = report["scheduling_modes"]
    largest = max(MODE_SCALES[SCALE])
    for workload, n, cent, dec, shd in _mode_pairs(section):
        if n != largest:
            continue
        where = f"{workload}@{n}"
        assert dec["steady_controller_messages_per_task"] <= \
            cent["steady_controller_messages_per_task"] / 5.0, \
            f"{where}: <5x steady message reduction"
        assert shd["controller_messages_per_task"] < \
            cent["controller_messages_per_task"], \
            f"{where}: sharded messages per task not below centralized"
        if n >= 1000:
            # below ~1000 workers compute, not the controller, bounds the
            # iteration — the timing crossover is a large-scale property
            assert dec["mean_iteration_time"] < \
                cent["mean_iteration_time"], \
                f"{where}: decentralized iteration time not better"
            assert dec["wall_seconds"] < cent["wall_seconds"], (
                f"{where}: decentralized wall {dec['wall_seconds']}s vs "
                f"centralized {cent['wall_seconds']}s — no crossover")
            assert shd["wall_seconds"] <= 1.10 * dec["wall_seconds"], (
                f"{where}: sharded wall {shd['wall_seconds']}s vs "
                f"decentralized {dec['wall_seconds']}s — >10% worse")


def test_no_events_per_second_regression_vs_committed(report):
    """Schema v6: the event-loop throughput gate. Event counts are
    deterministic, so events/second regressing while wall stays flat is
    impossible — this is the wall gate restated in the loop's own unit,
    with the same 2x head-room for noisy shared CI machines."""
    committed = load_bench(bench_path(REPO_ROOT))
    if committed is None or SCALE not in committed.get("scales", {}):
        pytest.skip(f"no committed BENCH numbers for scale {SCALE!r} yet")
    before = committed["scales"][SCALE]["workloads"]
    for workload, rows in report["workloads"].items():
        if workload not in before:
            continue
        committed_rate = (sum(r["events"] for r in before[workload])
                          / sum(r["wall_seconds"] for r in before[workload]))
        current_rate = (sum(r["events"] for r in rows)
                        / sum(r["wall_seconds"] for r in rows))
        assert current_rate >= 0.5 * committed_rate, (
            f"{workload}: {current_rate:,.0f} events/s vs committed "
            f"{committed_rate:,.0f} — >2x throughput regression"
        )


def test_engine_throughput_floor_vs_committed(report):
    """Schema v6: fail if the raw engine microbenchmark regresses more
    than 20% against the committed BENCH rate."""
    committed = load_bench(bench_path(REPO_ROOT))
    if committed is None or SCALE not in committed.get("scales", {}):
        pytest.skip(f"no committed BENCH numbers for scale {SCALE!r} yet")
    if committed.get("schema_version") not in (6, 7, 8, 9):
        # v6 changed the measurement itself (fresh simulator per chunk —
        # the old shared simulator inflated the rate), so pre-v6 numbers
        # are not comparable
        pytest.skip("committed engine rate predates the v6 methodology")
    micro = committed["scales"][SCALE].get("microbenchmarks")
    if not micro or "engine_events_per_sec" not in micro:
        pytest.skip("no committed engine throughput to gate against")
    committed_rate = micro["engine_events_per_sec"]
    current_rate = report["microbenchmarks"]["engine_events_per_sec"]
    assert current_rate >= 0.8 * committed_rate, (
        f"engine_events_per_sec {current_rate:,.0f} vs committed "
        f"{committed_rate:,.0f} — >20% regression"
    )


def test_microbenchmarks_report_positive_rates(report):
    micro = report["microbenchmarks"]
    assert set(micro) == {
        "validate_ops_per_sec", "patch_ops_per_sec",
        "instantiate_ops_per_sec", "instantiate_compiled_ops_per_sec",
        "engine_events_per_sec",
    }
    for name, rate in micro.items():
        assert rate > 0, name


def test_allocations_recorded_per_workload(report):
    assert report["allocations"].keys() == report["workloads"].keys()
    for workload, alloc in report["allocations"].items():
        assert alloc["peak_bytes"] > 0, workload
        assert 0 <= alloc["retained_bytes"] <= alloc["peak_bytes"], workload


def test_metrics_snapshot_embedded_per_workload(report):
    """Schema v3: each workload carries a versioned registry snapshot of
    every Metrics counter/series/interval, taken at the largest count."""
    snaps = report["metrics_snapshots"]
    assert snaps.keys() == report["workloads"].keys()
    largest = max(SCALES[SCALE])
    for workload, snap in snaps.items():
        assert snap["workers"] == largest, workload
        assert snap["snapshot_version"] == 1, workload
        assert snap["counters"]["tasks_executed"] > 0, workload
        assert "driver_block" in snap["intervals"], workload
        assert snap["intervals"]["driver_block"]["open"] == 0, workload


def test_rebalance_section_shows_straggler_recovery(report):
    """Schema v4: the automated-fig09 run recovers from a 2x chaos-injected
    straggler within 10 iterations via template edits, while the
    rebalancer-off control run never does."""
    section = report["rebalance"]
    auto, control = section["auto"], section["control"]
    assert auto["converged"] is True
    assert auto["iterations_to_recover"] is not None
    assert auto["iterations_to_recover"] <= 10
    assert auto["recovery_ratio"] <= auto["recovery_slack"]
    assert auto["mechanisms"] == ["edits"]
    assert auto["worker_template_regenerations"] == 0.0
    assert auto["moves"] > 0
    assert control["converged"] is False
    assert control["moves"] == 0
    assert control["recovery_ratio"] > auto["recovery_slack"]


def test_serve_section_gates_multitenant_metrics(report):
    """Schema v5: the job_arrival serving run admits and finishes every
    job in the Poisson mix, and its aggregate task throughput and p95 job
    latency match the recorded virtual-time goldens bit for bit."""
    golden = GOLDEN_SERVE[SCALE]
    run = report["serve"]["job_arrival"]
    assert run["workers"] == golden["workers"]
    assert run["jobs"] == golden["jobs"]
    assert run["jobs_finished"] == golden["jobs_finished"]
    assert run["jobs_rejected"] == golden["jobs_rejected"]
    assert run["aggregate_task_throughput"] == \
        golden["aggregate_task_throughput"], \
        "aggregate task throughput drifted"
    assert run["p95_job_latency"] == golden["p95_job_latency"], \
        "p95 job latency drifted"
    assert 0 < run["mean_job_latency"] <= run["p95_job_latency"]
    assert len(run["per_job"]) == run["jobs_finished"]
    assert all(row["tasks_scheduled"] > 0 for row in run["per_job"])


def test_scale_step_rows_converge_with_zero_loss(report):
    """Schema v8: every demand-step row in the scale_step section — a 2x
    scripted demand step against the elastic autoscaler — re-stabilizes
    within its reconciliation-tick bound, adds real workers through the
    template machinery (edits/reinstall/reassign, never a restart), and
    executes exactly the fixed-size control run's tasks with an identical
    results digest (zero lost or duplicated completions)."""
    rows = report["scale_step"]["rows"]
    assert rows, "scale_step section is empty"
    for row in rows:
        where = f"scale_step@{row['workers']}"
        assert row["zero_loss"] is True, \
            f"{where}: autoscaled run lost or duplicated completions"
        assert row["converged"] is True, \
            f"{where}: reconciliation never went quiet"
        assert row["workers_added"] > 0, \
            f"{where}: 2x step provisioned no workers"
        assert row["workers_final"] > row["workers"], where
        assert row["ticks_to_stable"] is not None
        assert row["ticks_to_stable"] <= row["stable_ticks_bound"], \
            f"{where}: {row['ticks_to_stable']} ticks to stable"
        assert set(row["mechanisms"]) <= {"edits", "reinstall", "reassign"}, \
            f"{where}: unexpected spread mechanism"


def test_committed_paper_crossover_is_recorded():
    """The committed BENCH file's paper-scale rows document the
    crossover even when this run is the CI smoke (small scale): at 1000
    workers the decentralized mode has strictly better wall clock and
    ≥5x fewer steady controller messages per task, with bit-identical
    results digests."""
    committed = load_bench(bench_path(REPO_ROOT))
    if (committed is None or committed.get("schema_version") not in (7, 8, 9)
            or "paper" not in committed.get("scales", {})):
        pytest.skip("no committed v7+ paper-scale BENCH numbers yet")
    section = committed["scales"]["paper"]["scheduling_modes"]
    for workload, n, cent, dec, shd in _mode_pairs(section):
        assert dec["results_digest"] == cent["results_digest"], \
            f"{workload}@{n}: committed digests diverge across modes"
        if shd is not None:
            assert shd["results_digest"] == cent["results_digest"], \
                f"{workload}@{n}: committed sharded digest diverges"
        if n >= 1000:
            assert dec["wall_seconds"] < cent["wall_seconds"], \
                f"{workload}@{n}: committed rows show no wall crossover"
            assert dec["steady_controller_messages_per_task"] <= \
                cent["steady_controller_messages_per_task"] / 5.0, \
                f"{workload}@{n}: committed rows show <5x reduction"
            if shd is not None:
                assert shd["controller_messages_per_task"] < \
                    cent["controller_messages_per_task"], \
                    f"{workload}@{n}: committed sharded rows show no " \
                    f"coordinator-message collapse"
                assert shd["wall_seconds"] <= 1.10 * dec["wall_seconds"], \
                    f"{workload}@{n}: committed sharded wall >10% worse " \
                    f"than decentralized"


def test_bench_file_is_updated_last(report):
    """Rewrite BENCH_control_plane.json with this run (runs after the
    regression gate has compared against the committed copy)."""
    doc = write_bench(report, bench_path(REPO_ROOT))
    assert doc["schema_version"] == 9
    assert SCALE in doc["scales"]
    assert "strong_scaling" in doc["scales"][SCALE]
    assert "scheduling_modes" in doc["scales"][SCALE]
    assert "scale_step" in doc["scales"][SCALE]
    assert doc["scales"][SCALE]["workloads"].keys() == \
        {"fig07_lr", "fig08_kmeans", "patch_rotation"}
    assert doc["scales"][SCALE]["allocations"].keys() == \
        doc["scales"][SCALE]["workloads"].keys()
    assert doc["scales"][SCALE]["metrics_snapshots"].keys() == \
        doc["scales"][SCALE]["workloads"].keys()
    assert doc["scales"][SCALE]["rebalance"]["auto"]["converged"] is True
    assert doc["scales"][SCALE]["serve"]["job_arrival"]["jobs_finished"] == \
        GOLDEN_SERVE[SCALE]["jobs_finished"]
