"""Figure 11 — PhysBAM water simulation: MPI vs Nimbus vs Nimbus without
templates.

Paper (1024³ cells, 64 workers, main outer-loop iteration time):

    hand-tuned MPI            31.7 s
    Nimbus (templates)        36.5 s   (+15%)
    Nimbus without templates 196.8 s   (+520%, controller-bound)

The proxy runs the same control structure at a reduced per-frame scale
(see WaterSpec / EXPERIMENTS.md: the MPI/Nimbus *ratios* are the paper's
claim and are scale-invariant, because control-plane cost per task is
fixed while compute shrinks proportionally). The shape to reproduce:
Nimbus within tens of percent of MPI; Nimbus-without-templates several
times slower, bottlenecked on the controller.
"""

from repro.analysis import render_table
from repro.apps import WaterApp, WaterSpec
from repro.baselines import MPICluster
from repro.nimbus import NimbusCluster

from conftest import emit, once


def make_spec(paper_scale, frames):
    if paper_scale:
        return WaterSpec(num_workers=64, partitions_per_worker=5,
                         scale=1.5, frame_duration=0.004, frames=frames)
    return WaterSpec(num_workers=8, partitions_per_worker=2,
                     scale=0.2, frame_duration=0.004, frames=frames)


def run_water(cluster_cls, paper_scale, use_templates=True, frames=2):
    """Run ``frames`` frames and return the *steady-state* frame time (the
    last frame: templates are installed during the first one, matching the
    paper's measurement of the main outer loop in steady state)."""
    spec = make_spec(paper_scale, frames)
    app = WaterApp(spec)
    frame_log = []
    kwargs = {}
    if cluster_cls is NimbusCluster:
        kwargs["use_templates"] = use_templates
    cluster = cluster_cls(spec.num_workers, app.program(frame_log=frame_log),
                          registry=app.registry, **kwargs)
    cluster.run_until_finished(max_seconds=1e7)
    boundaries = [0.0] + frame_log
    frame_times = [b - a for a, b in zip(boundaries, boundaries[1:])]
    return frame_times[-1], cluster


def test_fig11_water_simulation(benchmark, paper_scale):
    spec = make_spec(paper_scale, frames=2)

    def compare():
        mpi_time, _ = run_water(MPICluster, paper_scale)
        nimbus_time, nimbus = run_water(NimbusCluster, paper_scale,
                                        use_templates=True)
        central_time, _ = run_water(NimbusCluster, paper_scale,
                                    use_templates=False)
        return mpi_time, nimbus_time, central_time, nimbus

    mpi_time, nimbus_time, central_time, nimbus = once(benchmark, compare)

    overhead = 100 * (nimbus_time - mpi_time) / mpi_time
    slowdown = 100 * (central_time - mpi_time) / mpi_time
    emit("")
    emit(render_table(
        f"Figure 11 — water simulation frame time "
        f"({spec.num_workers} workers, {spec.num_partitions} partitions, "
        f"scale={spec.scale})",
        ["system", "frame time (s)", "vs MPI", "paper"],
        [
            ["MPI (static, no control plane)", round(mpi_time, 2),
             "1.00x", "31.7 s (1.00x)"],
            ["Nimbus (templates)", round(nimbus_time, 2),
             f"{nimbus_time / mpi_time:.2f}x", "36.5 s (1.15x)"],
            ["Nimbus w/o templates", round(central_time, 2),
             f"{central_time / mpi_time:.2f}x", "196.8 s (6.2x)"],
        ]))
    emit(f"Nimbus overhead over MPI: {overhead:.0f}% (paper: 15%); "
         f"without templates: +{slowdown:.0f}% (paper: +520%)")
    metrics = nimbus.metrics
    emit(f"Inner-loop fast path: {metrics.count('auto_validations'):.0f} "
         f"auto-validations vs {metrics.count('full_validations'):.0f} full; "
         f"patch cache: {metrics.count('patch_cache_hits'):.0f} hits / "
         f"{metrics.count('patches_computed'):.0f} computed")

    # shape: Nimbus close to MPI; central many times slower
    assert nimbus_time < 1.5 * mpi_time
    assert central_time > 3.0 * mpi_time
    assert central_time > 3.0 * nimbus_time
    # the CG inner loop rides the auto-validation fast path
    assert (metrics.count("auto_validations")
            > metrics.count("full_validations"))
