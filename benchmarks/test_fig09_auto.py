"""Figure 9/10 — automated: the rebalancer closes the loop on its own.

The scripted Fig. 9 benchmark drives eviction/restore from a test
timeline. This one injects a 2x straggler through the chaos layer and
asserts the paper's promised reaction happens *autonomously*: the
adaptive rebalancer observes piggybacked per-task timings, detects the
skew, and drains the straggler's heavy tasks onto the survivors using
template edits — never a full reinstall — returning iteration time to
within 15% of the pre-fault baseline inside 10 iterations. A control run
with the rebalancer off shows the counterfactual: the job stays degraded
for the rest of the run.
"""

from repro.perf.rebalance_bench import run_fig09_auto
from repro.analysis import render_table

from conftest import emit, once


def run_pair(num_workers, iterations):
    auto = run_fig09_auto(num_workers=num_workers, iterations=iterations)
    control = run_fig09_auto(num_workers=num_workers, iterations=iterations,
                             rebalance=False)
    return auto, control


def test_fig09_auto_straggler_recovery(benchmark, paper_scale):
    num_workers = 16 if paper_scale else 8
    iterations = 40 if paper_scale else 30
    auto, control = once(benchmark, run_pair, num_workers, iterations)

    rows = []
    for label, r in (("rebalancer on", auto), ("rebalancer off", control)):
        rows.append([
            label,
            f"{r['pre_fault_iteration_time'] * 1000:.2f}",
            f"{r['post_fault_peak'] * 1000:.2f}",
            f"{r['recovered_iteration_time'] * 1000:.2f}",
            f"{r['recovery_ratio']:.3f}",
            "never" if r["iterations_to_recover"] is None
            else str(r["iterations_to_recover"]),
            str(r["moves"]),
            ",".join(r["mechanisms"]) or "-",
        ])
    emit("")
    emit(render_table(
        f"Figure 9/10 automated — {num_workers} workers, 2x straggler "
        f"injected after iteration {auto['fault_iteration']}",
        ["run", "pre (ms)", "peak (ms)", "recovered (ms)", "ratio",
         "iters to recover", "moves", "mechanism"],
        rows))

    # the acceptance criterion: recovery within 15% of the pre-fault
    # baseline within 10 iterations, achieved with template edits only
    assert auto["converged"] is True
    assert auto["iterations_to_recover"] is not None
    assert auto["iterations_to_recover"] <= 10
    assert auto["recovery_ratio"] <= 1.15
    assert auto["mechanisms"] == ["edits"]
    # no reinstalls: the worker templates installed before the fault are
    # the ones still running after recovery, only edited in place
    assert auto["worker_template_regenerations"] == 0.0
    assert auto["edits_applied"] > 0

    # the counterfactual: without the rebalancer the job never recovers
    assert control["converged"] is False
    assert control["iterations_to_recover"] is None
    assert control["recovery_ratio"] > 1.15
    assert control["moves"] == 0
