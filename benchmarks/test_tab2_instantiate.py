"""Table 2 — template instantiation cost per task.

Paper:

    Instantiate controller template                  0.2 µs/task
    Instantiate worker template (auto-validation)    1.7 µs/task
    Instantiate worker template (full validation)    7.3 µs/task

    ⇒ >500,000 tasks/s in the auto-validating inner loop;
      ~130,000 tasks/s when dynamic control flow forces full validation.

Measured against the real Python implementation on the 8,000-task
logistic-regression template. The required shape: instantiation ≪
installation ≪ central scheduling, and auto-validation < full validation.
"""

from repro.apps import LRApp, LRSpec
from repro.core.controller_template import ControllerTemplate
from repro.core.validation import full_validate
from repro.core.worker_template import WorkerHalf, generate_worker_templates
from repro.nimbus.data import LogicalObject, ObjectDirectory
from repro.analysis import render_table

from conftest import anchor_assignment, emit

_RESULTS = {}


def setup(paper_scale=True):
    n = 100 if paper_scale else 20
    app = LRApp(LRSpec(num_workers=n, iterations=1))
    block = app.iteration_block
    assignment = anchor_assignment(app)
    template = ControllerTemplate.from_block(block, assignment)
    sizes = {oid: size for oid, _n, _p, size, _h in app.variables.definitions}
    wts = generate_worker_templates(template, sizes)
    halves = {
        worker: WorkerHalf(wts.block_id, 0,
                           [e.clone() for e in entries], [])
        for worker, entries in wts.entries.items()
    }
    directory = ObjectDirectory()
    for oid, name, part, size, home in app.variables.definitions:
        directory.register(LogicalObject(oid, name, part, size),
                           home if home is not None else 0)
    # bring state to the template's postconditions so validation passes
    wts.delta.apply(directory)
    return app, template, wts, halves, directory


def test_instantiate_controller_template(benchmark, paper_scale):
    app, template, _wts, _halves, _dir = setup(paper_scale)

    counter = {"base": 0}

    def fill():
        counter["base"] += template.num_tasks
        return template.instantiate(counter["base"], {"step": 0.1})

    instance = benchmark(fill)
    _RESULTS["instantiate_ct"] = (
        benchmark.stats.stats.mean / template.num_tasks * 1e6)
    assert instance.task_id(0) > 0


def test_instantiate_worker_templates_auto(benchmark, paper_scale):
    """The auto-validation fast path: parameter fill + per-worker command
    materialization, no per-object checks."""
    app, template, wts, halves, _dir = setup(paper_scale)
    counter = {"base": 0, "instance": 0}

    def instantiate_all():
        counter["instance"] += 1
        commands = 0
        for worker, half in halves.items():
            counter["base"] += len(half.entries)
            cmds = half.instantiate(worker, counter["instance"],
                                    counter["base"], {"step": 0.1})
            commands += len(cmds)
        return commands

    commands = benchmark(instantiate_all)
    _RESULTS["instantiate_auto"] = (
        benchmark.stats.stats.mean / template.num_tasks * 1e6)
    _RESULTS["num_tasks"] = template.num_tasks
    assert commands == wts.num_commands()


def test_instantiate_worker_templates_full_validation(benchmark, paper_scale):
    """Dynamic control flow path: every precondition pair is checked
    against the object directory before instantiation."""
    app, template, wts, halves, directory = setup(paper_scale)
    counter = {"base": 0, "instance": 0}

    def validate_and_instantiate():
        violations = full_validate(wts, directory)
        counter["instance"] += 1
        commands = 0
        for worker, half in halves.items():
            counter["base"] += len(half.entries)
            cmds = half.instantiate(worker, counter["instance"],
                                    counter["base"], {"step": 0.1})
            commands += len(cmds)
        return violations, commands

    violations, _commands = benchmark(validate_and_instantiate)
    _RESULTS["instantiate_validate"] = (
        benchmark.stats.stats.mean / template.num_tasks * 1e6)
    assert violations == []
    _report()


def _report():
    auto = _RESULTS.get("instantiate_auto", float("nan"))
    validated = _RESULTS.get("instantiate_validate", float("nan"))
    ct = _RESULTS.get("instantiate_ct", float("nan"))
    emit("")
    emit(render_table(
        "Table 2 — per-task instantiation cost (this implementation vs paper)",
        ["operation", "measured (us/task)", "paper C++ (us/task)"],
        [
            ["instantiate controller template", round(ct, 4), 0.2],
            ["instantiate worker template (auto-validation)",
             round(auto, 3), 1.7],
            ["instantiate worker template (full validation)",
             round(validated, 3), 7.3],
        ]))
    inner = 1e6 / (ct + auto)
    dynamic = 1e6 / (ct + validated)
    emit(f"Implied scheduling throughput: {inner:,.0f} tasks/s auto-validated "
         f"(paper: >500,000), {dynamic:,.0f} tasks/s fully validated "
         f"(paper: ~130,000)")
    assert ct < auto, "parameter fill must be cheaper than instantiation"
    assert auto < validated, "auto-validation must beat full validation"