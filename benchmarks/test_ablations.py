"""Ablations of the design decisions DESIGN.md calls out.

Not a paper table — these quantify the two §4.2 validation optimizations
and the sensitivity to control-plane speed:

1. **Postcondition closure** (templates self-validate): disabling it makes
   every steady-state instantiation pay a full validation (and patches for
   the coefficient broadcast) instead of the auto-validation fast path.
2. **Patch cache**: disabling it recomputes and reships the patch on every
   inner/outer loop boundary of the Figure-3 regression.
3. **Cost sensitivity**: iteration time under a 4x slower control plane —
   templates keep the job compute-bound; the central path degrades 4x.
"""

from dataclasses import replace

from repro.analysis import mean_iteration_time, render_table
from repro.apps import LRApp, LRSpec, RegressionApp, RegressionSpec
from repro.core import validation as validation_mod
from repro.core import worker_template as wt_mod
from repro.nimbus import NimbusCluster
from repro.nimbus.costs import PAPER_COSTS

from conftest import emit, once


def run_lr(num_workers=50, iterations=14, costs=None, use_templates=True,
           no_auto_validation=False):
    app = LRApp(LRSpec(num_workers=num_workers, iterations=iterations))
    cluster = NimbusCluster(num_workers, app.program(blocking=False),
                            registry=app.registry, costs=costs,
                            use_templates=use_templates)
    if no_auto_validation:
        cluster.controller.validation_state.auto_validates = (
            lambda key: False)
    cluster.run_until_finished(max_seconds=1e6)
    time = mean_iteration_time(cluster.metrics, "lr.iteration",
                               skip=iterations // 2)
    return time, cluster.metrics


def test_ablation_auto_validation(benchmark, paper_scale):
    """§4.2 optimization 1: without auto-validation every instantiation
    pays the full per-object check (1.7 -> 7.5 µs/task in the paper)."""
    n = 50 if paper_scale else 10

    def compare():
        with_auto, m1 = run_lr(num_workers=n)
        without_auto, m2 = run_lr(num_workers=n, no_auto_validation=True)
        return with_auto, m1, without_auto, m2

    with_auto, m1, without_auto, m2 = once(benchmark, compare)
    emit("")
    emit(render_table(
        f"Ablation — auto-validation fast path (LR, {n} workers)",
        ["configuration", "iteration (s)", "auto", "full validations"],
        [
            ["auto-validation on", round(with_auto, 4),
             f"{m1.count('auto_validations'):.0f}",
             f"{m1.count('full_validations'):.0f}"],
            ["auto-validation off", round(without_auto, 4),
             f"{m2.count('auto_validations'):.0f}",
             f"{m2.count('full_validations'):.0f}"],
        ]))
    assert m1.count("auto_validations") > 0
    assert m2.count("auto_validations") == 0
    assert m2.count("full_validations") > m1.count("full_validations")
    assert without_auto >= with_auto * 0.98  # never faster


def test_ablation_patch_cache(benchmark, paper_scale):
    """§4.2 optimization 2: without the patch cache, every inner/outer
    loop boundary recomputes and reships its patch."""
    spec = RegressionSpec(num_workers=6, threshold_e=0.0, threshold_g=0.2,
                          max_outer=8)

    def run(disable_cache):
        app = RegressionApp(replace(spec))
        cluster = NimbusCluster(spec.num_workers, app.program(),
                                registry=app.registry)
        if disable_cache:
            cluster.controller.patch_cache.lookup = (
                lambda *args, **kwargs: None)
        cluster.run_until_finished(max_seconds=1e6)
        return cluster.metrics

    def compare():
        return run(False), run(True)

    with_cache, without_cache = once(benchmark, compare)
    emit("")
    emit(render_table(
        "Ablation — patch cache (Figure-3 nested regression, 8 outer loops)",
        ["configuration", "patches computed", "cache hits", "patch copies"],
        [
            ["patch cache on",
             f"{with_cache.count('patches_computed'):.0f}",
             f"{with_cache.count('patch_cache_hits'):.0f}",
             f"{with_cache.count('patch_copies'):.0f}"],
            ["patch cache off",
             f"{without_cache.count('patches_computed'):.0f}",
             f"{without_cache.count('patch_cache_hits'):.0f}",
             f"{without_cache.count('patch_copies'):.0f}"],
        ]))
    assert with_cache.count("patch_cache_hits") > 0
    assert without_cache.count("patch_cache_hits") == 0
    assert (without_cache.count("patches_computed")
            > with_cache.count("patches_computed"))


def test_ablation_control_plane_speed(benchmark, paper_scale):
    """Sensitivity: a 4x slower control plane barely moves templated
    iterations (they are compute-bound) but scales the central path ~4x."""
    n = 50 if paper_scale else 10
    slow = PAPER_COSTS.scaled(4.0)

    def compare():
        fast_t, _ = run_lr(num_workers=n)
        slow_t, _ = run_lr(num_workers=n, costs=slow)
        fast_central, _ = run_lr(num_workers=n, use_templates=False)
        slow_central, _ = run_lr(num_workers=n, costs=slow,
                                 use_templates=False)
        return fast_t, slow_t, fast_central, slow_central

    fast_t, slow_t, fast_central, slow_central = once(benchmark, compare)
    emit("")
    emit(render_table(
        f"Ablation — control-plane speed sensitivity (LR, {n} workers)",
        ["configuration", "1x costs (s)", "4x costs (s)", "degradation"],
        [
            ["templates", round(fast_t, 4), round(slow_t, 4),
             f"{slow_t / fast_t:.2f}x"],
            ["central", round(fast_central, 4), round(slow_central, 4),
             f"{slow_central / fast_central:.2f}x"],
        ]))
    # central scheduling degrades roughly with the cost factor
    assert slow_central / fast_central > 2.5
    # templates absorb most of it
    assert slow_t / fast_t < slow_central / fast_central
