"""Figure 9 — dynamic adaptation timeline.

Paper: logistic regression on 100 workers. Iterations 0–9 run with
templates manually disabled (~1.07 s each, all central scheduling). At
iteration 10 the driver enables templates: installation proceeds in
stages over iterations 10–12, and from iteration 13 the job runs at
60 ms/iteration. At iteration 20 the cluster manager revokes 50 workers
(worker templates regenerate; iteration time doubles since every worker
does twice the work). At iteration 30 the workers return: the controller
reverts to the cached 100-worker templates, explicitly validates them
once, and iteration time returns to 60 ms.
"""

from repro.analysis import iteration_breakdowns, render_table
from repro.apps import LRApp, LRSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from conftest import emit, once

ENABLE_AT = 10
EVICT_AT = 20
RESTORE_AT = 30
TOTAL_ITERS = 36


def run_timeline(num_workers):
    spec = LRSpec(num_workers=num_workers, iterations=TOTAL_ITERS)
    app = LRApp(spec)
    box = {}
    state = {}

    def evict(controller):
        state["placement"] = controller.snapshot_placement()
        state["versions"] = controller.snapshot_versions()
        controller.evict_workers(list(range(num_workers // 2, num_workers)))

    def restore(controller):
        controller.restore_workers(
            list(range(num_workers // 2, num_workers)),
            state["placement"], state["versions"])

    def program(job):
        job.disable_templates()
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        controller = box["cluster"].controller
        for i in range(TOTAL_ITERS):
            if i == ENABLE_AT:
                job.enable_templates()
            elif i == EVICT_AT:
                controller.deliver(P.ManagerDirective(evict))
            elif i == RESTORE_AT:
                controller.deliver(P.ManagerDirective(restore))
            yield job.run(app.iteration_block, {"step": spec.step_size})

    cluster = NimbusCluster(num_workers, program, registry=app.registry,
                            use_templates=False)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    return iteration_breakdowns(cluster.metrics, block_id="lr.iteration")


def test_fig09_dynamic_timeline(benchmark, paper_scale):
    num_workers = 100 if paper_scale else 16
    rows = once(benchmark, run_timeline, num_workers)
    assert len(rows) == TOTAL_ITERS

    notes = {
        ENABLE_AT: "driver enables templates (controller template installs)",
        ENABLE_AT + 1: "controller half of worker templates generated",
        ENABLE_AT + 2: "worker halves installed on workers",
        ENABLE_AT + 3: "fully templated",
        EVICT_AT: "cluster manager revokes half the workers",
        RESTORE_AT: "workers return; cached templates revalidated",
    }
    table_rows = []
    for i, row in enumerate(rows):
        table_rows.append([
            i, round(row.total, 4), round(row.compute, 4),
            round(row.control, 4), row.mode, notes.get(i, ""),
        ])
    emit("")
    emit(render_table(
        f"Figure 9 — per-iteration timeline, {num_workers} workers "
        f"(paper: 1.07 s central -> 60 ms templated -> 2x on eviction -> "
        f"60 ms after restore)",
        ["iter", "total (s)", "compute (s)", "control (s)", "mode", "event"],
        table_rows))

    central = rows[5].total
    steady = rows[ENABLE_AT + 5].total
    evicted = rows[EVICT_AT + 4].total
    restored = rows[RESTORE_AT + 3].total

    # templates collapse the iteration time by an order of magnitude
    assert steady < central / 5
    # installation iterations are no slower than ~central + install tax
    assert rows[ENABLE_AT].total < 1.6 * central
    # halving the cluster roughly doubles the templated iteration time
    assert 1.5 * steady < evicted < 3.0 * steady
    # restoring returns to the original steady state
    assert restored < 1.25 * steady
    # the restore iteration pays a one-time validation/patch cost
    assert rows[RESTORE_AT].total >= restored
