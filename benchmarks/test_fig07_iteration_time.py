"""Figure 7 — iteration time of LR and k-means: Spark-opt vs Naiad-opt vs
Nimbus.

Paper (100 GB, spin-wait C++-rate tasks, mean of 30 iterations):

    LR      @ 20/50/100 workers: Spark-opt 0.44/0.75/1.43 s,
            Naiad-opt 0.22/0.10/0.08 s, Nimbus 0.21/0.10/0.06 s
    k-means @ 20/50/100 workers: Spark-opt 0.53/0.79/1.57 s,
            Naiad-opt 0.31/0.14/0.11 s, Nimbus 0.32/0.15/0.10 s

Shape: Nimbus ≈ Naiad, both scale out nearly linearly; Spark scales
*backwards* (15–23x slower than Nimbus at 100 workers for LR).
"""

import pytest

from repro.analysis import mean_iteration_time, render_series
from repro.apps import KMeansApp, KMeansSpec, LRApp, LRSpec
from repro.baselines import NaiadCluster, SparkCluster
from repro.nimbus import NimbusCluster

from conftest import emit, once

PAPER = {
    "lr": {"Spark-opt": [0.44, 0.75, 1.43],
           "Naiad-opt": [0.22, 0.10, 0.08],
           "Nimbus": [0.21, 0.10, 0.06]},
    "kmeans": {"Spark-opt": [0.53, 0.79, 1.57],
               "Naiad-opt": [0.31, 0.14, 0.11],
               "Nimbus": [0.32, 0.15, 0.10]},
}

SYSTEMS = [("Spark-opt", SparkCluster), ("Naiad-opt", NaiadCluster),
           ("Nimbus", NimbusCluster)]

_MEASURED = {}


def run_app(app_cls, spec_cls, cluster_cls, num_workers, iterations=14):
    app = app_cls(spec_cls(num_workers=num_workers, iterations=iterations))
    cluster = cluster_cls(num_workers, app.program(blocking=False),
                          registry=app.registry)
    cluster.run_until_finished(max_seconds=1e6)
    block_id = app.iteration_block.block_id
    return mean_iteration_time(cluster.metrics, block_id,
                               skip=iterations // 2)


def sweep(app_cls, spec_cls, worker_counts):
    results = {}
    for name, cluster_cls in SYSTEMS:
        results[name] = [
            run_app(app_cls, spec_cls, cluster_cls, n)
            for n in worker_counts
        ]
    return results


@pytest.mark.parametrize("workload", ["lr", "kmeans"])
def test_fig07_iteration_time(benchmark, paper_scale, workload):
    worker_counts = [20, 50, 100] if paper_scale else [10, 20]
    app_cls, spec_cls = ((LRApp, LRSpec) if workload == "lr"
                         else (KMeansApp, KMeansSpec))
    results = once(benchmark, sweep, app_cls, spec_cls, worker_counts)
    _MEASURED[workload] = results

    label = ("7a — logistic regression" if workload == "lr"
             else "7b — k-means clustering")
    series = {}
    for name, values in results.items():
        series[name] = values
        if paper_scale:
            series[f"{name} (paper)"] = PAPER[workload][name]
    emit("")
    emit(render_series(f"Figure {label}: iteration time",
                       "workers", worker_counts, series, unit="s"))

    nimbus = results["Nimbus"]
    naiad = results["Naiad-opt"]
    spark = results["Spark-opt"]
    # Nimbus scales out: more workers => faster iterations
    for before, after in zip(nimbus, nimbus[1:]):
        assert after < before
    # Nimbus matches or beats Naiad everywhere (the paper's own gap is
    # up to 33% at 100 workers: 60 ms vs 80 ms)
    for a, b in zip(nimbus, naiad):
        assert 0.9 * a < b < 1.7 * a
    # Spark is slower everywhere and the gap explodes with parallelism
    assert spark[0] > 1.3 * nimbus[0]
    assert spark[-1] > 8 * nimbus[-1]
    if paper_scale and workload == "lr":
        ratio = spark[-1] / nimbus[-1]
        emit(f"Spark/Nimbus at 100 workers: {ratio:.1f}x "
             f"(paper: 15-23x)")
        assert 10 <= ratio <= 40
