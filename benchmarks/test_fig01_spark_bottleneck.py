"""Figure 1 — the control plane bottlenecks Spark MLlib's strong scaling.

Paper: logistic regression on 100 GB with Spark 2.0 MLlib on 30–100
workers. Computation time (black bars) shrinks with parallelism, but
control-plane overhead outgrows the gains: total iteration time is
1.44 s at 30 workers, bottoms out near 50–60 workers (~1.33 s), and climbs
back to 1.73 s at 100 workers.

Here: the Spark-like BSP control plane (166 µs/task) running MLlib-rate
tasks (8x slower than C++, §5.1). The required shape: computation strictly
decreases with workers while total time is U-shaped / increasing.
"""

from repro.analysis import mean_iteration_time, render_series
from repro.analysis.breakdown import mean_compute_time
from repro.apps import LRApp, LRSpec, MLLIB_RATE
from repro.baselines import SparkCluster

from conftest import emit, once

PAPER_TOTALS = {30: 1.44, 40: 1.38, 50: 1.33, 60: 1.34, 70: 1.38,
                80: 1.59, 90: 1.64, 100: 1.73}


def run_spark_mllib(num_workers: int, iterations: int = 8):
    app = LRApp(LRSpec(num_workers=num_workers, iterations=iterations,
                       compute_rate=MLLIB_RATE))
    cluster = SparkCluster(num_workers, app.program(blocking=False),
                           registry=app.registry)
    cluster.run_until_finished(max_seconds=1e6)
    skip = iterations // 2
    total = mean_iteration_time(cluster.metrics, "lr.iteration", skip=skip)
    compute = mean_compute_time(cluster.metrics, "lr.iteration", skip=skip)
    return total, compute


def test_fig01_spark_mllib_scaling(benchmark, paper_scale):
    worker_counts = [30, 50, 70, 100] if paper_scale else [10, 20, 30]

    def sweep():
        totals, computes = [], []
        for n in worker_counts:
            total, compute = run_spark_mllib(n)
            totals.append(total)
            computes.append(compute)
        return totals, computes

    totals, computes = once(benchmark, sweep)

    emit("")
    emit(render_series(
        "Figure 1 — Spark MLlib iteration time vs workers",
        "workers", worker_counts,
        {
            "total": totals,
            "computation": computes,
            "control": [t - c for t, c in zip(totals, computes)],
            "paper total": [PAPER_TOTALS.get(n, float("nan"))
                            for n in worker_counts],
        }, unit="s"))
    emit("Shape: computation shrinks with parallelism; control grows and "
         "dominates — adding workers stops helping.")

    # computation strictly decreases
    for before, after in zip(computes, computes[1:]):
        assert after < before
    # control overhead strictly grows
    controls = [t - c for t, c in zip(totals, computes)]
    for before, after in zip(controls, controls[1:]):
        assert after > before
    # at scale, total time stops improving: the largest cluster is no
    # faster than the smallest
    if paper_scale:
        assert totals[-1] > 0.95 * totals[0]
