"""Table 3 — cost of scheduling changes.

Paper:

    Nimbus single edit                      ≈ 41 µs
    Nimbus 5 % task migration (800 edits)     35 ms
    Nimbus complete installation (8000)       203 ms
    Naiad any change (full reinstall)         230 ms

The shape: a single edit is tiny; edit cost scales linearly with the
change; edits beat re-installation up to several percent of the template;
Naiad pays the full installation for *any* change.
"""

from repro.apps import LRApp, LRSpec
from repro.core.controller_template import ControllerTemplate
from repro.core.edits import plan_migrations
from repro.core.worker_template import WorkerHalf, generate_worker_templates
from repro.analysis import render_table

from conftest import anchor_assignment, emit

_RESULTS = {}


def setup(paper_scale=True):
    n = 100 if paper_scale else 20
    app = LRApp(LRSpec(num_workers=n, iterations=1))
    block = app.iteration_block
    assignment = anchor_assignment(app)
    template = ControllerTemplate.from_block(block, assignment)
    sizes = {oid: size for oid, _n, _p, size, _h in app.variables.definitions}
    return app, template, sizes


def fresh_wts(template, sizes):
    return generate_worker_templates(template, sizes)


def test_single_edit(benchmark, paper_scale):
    app, template, sizes = setup(paper_scale)
    n_workers = app.spec.num_workers
    state = {"wts": fresh_wts(template, sizes), "task": 0}

    def migrate_one():
        task = state["task"]
        state["task"] += 1
        if state["task"] >= template.num_tasks - 1:
            state["wts"] = fresh_wts(template, sizes)  # reset occasionally
            state["task"] = 0
            task = 0
        wts = state["wts"]
        src = wts.task_locations[task][0]
        dst = (src + n_workers // 2) % n_workers
        return plan_migrations(wts, [(task, dst)], sizes)

    _edits, ops, _relocations = benchmark(migrate_one)
    _RESULTS["single_edit_us"] = benchmark.stats.stats.mean * 1e6
    assert ops >= 3  # t'/S2/R2 (sole-reader inputs relocate)


def test_5pct_migration(benchmark, paper_scale):
    app, template, sizes = setup(paper_scale)
    n_workers = app.spec.num_workers
    count = max(1, int(0.05 * app.spec.num_partitions))

    def migrate_batch():
        wts = fresh_wts(template, sizes)
        moves = []
        for i in range(count):
            task = i * (app.spec.num_partitions // count)
            src = wts.task_locations[task][0]
            moves.append((task, (src + n_workers // 2) % n_workers))
        return plan_migrations(wts, moves, sizes)

    _edits, ops, _relocations = benchmark(migrate_batch)
    # generation time of the fresh template is part of the loop; separate
    # the edit cost using the single-edit rate for the report
    _RESULTS["batch_ms"] = benchmark.stats.stats.mean * 1e3
    _RESULTS["batch_ops"] = ops
    _RESULTS["batch_count"] = count


def test_complete_installation(benchmark, paper_scale):
    """Re-generating and re-installing all worker templates — the
    alternative to edits for large scheduling changes."""
    app, template, sizes = setup(paper_scale)

    def reinstall():
        wts = generate_worker_templates(template, sizes)
        halves = [
            WorkerHalf(wts.block_id, 1, [e.clone() for e in entries], [])
            for entries in wts.entries.values()
        ]
        return wts, halves

    wts, _halves = benchmark(reinstall)
    _RESULTS["reinstall_ms"] = benchmark.stats.stats.mean * 1e3
    assert wts.num_commands() > template.num_tasks
    _report()


def _report():
    single = _RESULTS.get("single_edit_us", float("nan"))
    batch_ms = _RESULTS.get("batch_ms", float("nan"))
    reinstall = _RESULTS.get("reinstall_ms", float("nan"))
    emit("")
    emit(render_table(
        "Table 3 — cost of scheduling changes (this implementation vs paper)",
        ["operation", "measured", "paper C++"],
        [
            ["single edit (one task migration)",
             f"{single:.1f} us", "41 us"],
            [f"5% migration ({_RESULTS.get('batch_count', 0)} tasks, "
             f"{_RESULTS.get('batch_ops', 0)} ops, incl. regen)",
             f"{batch_ms:.1f} ms", "35 ms"],
            ["complete worker-template installation",
             f"{reinstall:.1f} ms", "203 ms"],
            ["Naiad: any scheduling change",
             f"{reinstall:.1f} ms (full reinstall)", "230 ms"],
        ]))
    emit("Shape requirement: single edit ≪ 5% migration < full installation")
    assert single / 1e3 < batch_ms < 10 * reinstall