"""Table 1 — template installation cost per task.

Paper (measured on the C++ implementation):

    Installing controller template              25 µs/task
    Installing worker template on controller    15 µs/task
    Installing worker template on worker         9 µs/task
    Nimbus schedule task                        134 µs/task
    Spark schedule task                         166 µs/task

This benchmark measures the *real Python implementation* on the paper's
workload (the 8,000-task logistic-regression template over 100 workers).
Absolute microseconds differ from C++; the shape that must hold is
``install ≪ central scheduling`` — installation is a modest one-time tax
(the paper reports 36 % of one centrally-scheduled iteration).
"""

from repro.apps import LRApp, LRSpec
from repro.core.controller_template import ControllerTemplate
from repro.core.worker_template import WorkerHalf, generate_worker_templates
from repro.nimbus import NimbusCluster
from repro.analysis import render_table

from conftest import anchor_assignment, emit

_RESULTS = {}


def make_app(paper_scale=True):
    n = 100 if paper_scale else 20
    return LRApp(LRSpec(num_workers=n, iterations=1))


def test_install_controller_template(benchmark, paper_scale):
    app = make_app(paper_scale)
    block = app.iteration_block
    assignment = anchor_assignment(app)

    template = benchmark(ControllerTemplate.from_block, block, assignment)
    per_task = benchmark.stats.stats.mean / template.num_tasks
    _RESULTS["install_ct"] = per_task * 1e6
    assert template.num_tasks == block.num_tasks


def test_install_worker_template_on_controller(benchmark, paper_scale):
    app = make_app(paper_scale)
    block = app.iteration_block
    assignment = anchor_assignment(app)
    template = ControllerTemplate.from_block(block, assignment)
    sizes = {oid: size for oid, _n, _p, size, _h in app.variables.definitions}

    wts = benchmark(generate_worker_templates, template, sizes)
    per_task = benchmark.stats.stats.mean / template.num_tasks
    _RESULTS["install_wt_controller"] = per_task * 1e6
    assert wts.num_commands() >= template.num_tasks


def test_install_worker_template_on_worker(benchmark, paper_scale):
    app = make_app(paper_scale)
    block = app.iteration_block
    assignment = anchor_assignment(app)
    template = ControllerTemplate.from_block(block, assignment)
    wts = generate_worker_templates(template, {})

    def install_all():
        halves = []
        for worker, entries in wts.entries.items():
            cloned = [e.clone() if e is not None else None for e in entries]
            halves.append(WorkerHalf(wts.block_id, 0, cloned, []))
        return halves

    halves = benchmark(install_all)
    per_task = benchmark.stats.stats.mean / wts.num_commands()
    _RESULTS["install_wt_worker"] = per_task * 1e6
    assert len(halves) == len(wts.entries)


def test_central_schedule_task(benchmark, paper_scale):
    """Cost of the controller's full central path for one task: dependency
    analysis, copy insertion, directory updates, and dispatch."""
    app = make_app(paper_scale)

    def schedule_block():
        cluster = NimbusCluster(app.spec.num_workers, lambda job: iter(()),
                                registry=app.registry, use_templates=False)
        controller = cluster.controller
        # register the objects directly (setup, not measured elsewhere)
        from repro.nimbus.protocol import DefineObjects
        controller._on_define_objects(DefineObjects(app.variables.definitions))
        run = controller._run_block_centrally(
            app.iteration_block, {"step": 0.1}, capture=False,
            receive_cost=False)
        return run

    run = benchmark(schedule_block)
    per_task = benchmark.stats.stats.mean / app.iteration_block.num_tasks
    _RESULTS["central_schedule"] = per_task * 1e6
    assert run.outstanding > app.iteration_block.num_tasks  # incl. copies
    _report()


def _report():
    emit("")
    emit(render_table(
        "Table 1 — per-task installation cost (this implementation vs paper)",
        ["operation", "measured (us/task)", "paper C++ (us/task)"],
        [
            ["install controller template",
             round(_RESULTS.get("install_ct", float("nan")), 2), 25],
            ["install worker template (controller)",
             round(_RESULTS.get("install_wt_controller", float("nan")), 2), 15],
            ["install worker template (worker)",
             round(_RESULTS.get("install_wt_worker", float("nan")), 2), 9],
            ["centrally schedule one task",
             round(_RESULTS.get("central_schedule", float("nan")), 2), 134],
        ]))
    total_install = (_RESULTS.get("install_ct", 0)
                     + _RESULTS.get("install_wt_controller", 0)
                     + _RESULTS.get("install_wt_worker", 0))
    central = _RESULTS.get("central_schedule", 0)
    if central:
        emit(f"Install-vs-schedule overhead: {100 * total_install / central:.0f}% "
             f"(paper: 36%) — shape requirement: install ≪ scheduling")
        assert total_install < central, (
            "template installation must be cheaper than central scheduling")
