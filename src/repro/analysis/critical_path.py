"""Critical-path analysis over a completed command trace.

Walks backwards from the last event of a traced run along the release
edges the :class:`~repro.obs.trace.Tracer` recorded — "command C became
ready because command D completed / because copy T arrived / because the
controller dispatched it" — and attributes every segment of wall clock to
one of four buckets:

* **compute** — a command executing on a worker slot;
* **queue**   — a ready command waiting for a free slot, or an arrived
  copy waiting for its RECV to be resolved;
* **network** — a copy payload or a control message in flight (send →
  arrival), including the dispatch hop from controller to worker;
* **control** — controller decision time, driver submission gaps, and
  worker-side bookkeeping between a dependency completing and the
  dependent becoming ready.

The walk keeps a single *frontier* timestamp, initially the trace end.
Each step claims the segment ``[lo, frontier)`` for a bucket and moves the
frontier down to ``lo``; overlapping causes therefore never double-count,
and ``sum(segments) + unattributed == end_time`` holds exactly. Coverage
(the attributed fraction) is ~1.0 whenever the walk reaches time zero.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..nimbus.commands import CommandKind

#: hard cap on walk length; a well-formed trace terminates long before
#: this, the cap only guards against a malformed cycle.
_MAX_STEPS = 1_000_000


class CriticalPathReport:
    """Outcome of one critical-path walk."""

    __slots__ = ("total", "segments", "chain", "steps", "truncated")

    def __init__(self) -> None:
        self.total: float = 0.0
        self.segments: Dict[str, float] = {
            "compute": 0.0, "queue": 0.0, "network": 0.0, "control": 0.0,
        }
        #: chain entries, last event first:
        #: {"kind": "cmd"|"copy"|"request", ...identifying fields}
        self.chain: List[Dict[str, Any]] = []
        self.steps = 0
        self.truncated = False

    @property
    def attributed(self) -> float:
        return sum(self.segments.values())

    @property
    def coverage(self) -> float:
        if self.total <= 0.0:
            return 1.0
        return self.attributed / self.total


def critical_path(tracer) -> CriticalPathReport:
    """Compute the critical path of a completed traced run."""
    report = CriticalPathReport()
    report.total = tracer.end_time()
    frontier = report.total

    def attribute(bucket: str, lo: float) -> float:
        """Claim [lo, frontier) for ``bucket``; returns the new frontier."""
        nonlocal frontier
        if lo is None:
            return frontier
        if lo < frontier:
            report.segments[bucket] += frontier - lo
            frontier = lo
        return frontier

    # Where the walk starts: the last-completing command overall.
    last_cmd = None
    for rec in tracer.cmds.values():
        if rec.complete is None:
            continue
        if last_cmd is None or (rec.complete, rec.cid) > (last_cmd.complete,
                                                          last_cmd.cid):
            last_cmd = rec

    # For request-level hops: the last-completing command of each run, and
    # the runs serving each request.
    last_of_run: Dict[int, Any] = {}
    for rec in tracer.cmds.values():
        if rec.complete is None or rec.run_seq is None:
            continue
        prior = last_of_run.get(rec.run_seq)
        if prior is None or (rec.complete, rec.cid) > (prior.complete,
                                                       prior.cid):
            last_of_run[rec.run_seq] = rec
    runs_of_request: Dict[int, List[Any]] = {}
    for run in tracer.runs.values():
        runs_of_request.setdefault(run.request_id, []).append(run)

    visited_cmds = set()
    visited_requests = set()

    def walk_cmd(rec) -> None:
        while rec is not None and report.steps < _MAX_STEPS:
            report.steps += 1
            if rec.cid in visited_cmds:
                return
            visited_cmds.add(rec.cid)
            report.chain.append({
                "kind": "cmd", "cid": rec.cid, "node": rec.node,
                "command": CommandKind(rec.kind).name,
                "function": rec.function, "complete": rec.complete,
            })
            if rec.kind == CommandKind.TASK:
                attribute("compute", rec.start)
            else:
                # control-plane command (SEND/RECV/CREATE/...): its own
                # execution is bookkeeping
                attribute("control", rec.start)
            attribute("queue", rec.ready)

            release = rec.release
            if release is None:
                # ready at enqueue: dispatched straight from the
                # controller's decision
                attribute("control", rec.enqueue)
                walk_dispatch(rec)
                return
            edge, ident = release
            if edge == "cmd":
                # worker bookkeeping between dependency completion and
                # readiness (completion-buffer flush, resolve loop)
                dep = tracer.cmds.get(ident)
                if dep is not None:
                    attribute("control", dep.complete)
                    rec = dep
                    continue
                return
            if edge == "data":
                copy = tracer.copies.get(ident)
                if copy is None:
                    return
                report.chain.append({
                    "kind": "copy", "tag": str(ident),
                    "src": copy.send_node, "dst": copy.arrive_node,
                    "bytes": copy.size_bytes,
                })
                attribute("queue", copy.arrive_ts)
                attribute("network", copy.send_ts)
                if copy.send_cid is not None:
                    dep = tracer.cmds.get(copy.send_cid)
                    if dep is not None:
                        rec = dep
                        continue
                return
            return

    def walk_dispatch(rec) -> None:
        """Hop from a dispatch-ready command back through its run/request."""
        run = tracer.runs.get(rec.run_seq) if rec.run_seq is not None else None
        if run is None:
            # controller-bypassed hop: a self-scheduled instance whose run
            # was never the subject of a controller decision (decentralized
            # steady state).  There is no dispatch flight to attribute;
            # whatever remains below the frontier is control bookkeeping.
            attribute("control", 0.0)
            return
        # controller->worker dispatch flight, then the decision itself.
        # Either bound may be absent — a decentralized run's decision can
        # be a zero-width grant entry or missing entirely — so each hop is
        # claimed only when its timestamp exists.
        if run.decide_end is not None:
            attribute("network", run.decide_end)
        if run.decide_start is not None:
            attribute("control", run.decide_start)
        walk_request(run.request_id)

    def walk_request(request_id: int) -> None:
        if request_id in visited_requests:
            return
        visited_requests.add(request_id)
        req = tracer.requests.get(request_id)
        if req is None:
            attribute("control", 0.0)
            return
        report.chain.append({
            "kind": "request", "request_id": request_id,
            "block_id": req.block_id, "submit": req.submit,
        })
        # driver->controller submission flight
        attribute("network", req.submit)
        if req.cause is None:
            # program start / pipelined slack: driver-side control
            attribute("control", 0.0)
            return
        # this submission waited on an earlier request completing; jump
        # to the command whose completion finished that request
        cause = tracer.requests.get(req.cause)
        if cause is not None and cause.complete is not None:
            attribute("control", cause.complete)
        best = None
        for run in runs_of_request.get(req.cause, ()):  # usually one
            cand = last_of_run.get(run.seq)
            if cand is not None and (best is None
                                     or cand.complete > best.complete):
                best = cand
        if best is not None:
            walk_cmd(best)
        else:
            attribute("control", 0.0)

    if last_cmd is not None:
        walk_cmd(last_cmd)
    else:
        attribute("control", 0.0)
    if report.steps >= _MAX_STEPS:
        report.truncated = True
    return report


def render_critical_path(report: CriticalPathReport) -> str:
    """Human-readable critical-path summary for the CLI."""
    lines = ["critical path"]
    total = report.total
    lines.append(f"  end-to-end wall clock : {total:.6f}s (virtual)")
    for name in ("compute", "queue", "network", "control"):
        value = report.segments[name]
        pct = 100.0 * value / total if total > 0 else 0.0
        lines.append(f"  {name:<8} {value:>12.6f}s  {pct:5.1f}%")
    lines.append(f"  attributed: {100.0 * report.coverage:.1f}% of wall "
                 f"clock across {report.steps} chain steps")
    if report.truncated:
        lines.append("  WARNING: walk truncated at step cap")
    tasks = [entry for entry in report.chain if entry["kind"] == "cmd"
             and entry["command"] == "TASK"]
    copies = [entry for entry in report.chain if entry["kind"] == "copy"]
    lines.append(f"  chain: {len(tasks)} tasks, {len(copies)} copies, "
                 f"{sum(1 for e in report.chain if e['kind'] == 'request')} "
                 f"block submissions")
    return "\n".join(lines)
