"""Plain-text rendering of tables and figure series.

The benchmark harness prints each experiment in the same layout the paper
uses (rows of a table, or labeled series of a figure), so the output in
``bench_output.txt`` can be compared against the paper line by line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    rule = "-+-".join("-" * w for w in widths)
    out = [f"=== {title} ===", line(headers), rule]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(title: str, x_label: str, xs: Sequence[object],
                  series: Dict[str, Sequence[float]],
                  unit: str = "") -> str:
    """Render figure data as one row per x value, one column per series."""
    headers = [x_label] + [f"{name}{f' ({unit})' if unit else ''}"
                           for name in series]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(title, headers, rows)


def render_bars(title: str, labels: Sequence[str], values: Sequence[float],
                unit: str = "s", width: int = 50) -> str:
    """Horizontal ASCII bar chart (for single-series figures)."""
    peak = max(values) if values else 1.0
    label_w = max(len(label) for label in labels) if labels else 0
    out = [f"=== {title} ==="]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(width * value / peak)) if peak > 0 else ""
        out.append(f"{label.ljust(label_w)} | {value:10.4f} {unit} {bar}")
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
