"""Per-iteration timing breakdowns (the stacked bars of Figures 1 and 7).

An iteration's wall time divides into *computation* (the ideal parallel
execution of its task durations on the workers' slots, reported by the
workers themselves) and *control plane* (everything else: scheduling,
message handling, validation, serialization, queueing at the controller).
This mirrors how the paper separates the black and grey bar segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.metrics import Metrics


@dataclass
class IterationBreakdown:
    """One iteration's timing: total, computation, and control share."""

    request_id: int
    block_id: str
    total: float
    compute: float
    num_tasks: int
    mode: str

    @property
    def control(self) -> float:
        return max(0.0, self.total - self.compute)


def iteration_breakdowns(metrics: Metrics,
                         block_id: Optional[str] = None
                         ) -> List[IterationBreakdown]:
    """Join the driver-side iteration intervals with the controller-side
    block records into per-iteration breakdowns."""
    by_request: Dict[int, dict] = {}
    for interval in metrics.intervals.get("block", ()):
        request_id = interval.labels.get("request_id")
        if request_id:
            by_request[request_id] = {
                "compute": interval.labels.get("compute", 0.0),
                "num_tasks": interval.labels.get("num_tasks", 0),
                "mode": interval.labels.get("mode", "?"),
            }
    out: List[IterationBreakdown] = []
    for interval in metrics.intervals.get("driver_block", ()):
        if interval.labels.get("aborted"):
            continue
        if block_id is not None and interval.labels.get("block_id") != block_id:
            continue
        request_id = interval.labels["request_id"]
        info = by_request.get(request_id, {})
        out.append(IterationBreakdown(
            request_id=request_id,
            block_id=interval.labels["block_id"],
            total=interval.duration,
            compute=info.get("compute", 0.0),
            num_tasks=info.get("num_tasks", 0),
            mode=info.get("mode", "?"),
        ))
    out.sort(key=lambda b: b.request_id)
    return out


def mean_iteration_time(metrics: Metrics, block_id: str,
                        skip: int = 0) -> float:
    """Mean wall time of the iterations of ``block_id``.

    With non-blocking submission (the paper's measurement mode) iterations
    pipeline through the system, so the steady-state iteration time is the
    spacing between successive iteration *completions*. The first ``skip``
    iterations (template installation warm-up) seed the baseline and are
    excluded from the mean.
    """
    ends = _completion_times(metrics, block_id)
    if len(ends) <= skip + 1:
        raise ValueError(
            f"need more than {skip + 1} iterations of {block_id!r}; "
            f"got {len(ends)}"
        )
    baseline = ends[skip - 1] if skip > 0 else _first_start(metrics, block_id)
    return (ends[-1] - baseline) / (len(ends) - skip)


def mean_compute_time(metrics: Metrics, block_id: str,
                      skip: int = 0) -> float:
    """Mean per-iteration computation component of ``block_id``."""
    values = [
        iv.labels.get("compute", 0.0)
        for iv in metrics.intervals.get("block", ())
        if iv.labels.get("block_id") == block_id
    ][skip:]
    if not values:
        raise ValueError(f"no block records for {block_id!r}")
    return sum(values) / len(values)


def task_throughput(metrics: Metrics, block_id: str,
                    skip: int = 0) -> float:
    """Tasks per second sustained over the steady-state iterations of
    ``block_id`` (Figure 8's y-axis)."""
    intervals = _iteration_intervals(metrics, block_id)
    if len(intervals) <= skip + 1:
        raise ValueError(f"need more than {skip + 1} iterations of {block_id!r}")
    by_request = {
        iv.labels.get("request_id"): iv.labels.get("num_tasks", 0)
        for iv in metrics.intervals.get("block", ())
    }
    kept = intervals[skip:]
    tasks = sum(by_request.get(iv.labels["request_id"], 0) for iv in kept)
    ends = [iv.end for iv in intervals]
    baseline = ends[skip - 1] if skip > 0 else _first_start(metrics, block_id)
    span = ends[-1] - baseline
    if span <= 0:
        # degenerate run (all kept iterations ended at the same virtual
        # instant): there is no rate to report. NaN — not 0.0, which reads
        # as "measured zero throughput" — so consumers must handle it.
        return float("nan")
    return tasks / span


def _iteration_intervals(metrics: Metrics, block_id: str):
    intervals = [iv for iv in metrics.intervals.get("driver_block", ())
                 if iv.labels.get("block_id") == block_id
                 and not iv.labels.get("aborted")]
    intervals.sort(key=lambda iv: iv.end)
    return intervals


def _completion_times(metrics: Metrics, block_id: str) -> List[float]:
    return [iv.end for iv in _iteration_intervals(metrics, block_id)]


def _first_start(metrics: Metrics, block_id: str) -> float:
    intervals = _iteration_intervals(metrics, block_id)
    if not intervals:
        raise ValueError(f"no iterations recorded for {block_id!r}")
    return min(iv.start for iv in intervals)
