"""Analysis: turning run metrics into the paper's tables and figures."""

from .breakdown import (
    IterationBreakdown,
    iteration_breakdowns,
    mean_iteration_time,
    task_throughput,
)
from .critical_path import (
    CriticalPathReport,
    critical_path,
    render_critical_path,
)
from .render import render_bars, render_series, render_table

__all__ = [
    "CriticalPathReport",
    "IterationBreakdown",
    "critical_path",
    "iteration_breakdowns",
    "mean_iteration_time",
    "render_bars",
    "render_critical_path",
    "render_series",
    "render_table",
    "task_throughput",
]
