"""Analysis: turning run metrics into the paper's tables and figures."""

from .breakdown import (
    IterationBreakdown,
    iteration_breakdowns,
    mean_iteration_time,
    task_throughput,
)
from .render import render_bars, render_series, render_table

__all__ = [
    "IterationBreakdown",
    "iteration_breakdowns",
    "mean_iteration_time",
    "render_bars",
    "render_series",
    "render_table",
    "task_throughput",
]
