"""Reproduction of "Execution Templates: Caching Control Plane Decisions
for Strong Scaling of Data Analytics" (Mashayekhi et al., USENIX ATC 2017).

Public API layout:

* :mod:`repro.core` — execution templates: controller/worker templates,
  validation, patching, edits (the paper's contribution).
* :mod:`repro.nimbus` — the Nimbus framework: controller, workers, driver,
  mutable-object data model, command set, checkpointing.
* :mod:`repro.sim` — the discrete-event substrate (virtual clock, actors,
  network).
* :mod:`repro.baselines` — Spark-like, Naiad-like, and MPI-like control
  planes for comparison.
* :mod:`repro.apps` — logistic regression, k-means, and the water
  simulation proxy, plus dataset generators.
* :mod:`repro.analysis` — iteration breakdowns and table/figure rendering.
"""

__version__ = "1.0.0"

from .nimbus import NimbusCluster  # noqa: F401  (primary entry point)
