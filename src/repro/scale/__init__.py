"""Elastic autoscaling: desired-state reconciliation over template edits.

The paper's Fig. 10 argument is that template edits make cluster
membership changes cheap enough to perform mid-run; this package closes
that loop (ROADMAP item 1). A :class:`ResourceController` reconciles the
desired worker count — computed by a pluggable :class:`ScalePolicy` from
the controller's cross-job :class:`~repro.sched.rebalance.LoadTracker`
EWMA — against the actual live set, provisioning simulated workers (with
a cold-start delay) on scale-up and draining them through
``evict_workers``' patch-relocation path on scale-down. See DESIGN.md
§15.
"""

from .controller import ResourceController
from .policy import ScalePolicy, TargetUtilizationPolicy

__all__ = [
    "ResourceController",
    "ScalePolicy",
    "TargetUtilizationPolicy",
]
