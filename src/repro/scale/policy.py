"""Scaling policies: how load observations become a desired worker count.

The reconciliation loop (:class:`~repro.scale.controller.
ResourceController`) asks its policy for a worker-count *delta* on every
tick. Policies read the controller's cross-job
:class:`~repro.sched.rebalance.LoadTracker` — the same always-on EWMA of
per-instance compute per worker that seeds multi-tenant placements — and
must honor the autoscaler's determinism contract: a ``decide`` call that
returns 0 performs pure observation (no RNG, no charges, no messages),
so an autoscaler-on run whose policy never trips is bit-identical to an
autoscaler-off run.
"""

from __future__ import annotations

from typing import Optional


class ScalePolicy:
    """Interface: map the load EWMA to a worker-count delta."""

    #: the autoscaler never drains below / provisions above these
    min_workers: int = 1
    max_workers: int = 1024

    def decide(self, tracker, live) -> int:
        """Workers to add (>0) or drain (<0); 0 leaves the cluster alone.

        ``tracker`` is the controller's :class:`LoadTracker`; ``live`` is
        the sorted live worker list. Called only while no provisioning or
        drain is already in flight, so a policy reasons about a settled
        cluster.
        """
        raise NotImplementedError


class TargetUtilizationPolicy(ScalePolicy):
    """Target-utilization band with hysteresis and cooldown.

    Utilization is the mean per-worker load EWMA over ``target_load``,
    the per-instance compute each worker *should* carry. With
    ``target_load=None`` (the default) the policy self-calibrates: the
    first settled observation — every live worker past ``warmup``
    instances — pins the then-current mean as 100%. A scripted 2× demand
    step then reads as utilization 2.0, and the desired count is simply
    ``total_load / target_load``: enough workers to bring each back to
    its calibrated share.

    Hysteresis (act only outside ``[low, high]``) plus a ``cooldown`` of
    ticks after every action keep the loop from flapping while the load
    EWMA and the warmup gate catch up with the last change.

    Calibration waits for the EWMA to *settle*, not for a fixed sample
    count: the tracker's first observations (init blocks, ramp-up
    iterations) drag the EWMA far below steady state, and a target
    pinned there misreads the steady state itself as over-utilization.
    The target is pinned at the first new-sample round whose mean moved
    less than ``calib_tolerance`` relative to the previous round.
    """

    def __init__(self, target_load: Optional[float] = None,
                 low: float = 0.7, high: float = 1.3,
                 min_workers: int = 1, max_workers: int = 1024,
                 warmup: int = 3, cooldown: int = 3,
                 calib_tolerance: float = 0.05):
        if not 0.0 < low < 1.0 < high:
            raise ValueError(
                f"utilization band must satisfy 0 < low < 1 < high, "
                f"got [{low}, {high}]")
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError(
                f"need 1 <= min_workers <= max_workers, got "
                f"[{min_workers}, {max_workers}]")
        self.target_load = target_load
        self.low = low
        self.high = high
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.warmup = warmup
        self.cooldown = cooldown
        self.calib_tolerance = calib_tolerance
        self._cooldown_left = 0
        #: (min_samples seen, mean) at the last calibration round — means
        #: are only compared across rounds that brought new observations
        self._calib: Optional[tuple] = None

    def decide(self, tracker, live) -> int:
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return 0
        if not live:
            return 0
        # warmup-gates arrivals: an unseen (just-provisioned) worker pins
        # min_samples at 0, so decisions wait for real post-change data
        samples = tracker.min_samples(live)
        if samples < self.warmup:
            return 0
        total = sum(tracker.load.get(w, 0.0) for w in live)
        mean = total / len(live)
        if mean <= 0.0:
            return 0
        if self.target_load is None:
            # self-calibration is pure bookkeeping on the policy object —
            # the simulation cannot observe it (determinism contract).
            # Pin the target only once the EWMA has settled: compare means
            # across rounds that actually brought new samples and wait for
            # the relative drift to fall inside calib_tolerance.
            if self._calib is not None and samples > self._calib[0]:
                prev = self._calib[1]
                if abs(mean - prev) <= self.calib_tolerance * mean:
                    self.target_load = mean
            if self._calib is None or samples > self._calib[0]:
                self._calib = (samples, mean)
            if self.target_load is None:
                return 0
        util = mean / self.target_load
        if self.low <= util <= self.high:
            return 0
        desired = round(total / self.target_load)
        desired = max(self.min_workers, min(self.max_workers, desired))
        delta = desired - len(live)
        if delta:
            self._cooldown_left = self.cooldown
        return delta
