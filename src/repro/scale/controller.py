"""The reconciliation loop: desired vs. actual workers, every interval.

:class:`ResourceController` is the autoscaler. On a fixed tick it

1. advances in-flight drains (evicting DRAINING workers at the first
   global quiesce point, decommissioning them once their queues empty),
2. spreads work onto workers whose cold start completed (deterministic
   per-block moves through the existing ``migrate_tasks`` template
   machinery — edits when small, reinstall when large, never a job
   restart), and
3. while nothing is in flight, asks its :class:`~repro.scale.policy.
   ScalePolicy` for a worker-count delta and acts on it: **scale-up**
   provisions simulated workers (cold-start delay, then
   ``Controller.add_worker``), **scale-down** marks victims DRAINING and
   reuses ``evict_workers``' patch-relocation drain.

Determinism contract (mirrors the rebalancer's): the tick is a bare
simulator callback — no actor, no cost charges, no RNG, no metrics —
until a decision actually trips, so an autoscaler-on run with no trigger
is bit-identical to an autoscaler-off run. Victim selection (highest
worker id first) and spread planning (most-crowded worker, highest entry
index first) are fully deterministic, so triggered runs are reproducible
per seed. Demand spikes come from the seeded chaos
:meth:`~repro.chaos.plan.FaultPlan.demand_step`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.edits import migration_conflict
from .policy import ScalePolicy, TargetUtilizationPolicy


class ResourceController:
    """Desired-state reconciliation between a ScalePolicy and the cluster.

    ``decisions`` is the public audit log: one dict per action with the
    simulation time, the action kind, the workers involved, and (for
    spreads) the migration mechanisms used — the scale-step benchmark
    asserts scale-up happened through the template machinery (``edits``
    or ``reinstall``), never a job restart.
    """

    def __init__(self, cluster, policy: Optional[ScalePolicy] = None,
                 interval: float = 0.25, cold_start: float = 1.0):
        self.cluster = cluster
        self.policy = policy or TargetUtilizationPolicy()
        self.interval = interval
        self.cold_start = cold_start
        #: audit log of every action taken (never written on a pure tick)
        self.decisions: List[Dict] = []
        #: worker ids marked DRAINING, awaiting eviction + queue drain
        self.draining: List[int] = []
        #: worker ids provisioned but still cold-starting
        self.pending: List[int] = []
        #: worker ids joined but not yet spread onto (quiesce pending)
        self._spread_targets: List[int] = []
        self.ticks = 0
        # evict_workers enforces the policy floor even for manual drains
        cluster.controller.min_live_workers = max(
            cluster.controller.min_live_workers, self.policy.min_workers)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        sim = self.cluster.sim
        sim.schedule_at(sim.now + self.interval, self._tick)

    def _tick(self) -> None:
        sim = self.cluster.sim
        ctrl = self.cluster.controller
        self.ticks += 1
        self._advance_drains(ctrl)
        self._try_spread(ctrl)
        if not self.pending and not self.draining and not self._spread_targets:
            delta = self.policy.decide(ctrl.load_tracker,
                                       sorted(ctrl.live_workers))
            if delta > 0:
                self._scale_up(delta)
            elif delta < 0:
                self._begin_scale_down(-delta)
        sim.schedule_at(sim.now + self.interval, self._tick)

    def _log(self, action: str, **detail) -> None:
        entry = {"t": self.cluster.sim.now, "action": action, **detail}
        self.decisions.append(entry)
        tracer = self.cluster.tracer
        if tracer is not None:
            tracer.instant("autoscaler", "scale", "scale.decision",
                           action=action, **{
                               k: v for k, v in detail.items()
                               if isinstance(v, (int, float, str))})

    # ------------------------------------------------------------------
    # Scale-up: provision → cold start → join → spread via edits
    # ------------------------------------------------------------------
    def _scale_up(self, count: int) -> None:
        new_ids = []
        for _ in range(count):
            worker = self.cluster.provision_worker()
            new_ids.append(worker.worker_id)
            self.pending.append(worker.worker_id)
        self.cluster.metrics.incr("scale.up_decisions")
        self._log("scale_up", workers=list(new_ids),
                  count=len(new_ids), cold_start=self.cold_start)
        sim = self.cluster.sim
        sim.schedule_at(sim.now + self.cold_start, self._join, new_ids)

    def _join(self, worker_ids: List[int]) -> None:
        ctrl = self.cluster.controller
        for wid in worker_ids:
            ctrl.add_worker(wid, self.cluster.workers[wid])
            self.pending.remove(wid)
        self._spread_targets.extend(worker_ids)
        self._log("join", workers=list(worker_ids))
        # the map may already be quiescent — don't wait a whole tick
        self._try_spread(ctrl)

    def _try_spread(self, ctrl) -> None:
        """Rebalance tasks onto joined workers through the template path.

        Partition-map changes need globally quiesced jobs (no
        self-schedule window in flight); until then the targets wait and
        the reconciliation loop retries each tick.

        Mechanism selection mirrors the paper's Fig. 9 split and is
        delegated to ``migrate_tasks``: a fair-share move list small
        enough for the edit threshold is applied move-by-move as template
        *edits* (skipping moves the edit planner would reject — a fresh
        worker holds no preconditions, so shared broadcast reads conflict
        past the first move); a larger list goes down in ONE call, which
        regenerates and reships the worker templates (*reinstall*). Both
        keep the job running — there is never a restart.
        """
        if not self._spread_targets:
            return
        for ctx in ctrl.jobs.values():
            if ctx.policy is not None and ctx.policy.outstanding_grants():
                return
        # never spread onto a DRAINING (or already-evicted) worker: a
        # join and a scale-down can interleave across ticks, and work
        # placed on a leaving worker would drain straight back off it
        # (serve+autoscale regression)
        targets = [w for w in self._spread_targets
                   if w in ctrl.live_workers
                   and w not in ctrl.draining_workers]
        self._spread_targets = []
        if not targets:
            return
        moved = 0
        mechanisms = set()
        for job_id in sorted(ctrl.jobs):
            ctx = ctrl.jobs.get(job_id)
            if ctx is None:
                continue  # cancelled since the snapshot above
            if ctx.policy is not None and ctx.policy.outstanding_grants():
                # a job admitted from the wait queue after the quiesce
                # snapshot already holds a window: requeue the targets
                # and let the next tick retry against a quiesced map
                self._spread_targets = targets
                return
            for block_id in sorted(ctx.templates):
                if ctx.phase.get(block_id, 0) < ctrl.PHASE_CT_READY:
                    continue
                template = ctx.templates[block_id]
                moves = self._plan_spread(ctrl, ctx, block_id, targets)
                if not moves:
                    continue
                if len(moves) <= ctrl.edit_threshold * template.num_tasks:
                    # small delta: per-move edits, re-checking conflicts
                    # against the current worker templates before each
                    for ct_index, dst in moves:
                        version = ctx.current_version.get(block_id, 0)
                        wts = ctx.worker_templates.get((block_id, version))
                        if (wts is not None and migration_conflict(
                                wts, ct_index, dst) is not None):
                            continue
                        mech = ctrl.migrate_tasks(
                            block_id, [(ct_index, dst)], job_id=job_id)
                        mechanisms.add(mech)
                        moved += 1
                else:
                    # large delta: one call, migrate_tasks escalates to a
                    # template regeneration + reinstall
                    mech = ctrl.migrate_tasks(block_id, moves, job_id=job_id)
                    mechanisms.add(mech)
                    moved += len(moves)
        self.cluster.metrics.incr("scale.spread_moves", moved)
        self._log("spread", workers=list(targets), moves=moved,
                  mechanisms=sorted(mechanisms))

    @staticmethod
    def _plan_spread(ctrl, ctx, block_id: str,
                     targets: List[int]) -> List[Tuple[int, int]]:
        """Deterministic moves giving each target its fair entry share.

        Peels entries from the most-crowded worker (ties to the lowest
        id), highest controller-template index first, until each target
        holds ``num_tasks // len(live)`` entries. Planning is pure layout
        — edit-feasibility is re-checked at apply time by
        :meth:`_try_spread`, which escalates to a reinstall when the
        delta is too large for edits anyway.
        """
        template = ctx.templates[block_id]
        # DRAINING workers are on their way out: they may be peeled
        # *from* (their entries relocate at eviction anyway) but never
        # counted toward the fair share or targeted
        live = sorted(ctrl.live_workers - ctrl.draining_workers)
        if not live:
            return []
        fair = template.num_tasks // len(live)
        if fair <= 0:
            return []
        counts: Dict[int, int] = {w: 0 for w in live}
        by_worker: Dict[int, List[int]] = {w: [] for w in live}
        for i, entry in enumerate(template.entries):
            counts[entry.worker] = counts.get(entry.worker, 0) + 1
            by_worker.setdefault(entry.worker, []).append(i)
        moves: List[Tuple[int, int]] = []
        for dst in sorted(targets):
            while counts.get(dst, 0) < fair:
                src = max(counts, key=lambda w: (counts[w], -w))
                if counts[src] <= counts.get(dst, 0) + 1:
                    break  # balanced: nothing left worth peeling
                if not by_worker.get(src):
                    break
                ct_index = by_worker[src].pop()
                by_worker.setdefault(dst, []).append(ct_index)
                counts[src] -= 1
                counts[dst] = counts.get(dst, 0) + 1
                moves.append((ct_index, dst))
        return moves

    # ------------------------------------------------------------------
    # Scale-down: DRAINING → evict at quiesce → decommission when empty
    # ------------------------------------------------------------------
    def _begin_scale_down(self, count: int) -> None:
        ctrl = self.cluster.controller
        live = sorted(ctrl.live_workers)
        count = min(count, len(live) - self.policy.min_workers)
        if count <= 0:
            return
        victims = live[-count:]  # newest first: LIFO membership
        for wid in victims:
            self.cluster.workers[wid].lifecycle = "draining"
        # publish the DRAINING set on the controller so placement paths
        # (new-job registration, spread planning) can exclude it while
        # the victims are still technically live
        ctrl.draining_workers.update(victims)
        self.draining.extend(victims)
        self.cluster.metrics.incr("scale.down_decisions")
        self._log("scale_down", workers=list(victims), count=len(victims))

    def _advance_drains(self, ctrl) -> None:
        if not self.draining:
            return
        # eviction is the drain: it re-homes every object and template
        # entry off the victims (patch relocation) but requires globally
        # quiesced jobs — a DRAINING worker with an open self-schedule
        # window keeps its live status until the window boundary
        for ctx in ctrl.jobs.values():
            if ctx.policy is not None and ctx.policy.outstanding_grants():
                return
        victims = [w for w in self.draining if w in ctrl.live_workers]
        if victims:
            ctrl.evict_workers(victims)
            self._log("evict", workers=list(victims))
        still_draining = []
        for wid in self.draining:
            worker = self.cluster.workers[wid]
            # never kill a worker with in-flight commands or grants: it
            # stays reachable (finishing work, serving relocation reads)
            # until its queues are empty, then is decommissioned
            if (wid not in ctrl.live_workers
                    and worker.queued_commands == 0
                    and not worker._grants):
                worker.lifecycle = "drained"
                ctrl.draining_workers.discard(wid)
                self.cluster.metrics.incr("scale.workers_drained")
                self._log("drained", workers=[wid])
            else:
                still_draining.append(wid)
        self.draining = still_draining
