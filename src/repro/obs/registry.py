"""Versioned snapshots of a :class:`~repro.sim.metrics.Metrics` instance.

A snapshot collapses every counter, series, and interval family into one
JSON-serializable dict so the perf harness can embed the full metric state
of a run inside ``BENCH_control_plane.json`` (schema v3). Raw sample lists
are summarized (count/min/max/mean plus first/last) — the artifact stays
small while remaining diffable across runs.
"""

from __future__ import annotations

from typing import Any, Dict

#: bump when the snapshot layout changes; recorded in every snapshot so
#: downstream tooling can detect stale artifacts.
SNAPSHOT_VERSION = 1


def _summarize(values) -> Dict[str, Any]:
    n = len(values)
    if n == 0:
        return {"count": 0}
    return {
        "count": n,
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / n,
    }


def snapshot_metrics(metrics) -> Dict[str, Any]:
    """Snapshot ``metrics`` into a plain, versioned, JSON-safe dict."""
    counters = {name: value for name, value in sorted(metrics.counters.items())}

    series: Dict[str, Any] = {}
    for name in sorted(metrics.series):
        samples = metrics.series[name]
        summary = _summarize([value for _t, value in samples])
        if samples:
            summary["first_t"] = samples[0][0]
            summary["last_t"] = samples[-1][0]
        series[name] = summary

    open_by_name: Dict[str, int] = {}
    for (name, _key) in metrics._open:
        open_by_name[name] = open_by_name.get(name, 0) + 1

    intervals: Dict[str, Any] = {}
    for name in sorted(set(metrics.intervals) | set(open_by_name)):
        summary = _summarize(metrics.durations(name))
        summary["open"] = open_by_name.get(name, 0)
        intervals[name] = summary

    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "counters": counters,
        "series": series,
        "intervals": intervals,
    }
