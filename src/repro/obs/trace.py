"""Event tracing for the control plane: the full lifecycle of every command.

The :class:`Tracer` records structured events covering driver spawn →
controller decision → dispatch → worker-queue ready → execute → complete,
plus copy send/recv, reliable-channel flows, and template
install/instantiate/validate/patch spans. Everything is *pure observation*:
no ``charge()``, no messages, no RNG draws — a traced run's virtual results
are bit-identical to an untraced run (enforced by property tests).

Span categories: ``handler`` (actor message/timer handlers), ``template``
(generate/install/instantiate/validate/patch), ``rebalance`` — one
``rebalance.decision`` span per adaptive-rebalancer decision (see
:mod:`repro.sched`), carrying the move count and the mechanism used
(``edits``/``reinstall``/``reassign``) so straggler reactions show up on
the controller row of the exported timeline — and ``scale`` — one
``scale.decision`` instant per autoscaler action (scale_up/join/spread/
scale_down/evict/drained, see :mod:`repro.scale`) on the dedicated
``autoscaler`` row.

Overhead discipline
-------------------
Tracing is off by default. ``TRACE_ENABLED`` (module-level, set from env
``REPRO_TRACE=1`` at import; the CLI ``--trace`` flag and tests use the
explicit ``trace=`` cluster parameter) gates Tracer *allocation* in
:class:`~repro.nimbus.cluster.NimbusCluster`. When no Tracer exists, every
hook in the hot paths reduces to one ``if self._trace is not None`` check
on an attribute that every :class:`~repro.sim.actor.Actor` carries — no
allocation, no string formatting, no dict lookups. The perf harness pins
tracing off and the perf suite's 2x wall gate plus exact-float golden
values hold with the hooks in place.

Timestamps are virtual-clock seconds read from the simulator; every
recorded event also carries the engine's :meth:`~repro.sim.engine.
Simulator.order_key` sequence component so exporters can order
simultaneous events exactly as they executed.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Hashable, List, Optional, Tuple


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0")


#: module-level master switch, read once at import from ``REPRO_TRACE``.
#: Mutable (the CLI sets it for ``--trace``); cluster construction checks
#: it via :func:`trace_enabled_default` before allocating anything.
TRACE_ENABLED = _env_enabled()


def trace_enabled_default() -> bool:
    """Whether a new cluster should trace when not told explicitly.

    Re-reads the environment so a ``REPRO_TRACE=1`` exported after this
    module was imported still takes effect.
    """
    return TRACE_ENABLED or _env_enabled()


class CommandTrace:
    """Lifecycle timestamps of one command on one worker.

    ``release`` records *why* the command became ready: ``None`` means it
    was ready the moment it was enqueued (dispatch/instantiation resolved
    it immediately); ``("cmd", cid)`` means completion of a local
    dependency released it; ``("data", tag)`` means a copy payload's
    arrival released it. The critical-path analyzer walks these edges.
    """

    __slots__ = ("cid", "kind", "function", "node", "run_seq",
                 "enqueue", "ready", "start", "complete", "release")

    def __init__(self, cid: int, kind: int, function: Optional[str],
                 node: str, run_seq: Optional[int], enqueue: float):
        self.cid = cid
        self.kind = kind  # CommandKind int value
        self.function = function
        self.node = node
        self.run_seq = run_seq
        self.enqueue = enqueue
        self.ready: Optional[float] = None
        self.start: Optional[float] = None
        self.complete: Optional[float] = None
        self.release: Optional[Tuple[str, Any]] = None


class RunTrace:
    """One controller block run (one ``_BlockRun``)."""

    __slots__ = ("seq", "block_id", "mode", "request_id", "num_tasks",
                 "decide_start", "decide_end", "finish", "job_id")

    def __init__(self, seq: int, block_id: str, mode: str, request_id: int,
                 num_tasks: int, decide_start: float, job_id: int = 0):
        self.seq = seq
        self.block_id = block_id
        self.mode = mode
        self.request_id = request_id
        self.num_tasks = num_tasks
        self.decide_start = decide_start
        self.decide_end: Optional[float] = None
        self.finish: Optional[float] = None
        self.job_id = job_id


class RequestTrace:
    """One driver block request (submit → BlockComplete)."""

    __slots__ = ("request_id", "block_id", "submit", "cause", "complete")

    def __init__(self, request_id: int, block_id: str, submit: float,
                 cause: Optional[int]):
        self.request_id = request_id
        self.block_id = block_id
        self.submit = submit
        #: request id whose completion freed this submission (pipelining /
        #: program advance), or None for the program's own first steps
        self.cause = cause
        self.complete: Optional[float] = None


class CopyTrace:
    """One tagged data copy: SEND execution → payload arrival."""

    __slots__ = ("tag", "send_cid", "send_node", "send_ts", "arrive_node",
                 "arrive_ts", "size_bytes")

    def __init__(self, tag: Hashable):
        self.tag = tag
        self.send_cid: Optional[int] = None
        self.send_node: Optional[str] = None
        self.send_ts: Optional[float] = None
        self.arrive_node: Optional[str] = None
        self.arrive_ts: Optional[float] = None
        self.size_bytes: int = 0


class Tracer:
    """Append-only recorder for one simulated run.

    All hook methods are cheap (tuple append / attribute store) and are
    only ever called behind an ``if actor._trace is not None`` guard, so
    they may assume tracing is on.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        #: generic exportable events:
        #: ("span", node, cat, name, ts, dur, order, args)
        #: ("inst", node, cat, name, ts, order, args)
        #: ("flow", phase("s"|"f"), key, node, ts, order, type_name)
        self.events: List[Tuple] = []
        self.cmds: Dict[int, CommandTrace] = {}
        self.runs: Dict[int, RunTrace] = {}
        self.requests: Dict[int, RequestTrace] = {}
        self.copies: Dict[Hashable, CopyTrace] = {}
        self.finish_time: Optional[float] = None

    # -- internals -----------------------------------------------------
    def _order(self) -> int:
        return self.sim.order_key()[1]

    # -- generic spans and instants ------------------------------------
    def span(self, node: str, cat: str, name: str, start: float,
             dur: float, **args: Any) -> None:
        """A complete span on ``node``'s control thread."""
        self.events.append(("span", node, cat, name, start, dur,
                            self._order(), args or None))

    def instant(self, node: str, cat: str, name: str, **args: Any) -> None:
        self.events.append(("inst", node, cat, name, self.sim.now,
                            self._order(), args or None))

    def handler_span(self, node: str, name: str, start: float,
                     dur: float) -> None:
        """One actor message/timer handler invocation (charged time)."""
        if dur > 0.0:
            self.events.append(("span", node, "handler", name, start, dur,
                                self._order(), None))

    # -- command lifecycle ---------------------------------------------
    def cmd_enqueue(self, cid: int, kind: int, function: Optional[str],
                    node: str, run_seq: Optional[int]) -> None:
        self.cmds[cid] = CommandTrace(cid, kind, function, node, run_seq,
                                      self.sim.now)

    def cmd_ready(self, cid: int,
                  release: Optional[Tuple[str, Any]]) -> None:
        rec = self.cmds.get(cid)
        if rec is not None:
            rec.ready = self.sim.now
            rec.release = release

    def cmd_start(self, cid: int) -> None:
        rec = self.cmds.get(cid)
        if rec is not None:
            rec.start = self.sim.now

    def cmd_complete(self, cid: int) -> None:
        rec = self.cmds.get(cid)
        if rec is not None:
            rec.complete = self.sim.now

    # -- copies ---------------------------------------------------------
    def _copy(self, tag: Hashable) -> CopyTrace:
        rec = self.copies.get(tag)
        if rec is None:
            rec = self.copies[tag] = CopyTrace(tag)
        return rec

    def copy_send(self, tag: Hashable, cid: int, node: str,
                  size_bytes: int) -> None:
        rec = self._copy(tag)
        rec.send_cid = cid
        rec.send_node = node
        rec.send_ts = self.sim.now
        rec.size_bytes = size_bytes

    def copy_arrive(self, tag: Hashable, node: str) -> None:
        rec = self._copy(tag)
        rec.arrive_node = node
        rec.arrive_ts = self.sim.now

    # -- controller runs -----------------------------------------------
    def run_begin(self, seq: int, block_id: str, mode: str, request_id: int,
                  num_tasks: int, decide_start: float,
                  job_id: int = 0) -> None:
        self.runs[seq] = RunTrace(seq, block_id, mode, request_id,
                                  num_tasks, decide_start, job_id)

    def run_decided(self, seq: int, decide_end: float) -> None:
        rec = self.runs.get(seq)
        if rec is not None:
            rec.decide_end = decide_end
            self.events.append((
                "span", "controller", "decision",
                f"decide:{rec.block_id}", rec.decide_start,
                max(0.0, decide_end - rec.decide_start), self._order(),
                {"seq": seq, "mode": rec.mode, "tasks": rec.num_tasks,
                 "request_id": rec.request_id}))

    def run_finish(self, seq: int) -> None:
        rec = self.runs.get(seq)
        if rec is not None:
            rec.finish = self.sim.now
            self.instant("controller", "decision", f"finish:{rec.block_id}",
                         seq=seq, request_id=rec.request_id)

    # -- driver requests ------------------------------------------------
    def block_submit(self, request_id: int, block_id: str,
                     cause: Optional[int]) -> None:
        self.requests[request_id] = RequestTrace(
            request_id, block_id, self.sim.now, cause)
        self.instant("driver", "driver", f"submit:{block_id}",
                     request_id=request_id, cause=cause)

    def block_complete(self, request_id: int) -> None:
        rec = self.requests.get(request_id)
        if rec is not None:
            rec.complete = self.sim.now

    def driver_finish(self) -> None:
        self.finish_time = self.sim.now
        self.instant("driver", "driver", "program-finished")

    # -- reliable-channel flows ------------------------------------------
    def flow_send(self, src: str, dst: str, seq: int,
                  type_name: str) -> None:
        self.events.append(("flow", "s", (src, dst, seq), src,
                            self.sim.now, self._order(), type_name))

    def flow_recv(self, src: str, dst: str, seq: int) -> None:
        self.events.append(("flow", "f", (src, dst, seq), dst,
                            self.sim.now, self._order(), None))

    # -- introspection ---------------------------------------------------
    def end_time(self) -> float:
        """Trace horizon: driver finish if seen, else the last completion."""
        if self.finish_time is not None:
            return self.finish_time
        latest = 0.0
        for rec in self.cmds.values():
            if rec.complete is not None and rec.complete > latest:
                latest = rec.complete
        return latest
