"""Observability: command-lifecycle tracing, exporters, metric snapshots.

The package has three layers:

* :mod:`repro.obs.trace` — the :class:`Tracer` event recorder plus the
  module-level ``TRACE_ENABLED`` switch (env ``REPRO_TRACE=1`` or CLI
  ``--trace``). When disabled, the system allocates nothing: every hook
  site is a single ``is not None`` check on a cached attribute.
* :mod:`repro.obs.export` — the Chrome/Perfetto ``trace_event`` JSON
  exporter (load the file at https://ui.perfetto.dev).
* :mod:`repro.obs.registry` — versioned snapshots of a
  :class:`~repro.sim.metrics.Metrics` instance, embedded by the perf
  harness into ``BENCH_control_plane.json``.
"""

from .trace import TRACE_ENABLED, Tracer, trace_enabled_default
from .export import to_chrome_trace, write_chrome_trace
from .registry import SNAPSHOT_VERSION, snapshot_metrics

__all__ = [
    "TRACE_ENABLED",
    "Tracer",
    "trace_enabled_default",
    "to_chrome_trace",
    "write_chrome_trace",
    "SNAPSHOT_VERSION",
    "snapshot_metrics",
]
