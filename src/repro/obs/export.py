"""Chrome/Perfetto ``trace_event`` JSON exporter.

Converts a :class:`~repro.obs.trace.Tracer` into the Trace Event Format
(the JSON flavour understood by ``chrome://tracing`` and
https://ui.perfetto.dev). Layout:

* one *process* (pid) per simulated node, named after it (controller and
  driver first, then the workers in numeric order);
* tid 0 ("control") carries the node's serial control thread — actor
  handler spans, controller decision/validate/patch/template spans — as
  ``"X"`` complete events (the control thread never overlaps itself);
* tid 1 ("commands") carries command execution as async ``"b"``/``"e"``
  pairs keyed by command id, because a worker's execution slots run many
  commands concurrently;
* flow events ``"s"``/``"f"`` link a message's reliable-channel departure
  to its in-order release on the receiver. Data-copy payloads get category
  ``"copy"``; everything else is ``"ctrl"``.

Virtual-clock seconds are scaled to the format's microseconds. The
engine's event sequence number breaks ties between simultaneous events so
the exported order matches execution order exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .trace import Tracer

try:
    from ..nimbus.commands import CommandKind
    _KIND_NAMES = {k.value: k.name for k in CommandKind}
except ImportError:  # pragma: no cover - obs must not hard-require nimbus
    _KIND_NAMES = {}

_US = 1e6  # virtual seconds -> trace microseconds


def _node_order(name: str):
    """Sort key putting driver/controller first, then workers numerically."""
    if name == "driver":
        return (0, 0, name)
    if name == "controller":
        return (1, 0, name)
    tail = name.rsplit("-", 1)[-1]
    if tail.isdigit():
        return (2, int(tail), name)
    return (3, 0, name)


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Render ``tracer`` as a Trace Event Format object."""
    nodes = set()
    for ev in tracer.events:
        if ev[0] == "span" or ev[0] == "inst":
            nodes.add(ev[1])
        else:  # flow
            nodes.add(ev[3])
    for rec in tracer.cmds.values():
        nodes.add(rec.node)
    pids = {name: pid for pid, name in
            enumerate(sorted(nodes, key=_node_order), start=1)}

    events: List[tuple] = []  # (ts_us, order, event_dict)

    def emit(ts: float, order: int, ev: Dict[str, Any]) -> None:
        events.append((ts * _US, order, ev))

    meta: List[Dict[str, Any]] = []
    for name, pid in pids.items():
        meta.append({"ph": "M", "pid": pid, "tid": 0,
                     "name": "process_name", "args": {"name": name}})
        meta.append({"ph": "M", "pid": pid, "tid": 0,
                     "name": "thread_name", "args": {"name": "control"}})
        meta.append({"ph": "M", "pid": pid, "tid": 1,
                     "name": "thread_name", "args": {"name": "commands"}})

    for ev in tracer.events:
        tag = ev[0]
        if tag == "span":
            _, node, cat, name, ts, dur, order, args = ev
            rec: Dict[str, Any] = {
                "ph": "X", "pid": pids[node], "tid": 0, "cat": cat,
                "name": name, "ts": ts * _US, "dur": dur * _US,
            }
            if args:
                rec["args"] = args
            emit(ts, order, rec)
        elif tag == "inst":
            _, node, cat, name, ts, order, args = ev
            rec = {
                "ph": "i", "pid": pids[node], "tid": 0, "cat": cat,
                "name": name, "ts": ts * _US, "s": "t",
            }
            if args:
                rec["args"] = args
            emit(ts, order, rec)
        else:  # flow
            _, phase, key, node, ts, order, type_name = ev
            src, dst, seq = key
            cat = "copy" if type_name == "DataMessage" else "ctrl"
            rec = {
                "ph": phase, "pid": pids[node], "tid": 0, "cat": cat,
                "name": f"{src}->{dst}", "id": f"{src}:{dst}:{seq}",
                "ts": ts * _US,
            }
            if phase == "f":
                rec["bp"] = "e"
                # finish flows name the same cat as their start; the start
                # event carried the message type, look it up lazily below
            else:
                rec["args"] = {"type": type_name}
            emit(ts, order, rec)

    # "f" events must carry the same cat as their "s"; patch the finishes
    # whose start was a DataMessage.
    copy_ids = {e[2]["id"] for e in events
                if e[2]["ph"] == "s" and e[2]["cat"] == "copy"}
    for _, _, rec in events:
        if rec["ph"] == "f" and rec["id"] in copy_ids:
            rec["cat"] = "copy"

    # Command execution as async begin/end pairs on tid 1.
    for rec in sorted(tracer.cmds.values(), key=lambda r: r.cid):
        if rec.start is None or rec.complete is None:
            continue
        pid = pids[rec.node]
        kind = _KIND_NAMES.get(rec.kind, str(rec.kind))
        name = rec.function or kind
        args = {"cid": rec.cid, "kind": kind, "run_seq": rec.run_seq,
                "enqueue_ts": rec.enqueue * _US,
                "ready_ts": None if rec.ready is None else rec.ready * _US,
                "release": None if rec.release is None
                else list(rec.release)}
        emit(rec.start, rec.cid, {
            "ph": "b", "pid": pid, "tid": 1, "cat": "command",
            "name": name, "id": rec.cid, "ts": rec.start * _US,
            "args": args,
        })
        emit(rec.complete, rec.cid, {
            "ph": "e", "pid": pid, "tid": 1, "cat": "command",
            "name": name, "id": rec.cid, "ts": rec.complete * _US,
        })

    events.sort(key=lambda item: (item[0], item[1]))
    trace_events = meta + [rec for _, _, rec in events]
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "end_time_s": tracer.end_time(),
            "commands": len(tracer.cmds),
            "runs": len(tracer.runs),
            "requests": len(tracer.requests),
            "inter_worker_copies": len(tracer.copies),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    """Write ``tracer`` to ``path`` as Perfetto-loadable JSON."""
    doc = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc
