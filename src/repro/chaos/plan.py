"""Fault plans: seeded, reproducible schedules of injected failures.

A :class:`FaultPlan` is pure data plus a root seed. It has two halves:

* **probabilistic rules** (:class:`FaultRule`) — per-message drop / delay /
  duplicate / reorder faults, matched by (src, dst, message-type)
  predicates and decided by a dedicated RNG substream, so the same plan
  and seed produce the byte-identical fault schedule on every run;
* **scripted events** — worker crashes and transient partitions pinned to
  absolute simulation times, for "the worker died mid-install" scenarios
  that probabilities cannot target precisely.

Plans are applied by :class:`~repro.chaos.network.ChaosNetwork`, which
wraps the simulator's network; the protocol layer
(:mod:`repro.nimbus.protocol`) is what must survive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple


@dataclass
class FaultRule:
    """One probabilistic fault matched against each transmitted message.

    ``src``/``dst`` are fnmatch-style globs over actor names
    (``worker-*``, ``controller``, ``driver``); ``message_types`` is an
    optional set of message class names. ``probability`` is evaluated per
    matching message on the plan's dedicated RNG substream.
    """

    kind: str  # "drop" | "delay" | "duplicate" | "reorder"
    probability: float
    src: str = "*"
    dst: str = "*"
    message_types: Optional[Tuple[str, ...]] = None
    min_delay: float = 0.0  # extra latency bounds (delay/duplicate lag)
    max_delay: float = 0.0

    def matches(self, src_name: str, dst_name: str, type_name: str) -> bool:
        if self.message_types is not None and type_name not in self.message_types:
            return False
        return (fnmatchcase(src_name, self.src)
                and fnmatchcase(dst_name, self.dst))


@dataclass
class FaultDecision:
    """The chaos verdict for one message transmission."""

    drop: bool = False
    extra_delay: float = 0.0
    duplicate: bool = False
    dup_lag: float = 0.0
    reorder: bool = False


class FaultPlan:
    """A seeded, reproducible schedule of network faults and crashes.

    Builder methods chain::

        plan = (FaultPlan(seed=7)
                .drop(0.05, dst="worker-*")
                .delay(0.10, max_delay=2e-4)
                .crash_worker(at=0.5, worker=3))

    The ``seed`` feeds the chaos RNG substream only — application
    randomness draws from the cluster's own :class:`SeedSequence`, so
    turning chaos on or off never perturbs workload behavior.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rules: List[FaultRule] = []
        #: scripted (time, kind, args) events, e.g. ("crash", worker_id)
        self.scripted: List[Tuple[float, str, tuple]] = []

    # -- probabilistic rules -------------------------------------------
    def rule(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def drop(self, probability: float, src: str = "*", dst: str = "*",
             message_types: Optional[Tuple[str, ...]] = None) -> "FaultPlan":
        """Drop matching messages with ``probability``."""
        return self.rule(FaultRule("drop", probability, src, dst, message_types))

    def delay(self, probability: float, min_delay: float = 0.0,
              max_delay: float = 2e-4, src: str = "*", dst: str = "*",
              message_types: Optional[Tuple[str, ...]] = None) -> "FaultPlan":
        """Add uniform extra latency in [min_delay, max_delay] seconds."""
        return self.rule(FaultRule("delay", probability, src, dst,
                                   message_types, min_delay, max_delay))

    def duplicate(self, probability: float, lag: float = 1e-4,
                  src: str = "*", dst: str = "*",
                  message_types: Optional[Tuple[str, ...]] = None) -> "FaultPlan":
        """Deliver matching messages twice, the copy lagging by ``lag``."""
        return self.rule(FaultRule("duplicate", probability, src, dst,
                                   message_types, max_delay=lag))

    def reorder(self, probability: float, src: str = "*", dst: str = "*",
                message_types: Optional[Tuple[str, ...]] = None) -> "FaultPlan":
        """Hold a matching message and release it after the pair's next send."""
        return self.rule(FaultRule("reorder", probability, src, dst,
                                   message_types))

    # -- scripted events -----------------------------------------------
    def crash_worker(self, at: float, worker: int) -> "FaultPlan":
        """Permanently kill ``worker`` at simulation time ``at``."""
        self.scripted.append((at, "crash", (worker,)))
        return self

    def pause_actor(self, at: float, actor: str, duration: float) -> "FaultPlan":
        """Transient partition: cut ``actor`` off for ``duration`` seconds.

        This is the simulation's "crash and restart" — the process keeps
        its state but is unreachable for a while, exactly the window where
        unacked control messages must be retransmitted.
        """
        self.scripted.append((at, "pause", (actor, duration)))
        return self

    def slow_worker(self, at: float, worker: int,
                    scale: float) -> "FaultPlan":
        """At time ``at``, scale ``worker``'s task durations by ``scale``.

        Models a degraded machine (contended CPU, thermal throttling, a
        noisy neighbor) rather than a dead one — the straggler the
        adaptive rebalancer exists to route around (Fig. 10). ``scale``
        may be < 1.0 to model recovery, or 1.0 to end an earlier slowdown.
        """
        self.scripted.append((at, "slow", (worker, scale)))
        return self

    def demand_step(self, at: float, scale: float) -> "FaultPlan":
        """At time ``at``, scale *every* worker's task durations by
        ``scale`` (multiplicatively, so scripted stragglers keep their
        relative slowness).

        Models a cluster-wide demand change — the input got ``scale``×
        heavier per task — which is the scripted, seeded stimulus the
        autoscaler's scale-step experiments react to. Workers provisioned
        after ``at`` inherit the ambient level via
        :meth:`ambient_demand_scale`.
        """
        self.scripted.append((at, "demand", (scale,)))
        return self

    def ambient_demand_scale(self, now: float) -> float:
        """Product of all demand steps at or before ``now`` — the duration
        scale a worker provisioned at ``now`` must start with."""
        s = 1.0
        for at, kind, args in self.scripted:
            if kind == "demand" and at <= now:
                s *= args[0]
        return s

    def apply_scripted(self, sim, network, workers: Dict[int, object]) -> None:
        """Schedule the scripted events onto a wired cluster.

        ``workers`` is held by reference: a "demand" event scales every
        worker in the dict *at fire time*, including any the autoscaler
        provisioned after wiring.
        """
        for at, kind, args in sorted(self.scripted):
            if kind == "crash":
                (wid,) = args
                sim.schedule_at(at, workers[wid].fail)
            elif kind == "pause":
                name, duration = args
                sim.schedule_at(at, network.partition, name)
                sim.schedule_at(at + duration, network.heal, name)
            elif kind == "slow":
                wid, scale = args
                sim.schedule_at(at, self._set_duration_scale,
                                workers[wid], scale)
            elif kind == "demand":
                (scale,) = args
                sim.schedule_at(at, self._apply_demand_step, workers, scale)
            else:  # pragma: no cover - guarded by the builder methods
                raise ValueError(f"unknown scripted fault kind {kind!r}")

    @staticmethod
    def _set_duration_scale(worker, scale: float) -> None:
        worker.duration_scale = scale

    @staticmethod
    def _apply_demand_step(workers, scale: float) -> None:
        for worker in workers.values():
            worker.duration_scale *= scale

    # -- decision ------------------------------------------------------
    def decide(self, rng, src_name: str, dst_name: str,
               msg) -> Optional[FaultDecision]:
        """Evaluate every rule against one transmission, in rule order.

        Each matching rule consumes exactly one RNG draw whether or not it
        fires, so the fault schedule depends only on the message sequence,
        never on which faults happened to fire earlier.
        """
        if not self.rules:
            return None
        type_name = type(msg).__name__
        decision = FaultDecision()
        hit = False
        for rule in self.rules:
            if not rule.matches(src_name, dst_name, type_name):
                continue
            draw = rng.random()
            if draw >= rule.probability:
                continue
            hit = True
            if rule.kind == "drop":
                decision.drop = True
            elif rule.kind == "delay":
                decision.extra_delay += rng.uniform(rule.min_delay,
                                                    rule.max_delay)
            elif rule.kind == "duplicate":
                decision.duplicate = True
                decision.dup_lag = rule.max_delay
            elif rule.kind == "reorder":
                decision.reorder = True
        return decision if hit else None

    # -- profiles ------------------------------------------------------
    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """Build one of the named stock plans (see :data:`PROFILES`)."""
        try:
            builder = PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown chaos profile {name!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None
        return builder(seed)


def _profile_light(seed: int) -> FaultPlan:
    """Mild background loss: 1% drops, occasional delay."""
    return (FaultPlan(seed)
            .drop(0.01)
            .delay(0.05, max_delay=2e-4))


def _profile_lossy(seed: int) -> FaultPlan:
    """The acceptance profile: 5% drops, 2x latency jitter, dups, reorders."""
    return (FaultPlan(seed)
            .drop(0.05)
            .delay(0.10, max_delay=2e-4)
            .duplicate(0.02)
            .reorder(0.03))


def _profile_hostile(seed: int) -> FaultPlan:
    """Heavy chaos: every fault kind at elevated rates."""
    return (FaultPlan(seed)
            .drop(0.10)
            .delay(0.20, max_delay=5e-4)
            .duplicate(0.05)
            .reorder(0.08))


#: name -> builder(seed); the CLI exposes these via ``--chaos-profile``
PROFILES = {
    "light": _profile_light,
    "lossy": _profile_lossy,
    "hostile": _profile_hostile,
}
