"""Deterministic chaos injection for the simulated control plane.

The subsystem has two pieces:

* :class:`FaultPlan` — a seeded, reproducible fault schedule: probabilistic
  drop/delay/duplicate/reorder rules matched by (src, dst, message-type),
  plus scripted worker crashes and transient partitions;
* :class:`ChaosNetwork` — a :class:`~repro.sim.network.Network` subclass
  that executes the plan on every transmission.

Stock plans live in :data:`PROFILES` (``light``, ``lossy``, ``hostile``)
and are exposed on the CLI via ``--chaos-profile``/``--chaos-seed``.
"""

from .plan import FaultDecision, FaultPlan, FaultRule, PROFILES
from .network import ChaosNetwork, REORDER_FLUSH

__all__ = [
    "ChaosNetwork",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "PROFILES",
    "REORDER_FLUSH",
]
