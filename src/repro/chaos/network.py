"""A network that injects faults according to a :class:`FaultPlan`.

:class:`ChaosNetwork` subclasses the simulator's :class:`Network` and
applies the plan's probabilistic rules to every transmission:

* **drop** — the message vanishes (``chaos.drops``);
* **delay** — extra latency is added on top of the link model
  (``chaos.delays``);
* **duplicate** — the message is delivered twice, the copy lagging
  (``chaos.duplicates``);
* **reorder** — the message is held and released onto the link *after*
  the pair's next transmission — or after a short flush timeout if the
  pair goes quiet — so it genuinely arrives out of order
  (``chaos.reorders``).

All randomness comes from one substream of the plan's seed, and every
matching rule consumes exactly one draw per message, so a given
(plan, seed, workload) triple produces a byte-identical fault schedule —
recorded in :attr:`ChaosNetwork.fault_log` — on every run.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sim.actor import Actor, Message
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import SeedSequence
from .plan import FaultDecision, FaultPlan

#: how long a reordered message may be held if its pair goes quiet
REORDER_FLUSH = 0.01


class ChaosNetwork(Network):
    """Full-mesh network with plan-driven fault injection."""

    #: any transmission (loopback included) may be dropped by the plan, so
    #: the reliable layer must keep full retransmission bookkeeping
    lossless = False

    def __init__(self, sim: Simulator, plan: FaultPlan, **kwargs):
        super().__init__(sim, **kwargs)
        self.plan = plan
        self.rng = SeedSequence(plan.seed).stream("chaos.network")
        #: (time, fault kind, src name, dst name, message type) per fault
        self.fault_log: List[Tuple[float, str, str, str, str]] = []
        # held (msg, decision) per directed pair, awaiting reorder release
        self._held: Dict[Tuple[str, str], List[Tuple[Message, FaultDecision]]] = {}

    def transmit(self, src: Actor, dst: Actor, msg: Message, depart: float) -> None:
        if src.name in self.partitioned or dst.name in self.partitioned:
            self._drop_partitioned(src, dst, msg)
            return
        decision = self.plan.decide(self.rng, src.name, dst.name, msg)
        if decision is None:
            self._deliver(src, dst, msg, depart)
            self._release_held(src, dst, depart)
            return
        if decision.drop:
            self._log("drop", src, dst, msg)
            return
        if decision.reorder:
            self._log("reorder", src, dst, msg)
            self._held.setdefault((src.name, dst.name), []).append(
                (msg, decision))
            # safety valve: if the pair goes quiet the hold still drains
            self.sim.schedule(REORDER_FLUSH, self._flush_pair,
                              src.name, dst.name)
            return
        self._inject(src, dst, msg, depart, decision)
        self._release_held(src, dst, depart)

    # ------------------------------------------------------------------
    def _inject(self, src: Actor, dst: Actor, msg: Message, depart: float,
                decision: FaultDecision) -> None:
        """Deliver one message with its (non-drop) faults applied."""
        if decision.extra_delay > 0.0:
            self._log("delay", src, dst, msg)
        self._deliver(src, dst, msg, depart, extra_delay=decision.extra_delay)
        if decision.duplicate:
            self._log("duplicate", src, dst, msg)
            self._deliver(src, dst, msg, depart,
                          extra_delay=decision.extra_delay + decision.dup_lag)

    def _release_held(self, src: Actor, dst: Actor, depart: float) -> None:
        """Put held messages on the link *behind* the one just delivered."""
        held = self._held.pop((src.name, dst.name), None)
        if not held:
            return
        for msg, decision in held:
            self._inject(src, dst, msg, depart, decision)

    def _flush_pair(self, src_name: str, dst_name: str) -> None:
        held = self._held.pop((src_name, dst_name), None)
        if not held:
            return
        src = self.actors[src_name]
        dst = self.actors[dst_name]
        if src_name in self.partitioned or dst_name in self.partitioned:
            for msg, _decision in held:
                self._drop_partitioned(src, dst, msg)
            return
        for msg, decision in held:
            self._inject(src, dst, msg, self.sim.now, decision)

    def _log(self, kind: str, src: Actor, dst: Actor, msg: Message) -> None:
        self.fault_log.append(
            (self.sim.now, kind, src.name, dst.name, type(msg).__name__))
        if self.metrics is not None:
            self.metrics.incr(f"chaos.{kind}s")
