"""Controller shards: the sharded control plane's fan-out tier (§16).

A :class:`ControllerShard` owns a fixed slice of the worker set
(``worker_id % num_shards``) and, with it, the steady-state dispatch
traffic for those workers: the coordinator ships one
:class:`~repro.nimbus.protocol.ShardWindow` per shard per self-schedule
window, the shard relays the per-worker grants on its own control
thread, collects the workers' ``WindowSummary`` replies, and returns one
aggregated :class:`~repro.nimbus.protocol.ShardWindowSummary`. The
coordinator's message count per window collapses from O(workers) to
O(shards) while every byte that reaches a worker — and therefore every
computed value — is identical to decentralized mode.

Shards are deliberately dumb: no id allocation, no directory writes, no
epoch ownership. All of that stays on the coordinator (DESIGN.md §16
explains why bit-identity forces this split), which is also what lets a
shard vanish from the protocol entirely when no sharded job is running —
shards with no traffic schedule no events.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..sim.actor import Actor
from ..sim.metrics import Metrics
from .costs import CostModel
from . import protocol as P


class _ShardWindowState:
    """One window's fan-in bookkeeping on one shard."""

    __slots__ = ("expected", "summaries")

    def __init__(self) -> None:
        self.expected: Set[int] = set()
        self.summaries: List[P.WindowSummary] = []


class ControllerShard(P.ReliableEndpoint, Actor):
    """One shard of the sharded control plane.

    Holds a reference to the coordinator (for the worker directory and
    the summary return path) but never mutates coordinator state — all
    communication is by message, over the same reliable channels the
    rest of the control plane uses.
    """

    def __init__(self, sim, shard_id: int, controller, costs: CostModel,
                 metrics: Metrics):
        super().__init__(sim, f"shard-{shard_id}")
        self._init_reliable(metrics)
        self.shard_id = shard_id
        self.controller = controller
        self.costs = costs
        self.metrics = metrics
        #: (job_id, window_id) -> fan-in state for windows in flight
        self._windows: Dict[Tuple[int, int], _ShardWindowState] = {}
        self.windows_relayed = 0
        self.summaries_folded = 0

    # ------------------------------------------------------------------
    def handle(self, msg) -> None:
        if isinstance(msg, P.WindowSummary):
            self._on_summary(msg)
        elif isinstance(msg, P.ShardWindow):
            self._on_window(msg)
        elif isinstance(msg, P.ShardRegrant):
            self._on_regrant(msg)
        elif isinstance(msg, P.ShardAbort):
            self._on_abort(msg)
        else:
            raise TypeError(f"shard-{self.shard_id}: unexpected {msg!r}")

    # ------------------------------------------------------------------
    def _on_window(self, msg: P.ShardWindow) -> None:
        """Relay one window slice to this shard's workers.

        The per-worker dispatch work is charged on *this* shard's control
        thread — N shards fan out in parallel where the decentralized
        coordinator serialized the whole loop.
        """
        state = _ShardWindowState()
        self._windows[(msg.job_id, msg.window_id)] = state
        workers = self.controller.workers
        for worker_id, window in msg.grants:
            self.charge(self.costs.self_schedule_grant_per_task
                        * len(window.instances))
            state.expected.add(worker_id)
            self.send_reliable(workers[worker_id], window)
        self.windows_relayed += 1

    def _on_regrant(self, msg: P.ShardRegrant) -> None:
        """Relay a stalled worker's re-granted remainder.

        The worker stayed in ``expected`` when its stalled summary was
        forwarded, so no fan-in state changes here. A missing window
        means the job was released (or the window aborted) between stall
        and re-grant — drop it; the worker never sees the grant and the
        coordinator's abort already cleaned up.
        """
        window = msg.window
        state = self._windows.get((msg.job_id, window.window_id))
        if state is None or msg.worker_id not in state.expected:
            self.metrics.incr("shard.orphan_regrants")
            return
        self.charge(self.costs.self_schedule_grant_per_task
                    * len(window.instances))
        self.send_reliable(self.controller.workers[msg.worker_id], window)

    def _on_summary(self, msg: P.WindowSummary) -> None:
        """Fold one worker's summary into the window's fan-in.

        Stalled summaries are forwarded to the coordinator immediately
        (the re-grant must not wait for the shard's other workers) and
        the worker stays expected. Completed summaries buffer until the
        shard's whole slice has reported, then travel as one message.
        """
        key = (msg.job_id, msg.window_id)
        state = self._windows.get(key)
        if state is None or msg.worker_id not in state.expected:
            self.metrics.incr("shard.orphan_summaries")
            return
        # intra-shard completion handling: the per-row fold work lands
        # here, never on the coordinator
        self.charge(self.costs.controller_completion_per_task
                    * max(1, len(msg.rows)))
        self.summaries_folded += 1
        if msg.stalled:
            self.send_reliable(self.controller, P.ShardWindowSummary(
                self.shard_id, msg.window_id, [msg], job_id=msg.job_id))
            return
        state.expected.discard(msg.worker_id)
        state.summaries.append(msg)
        if not state.expected:
            del self._windows[key]
            self.send_reliable(self.controller, P.ShardWindowSummary(
                self.shard_id, msg.window_id, state.summaries,
                job_id=msg.job_id))

    def _on_abort(self, msg: P.ShardAbort) -> None:
        if msg.window_id is None:
            keys = [k for k in self._windows if k[0] == msg.job_id]
        else:
            key = (msg.job_id, msg.window_id)
            keys = [key] if key in self._windows else []
        for key in keys:
            del self._windows[key]
            self.metrics.incr("shard.aborted_windows")

    def outstanding_windows(self) -> int:
        return len(self._windows)


def default_shard_count(num_workers: int) -> int:
    """sqrt scaling, clamped to [2, 16]: 4 workers → 2 shards, 100 → 10,
    1000 → 16. Square root balances coordinator fan-out (S messages)
    against per-shard fan-out (W/S messages)."""
    import math

    return min(16, max(2, math.isqrt(max(1, num_workers))))
