"""The Nimbus control plane command set (§3.4).

The control plane has four major command kinds: *data* commands (create /
destroy objects), *copy* commands (modeled as an asynchronous SEND half on
the source worker and a RECV half on the destination), *file* commands
(load / save objects from durable storage), and *task* commands (execute an
application function).

Every command has five fields — a unique identifier, a read set, a write
set, a *before set* of same-worker command ids that must complete first, and
a parameter blob. Task commands add a sixth field, the application function.

Copy matching: a SEND pushes its payload as soon as its before set is
satisfied; the payload is tagged so the destination worker can match it to
the corresponding RECV even if the data arrives before the RECV has been
enqueued (the push model of §3.4).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from .data import ObjectId, WorkerId

CommandId = int


class CommandKind(IntEnum):
    TASK = 0
    SEND = 1
    RECV = 2
    CREATE = 3
    DESTROY = 4
    LOAD = 5
    SAVE = 6


class Command:
    """A concrete, runnable command dispatched to (or instantiated on) a worker.

    ``before`` contains ids of commands *on the same worker*; remote
    dependencies are always encoded through copy commands (§3.4).
    """

    __slots__ = (
        "cid",
        "kind",
        "function",
        "read",
        "write",
        "before",
        "params",
        "worker",
        "dst_worker",
        "src_worker",
        "tag",
        "size_bytes",
        # worker-local scheduling state, stamped by Worker._register:
        # outstanding-dependency count and (instance_key, report) metadata.
        # Kept on the command (not in side dicts) because the readiness
        # cascade is the hottest path in the whole simulation.
        "_rem",
        "_wmeta",
        # compiled-plan state (repro.core.compiled): intra-batch successor
        # commands (direct references), batch position, owning arena, and
        # the resolved TaskFunction. _csucc is None for commands built
        # outside an arena, which is how Worker._complete distinguishes
        # the compiled cascade from the interpreted one.
        "_csucc",
        "_cpos",
        "_carena",
        "_cfn",
    )

    def __init__(
        self,
        cid: CommandId,
        kind: CommandKind,
        worker: WorkerId,
        read: Tuple[ObjectId, ...] = (),
        write: Tuple[ObjectId, ...] = (),
        before: Iterable[CommandId] = (),
        params: Any = None,
        function: Optional[str] = None,
        dst_worker: Optional[WorkerId] = None,
        src_worker: Optional[WorkerId] = None,
        tag: Optional[Hashable] = None,
        size_bytes: int = 0,
    ):
        self.cid = cid
        self.kind = kind
        self.worker = worker
        self.read = tuple(read)
        self.write = tuple(write)
        self.before = list(before)
        self.params = params
        self.function = function
        self.dst_worker = dst_worker  # SEND only
        self.src_worker = src_worker  # RECV only
        self.tag = tag  # SEND/RECV matching tag
        self.size_bytes = size_bytes  # payload size for copies
        self._csucc = None
        self._cfn = None

    def conflicts(self) -> Tuple[Tuple[ObjectId, ...], Tuple[ObjectId, ...]]:
        """(reads, writes) used for object-conflict dependency tracking."""
        return self.read, self.write

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fn = f" fn={self.function}" if self.function else ""
        return (
            f"<Cmd {self.cid} {self.kind.name} w{self.worker}{fn} "
            f"r={self.read} w={self.write} before={self.before}>"
        )


def make_task(
    cid: CommandId,
    worker: WorkerId,
    function: str,
    read: Tuple[ObjectId, ...],
    write: Tuple[ObjectId, ...],
    before: Iterable[CommandId] = (),
    params: Any = None,
) -> Command:
    """Construct a task command."""
    return Command(
        cid,
        CommandKind.TASK,
        worker,
        read=read,
        write=write,
        before=before,
        params=params,
        function=function,
    )


def make_copy_pair(
    send_cid: CommandId,
    recv_cid: CommandId,
    oid: ObjectId,
    src: WorkerId,
    dst: WorkerId,
    send_before: Iterable[CommandId] = (),
    recv_before: Iterable[CommandId] = (),
    size_bytes: int = 0,
) -> Tuple[Command, Command]:
    """Construct a matched (SEND, RECV) copy pair moving ``oid`` src → dst.

    The shared tag is the receive command id, which is unique system-wide.
    """
    tag = ("cid", recv_cid)
    send = Command(
        send_cid,
        CommandKind.SEND,
        src,
        read=(oid,),
        before=send_before,
        dst_worker=dst,
        tag=tag,
        size_bytes=size_bytes,
    )
    recv = Command(
        recv_cid,
        CommandKind.RECV,
        dst,
        write=(oid,),
        before=recv_before,
        src_worker=src,
        tag=tag,
        size_bytes=size_bytes,
    )
    return send, recv


def make_local_copy(
    cid: CommandId,
    worker: WorkerId,
    src_oid: ObjectId,
    dst_oid: ObjectId,
    before: Iterable[CommandId] = (),
    size_bytes: int = 0,
) -> Command:
    """An intra-worker copy from one object to another (no network)."""
    return Command(
        cid,
        CommandKind.TASK,
        worker,
        read=(src_oid,),
        write=(dst_oid,),
        before=before,
        function="__local_copy__",
        params={"src": src_oid, "dst": dst_oid},
        size_bytes=size_bytes,
    )
