"""Nimbus: the analytics framework hosting execution templates (§3).

Exports the cluster builder, controller/worker/driver actors, the data
model, the command set, the calibrated cost model, and the task runtime.
"""

from .cluster import NimbusCluster
from .commands import Command, CommandKind, make_copy_pair, make_task
from .controller import Controller
from .costs import CostModel, PAPER_COSTS
from .data import (
    LogicalObject,
    ObjectDirectory,
    ObjectStore,
    PartitionPlacement,
)
from .driver import Driver, Job
from .multijob import (
    OID_STRIDE,
    FairShareQueue,
    JobContext,
    JobManager,
    JobRecord,
    JobRejected,
    merged_registry,
)
from .runtime import FunctionRegistry, TaskContext, TaskFunction
from .worker import DurableStorage, Worker

__all__ = [
    "Command",
    "CommandKind",
    "Controller",
    "CostModel",
    "Driver",
    "DurableStorage",
    "FairShareQueue",
    "FunctionRegistry",
    "Job",
    "JobContext",
    "JobManager",
    "JobRecord",
    "JobRejected",
    "LogicalObject",
    "NimbusCluster",
    "ObjectDirectory",
    "ObjectStore",
    "OID_STRIDE",
    "PAPER_COSTS",
    "PartitionPlacement",
    "TaskContext",
    "TaskFunction",
    "Worker",
    "make_copy_pair",
    "make_task",
    "merged_registry",
]
