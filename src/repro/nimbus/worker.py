"""Nimbus worker (§3.2, §3.4).

Workers satisfy the three control-plane requirements of §3.1:

1. they maintain a local queue of commands and determine readiness locally
   (per-object conflict tracking plus explicit before sets), never asking
   the controller whether a command may run;
2. they exchange data directly: SEND commands push payloads to peers as
   soon as their before sets are satisfied, and RECVs match arrivals by
   tag, buffering data that lands before the command is enqueued;
3. they execute fine-grained tasks on a fixed set of execution slots
   (cores), so one worker runs many short tasks concurrently.

Workers also cache installed worker-template halves and patches, apply
edits in place, run checkpoint save/load against durable storage, and emit
heartbeats for failure detection.
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core import compiled as compiled_mod
from ..core.compiled import CommandArena, CompiledPlan, compile_plan
from ..core.worker_template import WorkerHalf, instantiate_entries
from ..sim.actor import Actor, Message, _Callback
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from .commands import Command, CommandKind
from .costs import CostModel
from .data import ObjectStore
from .multijob import OID_STRIDE
from .runtime import FunctionRegistry, TaskContext
from . import protocol as P


class DurableStorage:
    """Cluster-wide simulated durable storage for checkpoints."""

    def __init__(self) -> None:
        self._data: Dict[Tuple[int, int], Any] = {}

    def save(self, checkpoint_id: int, oid: int, payload: Any) -> None:
        self._data[(checkpoint_id, oid)] = payload

    def load(self, checkpoint_id: int, oid: int) -> Any:
        return self._data.get((checkpoint_id, oid))

    def has(self, checkpoint_id: int, oid: int) -> bool:
        return (checkpoint_id, oid) in self._data


class _InstanceRecord:
    """Per-block-instance completion bookkeeping.

    ``task_times`` is non-None only when the worker was asked to report
    per-task timings (adaptive rebalancing): {local entry index ->
    duration}, where the entry index is recovered as ``cid - cid_base``.
    """

    __slots__ = ("block_id", "instance_id", "block_seq", "remaining",
                 "compute_time", "values", "report_cids", "version",
                 "cid_base", "task_times", "grant")

    def __init__(self, block_id, instance_id, block_seq, remaining,
                 report_cids, version=0, cid_base=0, task_times=None,
                 grant=None):
        self.block_id = block_id
        self.instance_id = instance_id
        self.block_seq = block_seq
        self.remaining = remaining
        self.compute_time = 0.0
        self.values: Dict[int, Any] = {}
        self.report_cids = report_cids
        self.version = version
        self.cid_base = cid_base
        self.task_times: Optional[Dict[int, float]] = task_times
        #: owning self-schedule grant (decentralized mode), else None:
        #: completion folds into a WindowSummary row instead of an
        #: InstanceComplete message
        self.grant: Optional[_WorkerGrant] = grant


class _WorkerGrant:
    """Worker-side state of one self-schedule window (DESIGN.md §14).

    The worker consumes ``instances`` front to back, keeping at most
    ``Worker.self_schedule_depth`` in flight; ``rows`` accumulate one
    completion row per finished instance for the final WindowSummary.
    """

    __slots__ = ("key", "block_id", "version", "half", "instances", "next",
                 "active", "rows", "epoch", "stalled", "reply_to")

    def __init__(self, key, block_id, version, half, instances, epoch,
                 reply_to=None):
        self.key = key  # (job_id, window_id)
        self.block_id = block_id
        self.version = version
        self.half = half
        self.instances = instances  # [(instance_id, cid_base, seq, params)]
        self.next = 0  # instances consumed (started or seen-skipped)
        self.active = 0  # instances in flight locally
        self.rows: List[Tuple] = []
        self.epoch = epoch  # partition-map epoch the grant was issued under
        self.stalled = False
        #: actor name the WindowSummary returns to (sharded mode: the
        #: owning shard); None means the controller
        self.reply_to = reply_to


class Worker(P.ReliableEndpoint, Actor):
    """A Nimbus worker node.

    In decentralized mode (DESIGN.md §14) workers additionally
    self-schedule: a :class:`~repro.nimbus.protocol.SelfScheduleWindow`
    grants a window of template instances, and the worker advances from
    instance to instance locally — checking the partition-map epoch at
    every block boundary — reporting one summary when the window drains.

    Workers speak the reliable channel protocol for all control traffic
    and direct data exchange, and keep idempotent-receive guards at the
    application layer: a redelivered template instantiation, patch
    install, or patch invocation is discarded (counted under
    ``protocol.stale_discards``) instead of re-enqueueing commands whose
    ids are already live — which would silently corrupt the local
    conflict tracker and, through bogus completions, the controller's
    object-version map.
    """

    def __init__(
        self,
        sim: Simulator,
        worker_id: int,
        controller,
        registry: FunctionRegistry,
        costs: CostModel,
        metrics: Metrics,
        storage: DurableStorage,
        slots: int = 8,
        duration_scale: float = 1.0,
        use_compiled: Optional[bool] = None,
    ):
        super().__init__(sim, f"worker-{worker_id}")
        self._init_reliable(metrics)
        self.worker_id = worker_id
        self.controller = controller
        self.registry = registry
        self.costs = costs
        self.metrics = metrics
        self.storage = storage
        self.slots = slots
        self.duration_scale = duration_scale
        #: when True, template instances collect per-task timings and
        #: piggyback them on InstanceComplete (set by the cluster when the
        #: adaptive rebalancer is enabled; off by default so the steady
        #: hot path stays untouched)
        self.report_task_times = False
        self.store = ObjectStore()
        self.peers: Dict[int, "Worker"] = {}  # attached by the cluster

        # command queue state; per-command dependency counts and metadata
        # live on the Command objects themselves (``_rem``/``_wmeta``)
        self._pending: Dict[int, Command] = {}
        self._dependents: Dict[int, List[int]] = {}
        self._ready_tasks = deque()
        self._free_slots: int = slots
        self._last_writer: Dict[int, int] = {}
        self._readers_since: Dict[int, List[int]] = {}

        # copy matching
        self._data_buffer: Dict[Hashable, Tuple[Any, int]] = {}
        self._expected: Dict[Hashable, int] = {}  # tag -> recv cid

        # template and patch caches; templates are keyed per job —
        # (job_id, block_id, version) — so concurrent jobs reusing a
        # block id can never clobber each other's halves
        self._templates: Dict[Tuple[int, str, int], WorkerHalf] = {}
        self._patches: Dict[int, List] = {}
        #: every (patch_id, instance_id) ever run; guards redelivery
        self._ran_patches: set = set()

        # compiled execution plans (repro.core.compiled): instantiations
        # replay a pooled command arena instead of rebuilding command
        # objects. Off via REPRO_COMPILED_TEMPLATES=0 or the constructor.
        self._use_compiled = (compiled_mod.enabled_default()
                              if use_compiled is None else bool(use_compiled))
        self._cross_check = compiled_mod.cross_check_enabled()
        self._patch_plans: Dict[int, CompiledPlan] = {}
        self._live_arenas: set = set()
        self.plans_compiled = 0  # introspection: plan (re)compilations

        # instances
        self._instances: Dict[Hashable, _InstanceRecord] = {}
        #: every (block_id, instance_id) ever started — survives halts so
        #: instantiations redelivered across a recovery stay discarded
        self._seen_instances: set = set()

        #: self-schedule grants in flight, keyed (job_id, window_id)
        self._grants: Dict[Tuple[int, int], _WorkerGrant] = {}
        #: shard-relayed windows that outran their template install on
        #: the direct controller channel, keyed (job_id, block_id,
        #: version); started the moment the install lands
        self._deferred_windows: Dict[Tuple[int, str, int],
                                     List[P.SelfScheduleWindow]] = {}
        #: shard-relayed windows held behind their causal barrier: the
        #: coordinator stamped each with the controller→worker channel
        #: sequence it must not overtake (``barrier_seq``), and the
        #: window starts only once every earlier direct message has been
        #: *handled* (not merely delivered)
        self._barrier_windows: List[P.SelfScheduleWindow] = []
        #: highest controller-channel sequence this worker has handled
        self._ctrl_handled_seq = 0
        #: last partition-map epoch observed (EpochUpdate broadcasts);
        #: distinct from ``_epoch``, the local halt generation below
        self._pm_epoch = 0
        #: causality hint for commands released by a grant self-advance:
        #: ("cmd", cid) of the completing command while the next instance
        #: instantiates, None otherwise (traced runs only)
        self._advance_release = None

        # central-path completion coalescing: completions buffer here and
        # flush as one message after a short window. Tasks sharing a
        # worker's slots finish in microsecond-spaced bursts, so a small
        # window collapses a burst into one controller message without
        # perceptibly delaying block completion (window ≪ task duration).
        self._completion_buffer: List[Tuple[int, int, float, Any, Optional[int]]] = []
        self._completion_flush_pending = False
        self.completion_flush_window = 1e-3

        #: decentralized mode: template instances a self-schedule grant
        #: keeps in flight at once. Instances of one block RMW the same
        #: partitions, so conflict tracking serializes them anyway —
        #: measured: depths 1/2/4 produce identical virtual timelines on
        #: fig07@400 while depth 4 costs ~60% more host wall, because
        #: every instantiated-but-blocked instance inflates the pending
        #: dependency graph that each later ext check and completion
        #: cascade must walk. Instantiation itself is one 2 µs charge, so
        #: eager depth buys no pipelining the tracker would permit.
        self.self_schedule_depth = 1

        #: job ids the controller has released (cancel/crash); in-flight
        #: commands of these jobs drain without executing their bodies
        self._released_jobs: set = set()

        self._epoch = 0  # bumped on halt; stale completions are dropped
        self._dead = False
        #: autoscaler lifecycle: "live" → "draining" (evicted from
        #: scheduling, finishing in-flight commands) → "drained"
        #: (decommissioned: no queued work, no open grants). Purely
        #: observational — the scheduling revocation itself is the
        #: controller's evict_workers; a drained worker stays reachable
        #: so late acks and copy reads never dangle.
        self.lifecycle = "live"
        self.tasks_executed = 0
        #: why the next _on_ready fired: None (ready at enqueue),
        #: ("cmd", cid) or ("data", tag). Written only when tracing; read
        #: by the Tracer to build the critical-path release edges.
        self._trace_release = None
        #: per-completion control-thread charge, hoisted off the cost table
        self._complete_cost = costs.worker_complete_per_command
        #: extra control-thread cost charged per task completion; used by
        #: the Naiad baseline to model its per-callback overhead (§5.3)
        self.callback_overhead = 0.0

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        if self._dead:
            return
        if msg.rel_seq is not None and msg.rel_src == self.controller.name:
            self._ctrl_handled_seq = msg.rel_seq
        if isinstance(msg, P.DataMessage):
            self._on_data(msg)
        elif isinstance(msg, P.DispatchCommand):
            self._on_dispatch(msg)
        elif isinstance(msg, P.DispatchCommandBatch):
            self._on_dispatch_batch(msg)
        elif isinstance(msg, P.InstantiateWorkerTemplate):
            self._on_instantiate_template(msg)
        elif isinstance(msg, P.SelfScheduleWindow):
            self._on_self_schedule(msg)
        elif isinstance(msg, P.EpochUpdate):
            # monotone accept: with sharded relays (and churn-window
            # retransmits) epoch signals arrive over more than one
            # channel, so an older update can land after a newer one —
            # regressing here would wrongly stall re-granted windows
            if msg.epoch > self._pm_epoch:
                self._pm_epoch = msg.epoch
        elif isinstance(msg, P.InstallWorkerTemplate):
            self._on_install_template(msg)
        elif isinstance(msg, P.InstallPatch):
            self._on_install_patch(msg)
        elif isinstance(msg, P.InstantiatePatch):
            self._on_instantiate_patch(msg)
        elif isinstance(msg, P.CreateObjects):
            for oid in msg.oids:
                self.store.create(oid)
        elif isinstance(msg, P.DestroyObjects):
            for oid in msg.oids:
                self.store.destroy(oid)
        elif isinstance(msg, P.ReleaseJob):
            self._on_release_job(msg)
        elif isinstance(msg, P.SaveCheckpoint):
            self._on_save_checkpoint(msg)
        elif isinstance(msg, P.LoadCheckpoint):
            self._on_load_checkpoint(msg)
        elif isinstance(msg, P.Halt):
            self._on_halt()
        else:
            raise TypeError(f"worker got unexpected message {msg!r}")
        if self._barrier_windows:
            # the message above may have been the last one a parked
            # shard-relayed window was stamped against — replaying *after*
            # the dispatch restores the handled-order the decentralized
            # single channel gives for free
            self._replay_barrier_windows()

    def _replay_barrier_windows(self) -> None:
        ready = [w for w in self._barrier_windows
                 if w.barrier_seq <= self._ctrl_handled_seq]
        if not ready:
            return
        self._barrier_windows = [w for w in self._barrier_windows
                                 if w.barrier_seq > self._ctrl_handled_seq]
        for window in ready:
            self._on_self_schedule(window)

    # ------------------------------------------------------------------
    # Central dispatch path
    # ------------------------------------------------------------------
    def _on_dispatch(self, msg: P.DispatchCommand) -> None:
        self.charge(self.costs.worker_enqueue_per_command)
        meta = (("central", msg.block_seq), msg.report, None)
        self._enqueue(msg.command, meta)

    def _on_dispatch_batch(self, msg: P.DispatchCommandBatch) -> None:
        """Coalesced central dispatch: enqueue cost stays per command.

        Commands resolve sequentially (not via :meth:`_enqueue_batch`):
        a central stream carries no cached before sets, so the conflict
        tracker must see each command exactly as it would have arrived
        in one-message-per-command dispatch.
        """
        self.charge(self.costs.worker_enqueue_per_command * len(msg.items))
        scope = ("central", msg.block_seq)
        for cmd, report in msg.items:
            self._enqueue(cmd, (scope, report, None))

    # ------------------------------------------------------------------
    # Template install / instantiate
    # ------------------------------------------------------------------
    def _stale(self) -> None:
        self.metrics.incr("protocol.stale_discards")

    def _on_install_template(self, msg: P.InstallWorkerTemplate) -> None:
        if (msg.job_id, msg.block_id, msg.version) in self._templates:
            # redelivered install: reinstalling would wipe edits already
            # applied to the cached half
            self._stale()
            return
        entries = [e.clone() if e is not None else None for e in msg.entries]
        half = WorkerHalf(msg.block_id, msg.version, entries, msg.reports)
        self._templates[(msg.job_id, msg.block_id, msg.version)] = half
        self.charge(
            self.costs.install_worker_template_worker_per_task * len(entries)
        )
        self.metrics.incr("worker_templates_installed")
        if self._trace is not None:
            self._trace.instant(self.name, "template", "template.install",
                                block_id=msg.block_id, version=msg.version,
                                entries=len(entries))
        # start any shard-relayed window that arrived before this install
        deferred = self._deferred_windows.pop(
            (msg.job_id, msg.block_id, msg.version), None)
        if deferred:
            for window in deferred:
                self._on_self_schedule(window)

    def _on_instantiate_template(self, msg: P.InstantiateWorkerTemplate) -> None:
        key = (msg.block_id, msg.instance_id)
        if key in self._seen_instances:
            # redelivered (or stale pre-halt) instantiation: its command
            # ids were already allocated once; running it again would
            # collide with live commands and double-apply edits
            self._stale()
            return
        self._seen_instances.add(key)
        half = self._templates.get((msg.job_id, msg.block_id, msg.version))
        if half is None:
            raise KeyError(
                f"worker {self.worker_id}: job {msg.job_id} asked to "
                f"instantiate template ({msg.block_id!r}, v{msg.version}) "
                f"which was never installed here (installed: "
                f"{sorted(self._templates)})"
            )
        if msg.edits:
            half.apply_edit_ops(msg.edits)
            self.charge(self.costs.worker_edit_per_task * len(msg.edits))
        self._start_instance(half, msg.block_id, msg.version, msg.instance_id,
                             msg.cid_base, msg.block_seq, msg.params, key)

    def _start_instance(self, half: WorkerHalf, block_id, version,
                        instance_id, cid_base, block_seq, params, key,
                        grant: Optional[_WorkerGrant] = None) -> None:
        """Instantiate one template instance from an installed half.

        Shared by the centralized path (one InstantiateWorkerTemplate per
        instance) and the decentralized path (the worker advances through
        a self-schedule window); the command stream is identical either
        way — only ``grant`` routing of the completion differs.
        """
        if self._use_compiled:
            self._instantiate_compiled(half, block_id, version, instance_id,
                                       cid_base, block_seq, params, key,
                                       grant=grant)
            return
        commands = half.instantiate(
            self.worker_id, instance_id, cid_base, params,
        )
        self.charge(
            self.costs.worker_instantiate_per_command * len(commands)
        )
        report_cids = {
            cid_base + idx for idx in half.reports
            if half.entries[idx] is not None
        }
        record = _InstanceRecord(
            block_id, instance_id, block_seq,
            remaining=len(commands), report_cids=report_cids,
            version=version, cid_base=cid_base,
            task_times={} if self.report_task_times else None,
            grant=grant,
        )
        self._instances[key] = record
        meta_key = ("instance", key)
        self._enqueue_batch(
            commands,
            [(meta_key, cmd.cid in report_cids, record) for cmd in commands])
        if not commands:
            self._finish_instance(record)

    def _instantiate_compiled(self, half: WorkerHalf, block_id, version,
                              instance_id, cid_base, block_seq, params, key,
                              grant: Optional[_WorkerGrant] = None) -> None:
        """Compiled fast path: replay a pooled command arena.

        Equivalent to ``half.instantiate`` + ``_enqueue_batch`` — same
        charge, same resolution order, same synchronous completions — but
        touching only per-instance fields of reused Command objects.
        """
        fresh_plan = half._plan is None
        if fresh_plan:
            self.plans_compiled += 1
        plan = half.compiled_plan()
        if fresh_plan and self._trace is not None:
            self._trace.instant(self.name, "template", "plan-compile",
                                block_id=block_id, **plan.describe())
        m = plan.m
        self.charge(self.costs.worker_instantiate_per_command * m)
        report_cids = {cid_base + plan.index[p] for p in plan.report_positions}
        record = _InstanceRecord(
            block_id, instance_id, block_seq,
            remaining=m, report_cids=report_cids,
            version=version, cid_base=cid_base,
            task_times={} if self.report_task_times else None,
            grant=grant,
        )
        self._instances[key] = record
        if m == 0:
            self._finish_instance(record)
            return
        meta_key = ("instance", key)
        arena = self._run_compiled_plan(
            plan, cid_base, instance_id, params,
            (meta_key, False, record), (meta_key, True, record),
        )
        if self._cross_check:
            self._cross_check_compiled(
                half.entries, half.reports, plan, arena,
                instance_id, cid_base, params,
            )

    def _run_compiled_plan(self, plan: CompiledPlan, cid_base: int,
                           instance_id, params, wm0, wm1) -> CommandArena:
        """Register, resolve, and sweep one instantiation of ``plan``.

        Mirrors ``_enqueue_batch`` exactly: external dependencies are read
        from the pre-batch conflict tracker (nothing external can complete
        mid-handler, so checking up front is equivalent to the interpreted
        per-command interleaving), the tracker gets the batch's *net*
        update, and the sweep visits positions in entry order so zero-dep
        SEND/RECV/CREATE commands complete synchronously at the same
        points the interpreted path completes them.
        """
        arena = plan.acquire(self.worker_id, self.registry)
        self._live_arenas.add(arena)
        cmds = arena.cmds
        for i, slot in plan.param_slots:
            cmds[i].params = params.get(slot)
        for i, dst_worker, dst_index in plan.sends:
            cmds[i].tag = (instance_id, dst_worker, dst_index)
        wid = self.worker_id
        for i, entry_index in plan.recvs:
            cmds[i].tag = (instance_id, wid, entry_index)

        pending = self._pending
        last_writer = self._last_writer
        readers_since = self._readers_since
        dependents = self._dependents
        data_buffer = self._data_buffer
        expected = self._expected
        early = arena.early
        on_ready = self._on_ready
        # External checks consult pre-batch tracker state; walking them
        # with a cursor inside the sweep is equivalent to the up-front pass
        # because the net tracker update is deferred until after the sweep
        # and nothing that completes mid-sweep reads or writes the tracker.
        ext_iter = iter(plan.ext_checks)
        ext = next(ext_iter, None)
        ext_pos = ext[0] if ext is not None else -1
        tr = self._trace
        if tr is not None:
            record0 = wm0[2]
            trace_run_seq = record0.block_seq if record0 is not None else None
        i = 0
        for cmd, (_eidx, report, base_rem, is_recv) in zip(cmds, plan.rows):
            cmd.cid = cid = cid_base + _eidx
            cmd._wmeta = wm1 if report else wm0
            pending[cid] = cmd
            if tr is not None:
                tr.cmd_enqueue(cid, cmd.kind, cmd.function, self.name,
                               trace_run_seq)
            rem = base_rem
            if i == ext_pos:
                _pos, roids, woids = ext
                ext = next(ext_iter, None)
                ext_pos = ext[0] if ext is not None else -1
                deps = None
                for oid in roids:
                    w = last_writer.get(oid)
                    if w is not None and w in pending:
                        if deps is None:
                            deps = {w}
                        else:
                            deps.add(w)
                for oid in woids:
                    w = last_writer.get(oid)
                    if w is not None and w in pending:
                        if deps is None:
                            deps = {w}
                        else:
                            deps.add(w)
                    readers = readers_since.get(oid)
                    if readers:
                        for r in readers:
                            if r in pending:
                                if deps is None:
                                    deps = {r}
                                else:
                                    deps.add(r)
                if deps:
                    for dep in deps:
                        lst = dependents.get(dep)
                        if lst is None:
                            dependents[dep] = [cid]
                        else:
                            lst.append(cid)
                    rem += len(deps)
            if is_recv:
                tag = cmd.tag
                if tag not in data_buffer:
                    expected[tag] = cid
                    rem += 1
            if early:
                rem -= early.pop(i, 0)
            cmd._rem = rem
            if rem == 0:
                # sweep_pos is only read by _complete during synchronous
                # completions, so it needs to be current only around the
                # on_ready call (including nested cascades it triggers)
                arena.sweep_pos = i
                if tr is not None:
                    # ready at instantiation; for a grant self-advance the
                    # release is the command whose completion advanced us
                    self._trace_release = self._advance_release
                on_ready(cmd)
            i += 1
        arena.sweep_pos = plan.m

        # net conflict-tracker update (end state identical to per-command
        # updates: intra-batch churn collapses at compile time)
        for oid, p in plan.writes_final:
            last_writer[oid] = cmds[p].cid
        for oid, poss in plan.readers_reset:
            readers_since[oid] = [cmds[p].cid for p in poss]
        for oid, poss in plan.readers_append:
            lst = readers_since.get(oid)
            if lst is None:
                readers_since[oid] = [cmds[p].cid for p in poss]
            else:
                for p in poss:
                    lst.append(cmds[p].cid)
        return arena

    def _release_arena(self, arena: CommandArena) -> None:
        self._live_arenas.discard(arena)
        arena.release()

    def _cross_check_compiled(self, entries, reports, plan, arena,
                              instance_id, cid_base, params) -> None:
        """Brute-force check of one compiled instantiation against the
        interpreted path (REPRO_COMPILED_CROSS_CHECK=1)."""
        fresh = compile_plan(entries, reports)
        if fresh.signature() != plan.signature():
            raise AssertionError(
                "compiled plan is stale: recompiling the entry array "
                "produced a different plan (missing invalidation?)")
        ref = instantiate_entries(
            entries, self.worker_id, instance_id, cid_base, params)
        if len(ref) != plan.m:
            raise AssertionError(
                f"compiled plan has {plan.m} commands; interpreted "
                f"instantiation produced {len(ref)}")
        for i, want in enumerate(ref):
            got = arena.cmds[i]
            for field in ("cid", "kind", "read", "write", "function",
                          "params", "dst_worker", "src_worker", "tag",
                          "size_bytes"):
                g, w = getattr(got, field), getattr(want, field)
                if g != w:
                    raise AssertionError(
                        f"compiled command {i} (cid {got.cid}) differs from "
                        f"interpreted: {field}={g!r} != {w!r}")

    def _on_release_job(self, msg: P.ReleaseJob) -> None:
        """A tenant was cancelled or crashed: scrub it from this worker.

        Its objects are destroyed and its template halves dropped. Queued
        and in-flight commands are left to drain through the normal
        dependency machinery — they complete without executing their task
        bodies (see :meth:`_task_finished`), so pipelines never wedge and
        no task ever touches the destroyed data.

        Windows close *first*: with the grants (and any deferred
        windows) gone before the objects are destroyed, the draining
        commands can no longer self-advance a fresh instance of the dead
        job or emit a WindowSummary for it — the release-mid-window
        race this ordering used to leave open.
        """
        self._released_jobs.add(msg.job_id)
        for key in [k for k in self._grants if k[0] == msg.job_id]:
            del self._grants[key]  # in-flight instances drain body-less
        for key in [k for k in self._deferred_windows
                    if k[0] == msg.job_id]:
            del self._deferred_windows[key]
        self._barrier_windows = [w for w in self._barrier_windows
                                 if w.job_id != msg.job_id]
        for oid in msg.oids:
            self.store.destroy(oid)
        for key in [k for k in self._templates if k[0] == msg.job_id]:
            del self._templates[key]
        self.metrics.incr("jobs.worker_releases")

    def _body_released(self, cmd: Command) -> bool:
        """True when ``cmd`` belongs to a released job (skip its body)."""
        anchor = cmd.write[0] if cmd.write else (
            cmd.read[0] if cmd.read else None)
        return (anchor is not None
                and anchor // OID_STRIDE in self._released_jobs)

    def _on_install_patch(self, msg: P.InstallPatch) -> None:
        if msg.patch_id in self._patches:
            self._stale()  # redelivered install: the patch already ran
            return
        entries = [e.clone() for e in msg.entries]
        self._patches[msg.patch_id] = entries
        self._ran_patches.add((msg.patch_id, msg.instance_id))
        self._run_patch(msg.patch_id, entries, msg.instance_id, msg.cid_base)

    def _on_instantiate_patch(self, msg: P.InstantiatePatch) -> None:
        if (msg.patch_id, msg.instance_id) in self._ran_patches:
            self._stale()  # redelivered invocation of an already-run patch
            return
        self._ran_patches.add((msg.patch_id, msg.instance_id))
        entries = self._patches[msg.patch_id]
        self._run_patch(msg.patch_id, entries, msg.instance_id, msg.cid_base)

    def _run_patch(self, patch_id, entries, instance_id, cid_base) -> None:
        if self._use_compiled:
            plan = self._patch_plans.get(patch_id)
            if plan is None:
                self._patch_plans[patch_id] = plan = compile_plan(entries, ())
                self.plans_compiled += 1
            self.charge(self.costs.worker_instantiate_per_command * plan.m)
            if plan.m == 0:
                return
            wm = (None, False, None)
            arena = self._run_compiled_plan(
                plan, cid_base, instance_id, {}, wm, wm)
            if self._cross_check:
                self._cross_check_compiled(
                    entries, (), plan, arena, instance_id, cid_base, {})
            return
        commands = instantiate_entries(
            entries, self.worker_id, instance_id, cid_base, {},
        )
        self.charge(self.costs.worker_instantiate_per_command * len(commands))
        self._enqueue_batch(commands, [(None, False, None)] * len(commands))

    # ------------------------------------------------------------------
    # Command queue: local readiness resolution (§3.1 requirement 1)
    # ------------------------------------------------------------------
    def _enqueue(self, cmd: Command, meta: Tuple) -> None:
        self._register(cmd, meta)
        self._resolve(cmd)

    def _enqueue_batch(self, commands, metas) -> None:
        """Enqueue an instantiation batch in two passes.

        Registering every command before resolving dependencies lets cached
        before sets reference *forward* indices within the batch — edits
        such as a migrated read-modify-write task need the result RECV
        (which keeps the task's old, low index) to wait for the input SEND
        appended at a higher index (Fig. 6).

        Within a batch the template's cached before sets are the complete
        intra-block order (the generator and the edit planner both emit
        every local conflict edge), so the object-conflict tracker only
        contributes *cross-batch* dependencies — ordering this instance
        against earlier instances, patches, and central commands.
        """
        batch = {cmd.cid for cmd in commands}
        for cmd, meta in zip(commands, metas):
            self._register(cmd, meta)
        for cmd in commands:
            self._resolve(cmd, exclude=batch)

    def _register(self, cmd: Command, meta: Tuple) -> None:
        self._pending[cmd.cid] = cmd
        cmd._wmeta = meta
        cmd._rem = -1  # not yet resolved
        if self._trace is not None:
            meta_key = meta[0]
            if meta_key is None:
                run_seq = None
            elif meta_key[0] == "central":
                run_seq = meta_key[1]
            else:
                record = meta[2]
                run_seq = record.block_seq if record is not None else None
            self._trace.cmd_enqueue(cmd.cid, cmd.kind, cmd.function,
                                    self.name, run_seq)

    def _resolve(self, cmd: Command, exclude=frozenset()) -> None:
        # hot path: one call per command ever run; locals bound up front
        cid = cmd.cid
        pending = self._pending
        last_writer = self._last_writer
        readers_since = self._readers_since
        read, write = cmd.read, cmd.write
        deps = set()
        for dep in cmd.before:
            if dep != cid and dep in pending:
                deps.add(dep)
        for oid in read:
            writer = last_writer.get(oid)
            if (writer is not None and writer != cid and writer in pending
                    and writer not in exclude):
                deps.add(writer)
        for oid in write:
            writer = last_writer.get(oid)
            if (writer is not None and writer != cid and writer in pending
                    and writer not in exclude):
                deps.add(writer)
            readers = readers_since.get(oid)
            if readers:
                for reader in readers:
                    if (reader != cid and reader in pending
                            and reader not in exclude):
                        deps.add(reader)
        # update the conflict tracker
        for oid in read:
            readers = readers_since.get(oid)
            if readers is None:
                readers_since[oid] = [cid]
            else:
                readers.append(cid)
        for oid in write:
            last_writer[oid] = cid
            readers_since[oid] = []

        remaining = len(deps)
        if cmd.kind == CommandKind.RECV:
            if cmd.tag in self._data_buffer:
                pass  # data already here; no extra dependency
            else:
                self._expected[cmd.tag] = cid
                remaining += 1
        cmd._rem = remaining
        if deps:
            dependents = self._dependents
            for dep in deps:
                lst = dependents.get(dep)
                if lst is None:
                    dependents[dep] = [cid]
                else:
                    lst.append(cid)
        if remaining == 0:
            if self._trace is not None:
                # ready straight from dispatch (grant self-advances thread
                # the completing command through instead)
                self._trace_release = self._advance_release
            self._on_ready(cmd)

    def _on_data(self, msg: P.DataMessage) -> None:
        self._data_buffer[msg.tag] = (msg.payload, msg.size_bytes)
        if self._trace is not None:
            self._trace.copy_arrive(msg.tag, self.name)
            self._trace_release = ("data", msg.tag)
        cid = self._expected.pop(msg.tag, None)
        if cid is not None:
            self._dec(cid)

    def _dec(self, cid: int) -> None:
        cmd = self._pending[cid]
        cmd._rem -= 1
        if cmd._rem == 0:
            self._on_ready(cmd)

    def _on_ready(self, cmd: Command) -> None:
        if self._trace is not None:
            self._trace.cmd_ready(cmd.cid, self._trace_release)
        kind = cmd.kind
        if kind == CommandKind.TASK:
            self._ready_tasks.append(cmd)
            if self._free_slots > 0:
                self._maybe_start_tasks()
        elif kind == CommandKind.SEND:
            self._execute_send(cmd)
        elif kind == CommandKind.RECV:
            payload, _size = self._data_buffer.pop(cmd.tag)
            # a released job's copies drain without resurrecting the
            # destroyed objects (same rule as task bodies)
            if not (self._released_jobs and self._body_released(cmd)):
                for oid in cmd.write:
                    self.store.put(oid, payload)
            self._complete(cmd, duration=0.0)
        elif kind == CommandKind.CREATE:
            if not (self._released_jobs and self._body_released(cmd)):
                for oid in cmd.write:
                    self.store.create(oid)
            self._complete(cmd, duration=0.0)
        else:
            raise ValueError(f"unhandled ready command kind {kind}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _maybe_start_tasks(self) -> None:
        ready = self._ready_tasks
        if not ready:
            return
        free = self._free_slots
        if free <= 0:
            return
        sim = self.sim
        scale = self.duration_scale
        fire = self._task_fire
        epoch = self._epoch
        # completion timers are pushed straight onto the engine queues
        # (same entry shape schedule_fast builds) — one fewer call per
        # task on the single hottest schedule site in the system
        now = sim._now
        seq = sim._seq
        heap = sim._heap
        zero = sim._zero
        push = heapq.heappush
        tr = self._trace
        cohorts = self._fused and tr is None
        while free > 0 and ready:
            cmd = ready.popleft()
            free -= 1
            if tr is not None:
                tr.cmd_start(cmd.cid)
            fn = cmd._cfn  # resolved once at arena build for compiled plans
            if fn is None:
                fn = self.registry.get(cmd.function)
            duration = fn._const_dur
            if duration is None:
                duration = fn.duration_of(cmd.params, self.worker_id)
            duration *= scale
            batch = None
            if cohorts and free > 0 and ready:
                # cohort entry: consecutive same-duration starts share one
                # queue entry due at one time. Every member's seq is still
                # allocated (the entry carries the first), so relative
                # order against every other queued event is unchanged; the
                # cohort fire replays each member's own timer semantics.
                while free > 0 and ready:
                    nxt = ready[0]
                    nfn = nxt._cfn
                    if nfn is None:
                        nfn = self.registry.get(nxt.function)
                    ndur = nfn._const_dur
                    if ndur is None:
                        ndur = nfn.duration_of(nxt.params, self.worker_id)
                    if ndur * scale != duration:
                        break
                    ready.popleft()
                    free -= 1
                    if batch is None:
                        batch = [(cmd, fn), (nxt, nfn)]
                    else:
                        batch.append((nxt, nfn))
            if batch is None:
                seq += 1
                entry = (now + duration, seq, fire,
                         (cmd, fn, duration, epoch))
            else:
                entry = (now + duration, seq + 1, self._tasks_fire_cohort,
                         (batch, duration, epoch))
                seq += len(batch)
            if duration > 0.0:
                push(heap, entry)
            elif duration == 0.0:
                zero.append(entry)
            else:
                raise ValueError(f"negative task duration {duration!r}")
        sim._seq = seq
        self._free_slots = free

    def _tasks_fire_cohort(self, items, duration: float, epoch: int) -> None:
        """Fire one cohort entry covering ``len(items)`` task completions.

        Each member replays exactly what its own timer event would have
        done (:meth:`_task_fire`'s idle-inline vs busy-queue split), and
        the skipped per-member events are folded into ``events_run`` so
        cohort and per-task runs report comparable counts.
        """
        self.sim._events_run += len(items) - 1
        fire = self._task_fire
        for cmd, fn in items:
            fire(cmd, fn, duration, epoch)

    def _task_fire(self, cmd: Command, fn, duration: float,
                   epoch: int) -> None:
        """Specialized :meth:`Actor._timer_fire` for task completions.

        Identical semantics — idle control threads run the completion
        inside the timer event, busy ones fall back to a queued
        _Callback — with the generic fn/args indirection flattened out of
        the hottest timer in the system.
        """
        sim = self.sim
        if self._draining or self._inbox or self._busy_until > sim._now:
            self.deliver(_Callback(self._task_finished,
                                   (cmd, fn, duration, epoch)))
            return
        if self._dead:
            return  # mirrors delivery to a crashed endpoint: dropped
        self._charged = 0.0
        start = self._handler_start = sim._now
        self._task_finished(cmd, fn, duration, epoch)
        cost = self._charged
        self._charged = 0.0
        self.busy_time += cost
        busy_until = self._busy_until = start + cost
        if self._inbox:
            self._draining = True
            now = sim._now
            sim.schedule_fast(busy_until if busy_until > now else now,
                              self._drain, ())

    def _task_finished(self, cmd: Command, fn, duration: float,
                       epoch: int) -> None:
        if epoch != self._epoch:
            return  # halted since this task started
        self._charged += self._complete_cost + self.callback_overhead
        if fn.fn is not None and not (self._released_jobs
                                      and self._body_released(cmd)):
            ctx = TaskContext(self.store, cmd.params, self.worker_id,
                              cmd.read, cmd.write)
            fn.fn(ctx)
        self._free_slots += 1
        self.tasks_executed += 1
        self.metrics.counters["tasks_executed"] += 1.0
        self._complete(cmd, duration)
        if self._ready_tasks:
            self._maybe_start_tasks()

    def _execute_send(self, cmd: Command) -> None:
        oid = cmd.read[0]
        payload = self.store.get(oid)
        peer = self.peers[cmd.dst_worker]
        if self._trace is not None:
            self._trace.copy_send(cmd.tag, cmd.cid, self.name, cmd.size_bytes)
        self.send_reliable(peer, P.DataMessage(cmd.tag, oid, payload, cmd.size_bytes))
        self._complete(cmd, duration=0.0)

    # ------------------------------------------------------------------
    # Completion bookkeeping
    # ------------------------------------------------------------------
    def _complete(self, cmd: Command, duration: float) -> None:
        cid = cmd.cid
        pending = self._pending
        del pending[cid]
        tr = self._trace
        if tr is not None:
            tr.cmd_complete(cid)
        meta_key, report, record = cmd._wmeta
        csucc = cmd._csucc
        if csucc is not None:
            # compiled command: intra-batch successors are direct object
            # references. Successors the resolution sweep has not reached
            # yet have no dependency count to decrement — the adjustment
            # parks in arena.early and the sweep subtracts it. (Successors
            # at swept positions with _rem already 0 received every edge
            # decrement before completing; the r > 0 guard mirrors the
            # interpreted path's pending-membership check.)
            arena = cmd._carena
            if csucc:
                sweep = arena.sweep_pos
                early = arena.early
                for succ in csucc:
                    pos = succ._cpos
                    if pos <= sweep:
                        r = succ._rem
                        if r > 0:
                            succ._rem = r - 1
                            if r == 1:
                                # set per-call: nested completions clobber it
                                if tr is not None:
                                    self._trace_release = ("cmd", cid)
                                self._on_ready(succ)
                    else:
                        early[pos] = early.get(pos, 0) + 1
            arena.outstanding = left = arena.outstanding - 1
            if left == 0:
                self._release_arena(arena)
        deps = self._dependents.pop(cid, None)
        if deps:
            for dep in deps:
                dep_cmd = pending.get(dep)
                if dep_cmd is not None:
                    dep_cmd._rem = left = dep_cmd._rem - 1
                    if left == 0:
                        if tr is not None:
                            self._trace_release = ("cmd", cid)
                        self._on_ready(dep_cmd)
        if record is not None:
            record.remaining -= 1
            if cmd.kind == CommandKind.TASK:
                record.compute_time += duration
                if record.task_times is not None:
                    record.task_times[cid - record.cid_base] = duration
            if report and cmd.write:
                record.values[cmd.write[0]] = self.store.get(cmd.write[0])
            if record.remaining == 0:
                if tr is not None and record.grant is not None:
                    # the next instance this grant starts is released by
                    # this completion — thread the trace edge through
                    self._advance_release = ("cmd", cid)
                    self._finish_instance(record)
                    self._advance_release = None
                else:
                    self._finish_instance(record)
            return
        if meta_key is None:
            return  # patch command: no ack needed
        _scope, key = meta_key
        value = self.store.get(cmd.write[0]) if (report and cmd.write) else None
        oid = cmd.write[0] if (report and cmd.write) else None
        self._completion_buffer.append((cid, key, duration, value, oid))
        if not self._completion_flush_pending:
            self._completion_flush_pending = True
            self.call_later(self.completion_flush_window,
                            self._flush_completions)

    def _flush_completions(self) -> None:
        """Send buffered completions now.

        Called from the timer, and synchronously before any *other*
        controller-bound message leaves this worker: buffered completions
        must not be overtaken on the in-order channel (e.g. a later run's
        InstanceComplete beating an earlier run's final CommandComplete
        would complete blocks out of request order at the driver).
        """
        self._completion_flush_pending = False
        if self._dead or not self._completion_buffer:
            self._completion_buffer = []
            return
        items, self._completion_buffer = self._completion_buffer, []
        if len(items) == 1:
            cid, block_seq, duration, value, oid = items[0]
            self.send_reliable(self.controller, P.CommandComplete(
                self.worker_id, cid, block_seq, duration, value, oid))
        else:
            self.send_reliable(self.controller,
                               P.CommandCompleteBatch(self.worker_id, items))

    def _finish_instance(self, record: _InstanceRecord) -> None:
        del self._instances[(record.block_id, record.instance_id)]
        if record.grant is not None:
            self._grant_instance_done(record)
            return
        if self._completion_buffer:
            self._flush_completions()
        self.send_reliable(self.controller, P.InstanceComplete(
            self.worker_id, record.block_id, record.instance_id,
            record.block_seq, record.compute_time, record.values,
            version=record.version, task_times=record.task_times,
        ))

    # ------------------------------------------------------------------
    # Decentralized self-scheduling (DESIGN.md §14)
    # ------------------------------------------------------------------
    def _on_self_schedule(self, msg: P.SelfScheduleWindow) -> None:
        key = (msg.job_id, msg.window_id)
        if key in self._grants:
            self._stale()  # redelivered grant: already being consumed
            return
        if msg.job_id in self._released_jobs:
            # a shard-relayed window crossing a ReleaseJob on the direct
            # controller channel: the job is dead here — dropping the
            # grant (instead of the pre-fix KeyError on the scrubbed
            # template) closes the release-mid-window race; the
            # controller-side abort already cleaned up the fan-in
            self.metrics.incr("self_schedule.released_window_drops")
            return
        if msg.barrier_seq > self._ctrl_handled_seq:
            # shard-relayed window outran the coordinator's own dispatch
            # stream (different channels): park it until every direct
            # message it was stamped against has been handled, or
            # instances would register into the conflict tracker ahead
            # of the centrally-dispatched instances they depend on
            self._barrier_windows.append(msg)
            self.metrics.incr("self_schedule.barrier_deferrals")
            return
        half = self._templates.get((msg.job_id, msg.block_id, msg.version))
        if half is None:
            if msg.reply_to is not None:
                # sharded relay beat the template install, which rides
                # the direct controller channel: park the window until
                # the install lands (impossible in decentralized mode,
                # where both share one in-order channel)
                self._deferred_windows.setdefault(
                    (msg.job_id, msg.block_id, msg.version), []).append(msg)
                self.metrics.incr("self_schedule.deferred_windows")
                return
            raise KeyError(
                f"worker {self.worker_id}: job {msg.job_id} granted a "
                f"self-schedule window for ({msg.block_id!r}, "
                f"v{msg.version}) which was never installed here "
                f"(installed: {sorted(self._templates)})"
            )
        if msg.edits:
            half.apply_edit_ops(msg.edits)
            self.charge(self.costs.worker_edit_per_task * len(msg.edits))
        grant = _WorkerGrant(key, msg.block_id, msg.version, half,
                             msg.instances, msg.epoch,
                             reply_to=msg.reply_to)
        self._grants[key] = grant
        self._advance_grant(grant)

    def _advance_grant(self, grant: _WorkerGrant) -> None:
        """Consume the grant's instance list, pipelining up to
        ``self_schedule_depth`` instances locally.

        Before crossing each block boundary the worker checks that the
        partition map has not moved since the grant was issued; a moved
        map stalls the window and the remainder is reported back for the
        controller to re-grant under the new epoch.
        """
        # a grant is only ever issued at the coordinator's current epoch,
        # so it may carry proof of an epoch this worker's own EpochUpdate
        # has not delivered yet (sharded relays re-order the channels):
        # fold forward, and stall only on a genuinely *stale* grant
        if grant.epoch > self._pm_epoch:
            self._pm_epoch = grant.epoch
        instances = grant.instances
        while (grant.active < self.self_schedule_depth
               and grant.next < len(instances)
               and not grant.stalled):
            if self._pm_epoch > grant.epoch:
                grant.stalled = True
                self.metrics.incr("self_schedule.stalls")
                break
            instance_id, cid_base, block_seq, params = instances[grant.next]
            grant.next += 1
            key = (grant.block_id, instance_id)
            if key in self._seen_instances:
                self._stale()  # re-granted instance that already ran here
                continue
            self._seen_instances.add(key)
            self.charge(self.costs.worker_self_schedule_per_instance)
            grant.active += 1
            self._start_instance(grant.half, grant.block_id, grant.version,
                                 instance_id, cid_base, block_seq, params,
                                 key, grant=grant)
        # synchronous completions can recurse through _grant_instance_done
        # and finish the window inside _start_instance above — the grant
        # membership check keeps the summary from being sent twice
        if (grant.active == 0
                and (grant.stalled or grant.next >= len(instances))
                and self._grants.get(grant.key) is grant):
            self._send_window_summary(grant)

    def _grant_instance_done(self, record: _InstanceRecord) -> None:
        grant = record.grant
        grant.rows.append((record.instance_id, record.block_seq,
                           record.compute_time, record.values,
                           record.task_times, self.sim.now))
        if self._grants.get(grant.key) is not grant:
            return  # grant torn down (halt/release) while this drained
        grant.active -= 1
        self._advance_grant(grant)

    def _send_window_summary(self, grant: _WorkerGrant) -> None:
        del self._grants[grant.key]
        if self._completion_buffer:
            self._flush_completions()  # keep the in-order channel honest
        job_id, window_id = grant.key
        dst = self.controller
        ctrl_seq = 0
        if grant.reply_to is not None:
            # sharded mode: the summary returns to the owning shard; a
            # shard gone missing (hand-built cluster) falls back to the
            # controller, whose orphan guard handles it
            dst = self.network.actors.get(grant.reply_to, self.controller)
            # reverse causal barrier: the coordinator must not fold this
            # summary before handling everything this worker already
            # sent it directly (the completion flush above included)
            ctrl_seq = self.channel_seq(self.controller.name)
        self.send_reliable(dst, P.WindowSummary(
            self.worker_id, window_id, grant.rows, job_id=job_id,
            stalled=grant.stalled, next_index=grant.next,
            ctrl_seq=ctrl_seq,
        ))

    # ------------------------------------------------------------------
    # Checkpointing and recovery (§4.4)
    # ------------------------------------------------------------------
    def _on_save_checkpoint(self, msg: P.SaveCheckpoint) -> None:
        total_bytes = 0
        for oid in self.store.live_objects():
            payload = self.store.get(oid)
            self.storage.save(msg.checkpoint_id, oid, copy.deepcopy(payload))
            total_bytes += 1024  # accounting proxy; sizes modeled below
        delay = (self.costs.storage_latency
                 + total_bytes / self.costs.storage_bandwidth)
        self.call_later(delay, self._ack_checkpoint, msg.checkpoint_id)

    def _ack_checkpoint(self, checkpoint_id: int) -> None:
        if self._completion_buffer:
            self._flush_completions()
        self.send_reliable(self.controller,
                           P.CheckpointAck(self.worker_id, checkpoint_id))

    def _on_load_checkpoint(self, msg: P.LoadCheckpoint) -> None:
        for oid in msg.oids:
            self.store.put(oid, self.storage.load(msg.checkpoint_id, oid))
        delay = (self.costs.storage_latency
                 + 1024 * len(msg.oids) / self.costs.storage_bandwidth)
        self.call_later(delay, self._ack_load, msg.checkpoint_id)

    def _ack_load(self, checkpoint_id: int) -> None:
        if self._completion_buffer:
            self._flush_completions()
        self.send_reliable(self.controller,
                           P.LoadAck(self.worker_id, checkpoint_id))

    def _on_halt(self) -> None:
        """Terminate ongoing tasks, flush queues, respond (§4.4)."""
        self._epoch += 1
        self._pending.clear()
        self._dependents.clear()
        self._ready_tasks.clear()
        self._free_slots = self.slots
        self._last_writer.clear()
        self._readers_since.clear()
        self._data_buffer.clear()
        self._expected.clear()
        self._instances.clear()
        self._grants.clear()  # abandoned: recovery re-grants from scratch
        self._deferred_windows.clear()
        self._barrier_windows.clear()
        self._completion_buffer.clear()  # stale: their runs were abandoned
        # arenas of abandoned instances: every per-instance field is
        # rewritten on the next acquire, so they can be pooled immediately
        for arena in self._live_arenas:
            arena.release()
        self._live_arenas.clear()
        self.send_reliable(self.controller, P.HaltAck(self.worker_id))

    # ------------------------------------------------------------------
    # Failure injection and heartbeats
    # ------------------------------------------------------------------
    def start_heartbeats(self, interval: float) -> None:
        self._hb_interval = interval
        self.call_later(interval, self._heartbeat)

    def _heartbeat(self) -> None:
        if self._dead:
            return
        self.send(self.controller, P.Heartbeat(self.worker_id))
        self.call_later(self._hb_interval, self._heartbeat)

    def fail(self) -> None:
        """Kill this worker: it stops processing and drops off the network."""
        self._dead = True
        self._epoch += 1
        if self.network is not None:
            self.network.partition(self.name)

    def _rel_alive(self) -> bool:
        return not self._dead

    def _timer_alive(self) -> bool:
        # shadows the protocol-layer indirection: one attribute load on
        # the per-task-completion timer path
        return not self._dead

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------
    @property
    def queued_commands(self) -> int:
        return len(self._pending)

    def has_template(self, block_id: str, version: int,
                     job_id: int = 0) -> bool:
        return (job_id, block_id, version) in self._templates

    def template_half(self, block_id: str, version: int,
                      job_id: int = 0) -> WorkerHalf:
        return self._templates[(job_id, block_id, version)]
