"""Task runtime: the registry of application functions workers execute.

A :class:`TaskFunction` bundles two things:

* ``fn`` — an optional real Python implementation. When present, workers
  execute it against their local :class:`~repro.nimbus.data.ObjectStore`,
  so small-scale runs compute *real results* (the bundled logistic
  regression genuinely converges). When absent the task is a pure
  spin-wait, matching the paper's Spark-opt / Naiad-opt methodology for
  large-scale timing runs.
* ``duration`` — a model of the task's virtual execution time, a callable
  ``(params, ctx) -> seconds`` or a constant. This is what the simulator
  charges against a worker execution slot.

Functions are looked up by name so that template entries can cache the
function identifier, exactly as the paper's task commands do.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

DurationModel = Union[float, Callable[..., float]]


class TaskContext:
    """What a task function sees when it runs on a worker.

    ``read(oid)`` / ``write(oid, value)`` access the worker's local store.
    ``params`` is the task's parameter blob; ``worker_id`` identifies the
    executing worker (useful for injecting stragglers in tests).
    """

    __slots__ = ("store", "params", "worker_id", "read_set", "write_set")

    def __init__(self, store, params, worker_id, read_set, write_set):
        self.store = store
        self.params = params
        self.worker_id = worker_id
        self.read_set = read_set
        self.write_set = write_set

    def read(self, oid: int) -> Any:
        return self.store.get(oid)

    def write(self, oid: int, value: Any) -> None:
        self.store.put(oid, value)

    def reads(self):
        """Payloads of the task's whole read set, in read-set order."""
        return [self.store.get(oid) for oid in self.read_set]


class TaskFunction:
    """A named application function plus its duration model."""

    __slots__ = ("name", "fn", "_duration", "_const_dur")

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[TaskContext], None]] = None,
        duration: DurationModel = 0.0,
    ):
        self.name = name
        self.fn = fn
        self._duration = duration
        #: constant durations resolved once; None means "call the model"
        self._const_dur = None if callable(duration) else float(duration)

    def duration_of(self, params: Any, worker_id: int) -> float:
        if callable(self._duration):
            return float(self._duration(params, worker_id))
        return float(self._duration)


class FunctionRegistry:
    """Name → :class:`TaskFunction` registry shared by all workers of a job."""

    def __init__(self) -> None:
        self._functions: Dict[str, TaskFunction] = {}
        self.register("__local_copy__", fn=_local_copy, duration=0.0)
        self.register("__noop__", fn=None, duration=0.0)

    def register(
        self,
        name: str,
        fn: Optional[Callable[[TaskContext], None]] = None,
        duration: DurationModel = 0.0,
    ) -> TaskFunction:
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        task_fn = TaskFunction(name, fn, duration)
        self._functions[name] = task_fn
        return task_fn

    def get(self, name: str) -> TaskFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"unknown task function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions


def _local_copy(ctx: TaskContext) -> None:
    """Built-in intra-worker copy (used by patches on co-resident objects)."""
    ctx.write(ctx.params["dst"], ctx.read(ctx.params["src"]))
