"""Cluster assembly: wire up a simulated Nimbus deployment.

:class:`NimbusCluster` builds the simulator, network, controller, workers,
and driver, mirroring the paper's testbed topology (§5.1): workers modeled
on c3.2xlarge (8 cores), all nodes in one full-bisection placement group.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..obs import Tracer, trace_enabled_default
from ..sim.actor import Actor
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.rng import SeedSequence
from .controller import Controller
from .costs import CostModel, PAPER_COSTS
from .driver import Driver, Job
from .multijob import JobManager, JobRecord
from .runtime import FunctionRegistry
from .worker import DurableStorage, Worker


class NimbusCluster:
    """A fully wired simulated Nimbus deployment.

    ``program=None`` builds the cluster in *serve mode*: no job-0 driver
    is created and work arrives through :meth:`submit_job` (or the
    ``JobManager`` at :attr:`jobs` directly) — the multi-tenant path.
    """

    def __init__(
        self,
        num_workers: int,
        program: Optional[Callable[[Job], Iterable]],
        registry: Optional[FunctionRegistry] = None,
        costs: Optional[CostModel] = None,
        use_templates: bool = True,
        slots_per_worker: int = 8,
        seed: int = 0,
        latency: float = 100e-6,
        bandwidth: float = 1.25e9,
        checkpoint_every: Optional[int] = None,
        heartbeat_timeout: float = 3.0,
        straggler_scales: Optional[Dict[int, float]] = None,
        chaos_plan=None,
        use_compiled: Optional[bool] = None,
        patch_cache_cap: int = 256,
        trace: Optional[bool] = None,
        rebalance: bool = False,
        rebalance_threshold: float = 1.4,
        dispatch_inflight_cap: Optional[int] = None,
        max_concurrent_jobs: int = 4,
        job_queue_cap: int = 16,
        mode: str = "centralized",
        shards: Optional[int] = None,
        autoscale: bool = False,
        autoscale_interval: float = 0.25,
        autoscale_cold_start: float = 1.0,
        autoscale_policy=None,
        autoscale_target_load: Optional[float] = None,
        autoscale_min_workers: Optional[int] = None,
        autoscale_max_workers: Optional[int] = None,
    ):
        if mode not in ("centralized", "decentralized", "sharded"):
            raise ValueError(
                f"unknown scheduling mode {mode!r}; "
                f"choose 'centralized', 'decentralized', or 'sharded'")
        self.mode = mode
        self.sim = Simulator()
        self.metrics = Metrics()
        # Tracing is pure observation: a traced run's virtual results are
        # bit-identical to an untraced run. None defers to REPRO_TRACE.
        if trace is None:
            trace = trace_enabled_default()
        self.tracer: Optional[Tracer] = Tracer(self.sim) if trace else None
        self.seeds = SeedSequence(seed)
        self.chaos_plan = chaos_plan
        if chaos_plan is not None:
            from ..chaos import ChaosNetwork
            self.network: Network = ChaosNetwork(
                self.sim, chaos_plan, latency=latency, bandwidth=bandwidth,
                metrics=self.metrics,
            )
        else:
            self.network = Network(self.sim, latency=latency,
                                   bandwidth=bandwidth, metrics=self.metrics)
        self.costs = costs or PAPER_COSTS
        self.registry = registry or FunctionRegistry()
        self.storage = DurableStorage()
        self.slots_per_worker = slots_per_worker
        self._use_compiled = use_compiled
        self._hb_interval: Optional[float] = None

        self.controller = Controller(
            self.sim, self.costs, self.metrics,
            slots_per_worker=slots_per_worker,
            checkpoint_every=checkpoint_every,
            heartbeat_timeout=heartbeat_timeout,
            patch_cache_cap=patch_cache_cap,
            dispatch_inflight_cap=dispatch_inflight_cap,
            default_mode=mode,
        )
        self.network.attach(self.controller)

        straggler_scales = straggler_scales or {}
        self.workers: Dict[int, Worker] = {}
        for wid in range(num_workers):
            worker = Worker(
                self.sim, wid, self.controller, self.registry, self.costs,
                self.metrics, self.storage, slots=slots_per_worker,
                duration_scale=straggler_scales.get(wid, 1.0),
                use_compiled=use_compiled,
            )
            self.network.attach(worker)
            self.workers[wid] = worker
        for worker in self.workers.values():
            worker.peers = self.workers
        self.controller.attach_workers(self.workers)

        # Controller shards (DESIGN.md §16) are always built — passive
        # actors cost nothing until a sharded job routes traffic through
        # them, and any cluster can then submit_job(mode="sharded").
        from .shard import ControllerShard, default_shard_count
        self.num_shards = shards or default_shard_count(num_workers)
        self.shards: Dict[int, ControllerShard] = {}
        for sid in range(self.num_shards):
            shard = ControllerShard(self.sim, sid, self.controller,
                                    self.costs, self.metrics)
            self.network.attach(shard)
            self.shards[sid] = shard
        self.controller.attach_shards(self.shards)

        self.default_use_templates = use_templates
        if program is not None:
            self.driver: Optional[Driver] = Driver(
                self.sim, self.controller, program, self.metrics,
                use_templates=use_templates, mode=mode,
            )
            self.network.attach(self.driver)
            self.controller.driver = self.driver
        else:
            self.driver = None

        #: multi-tenant admission: jobs submitted here run as independent
        #: namespaces alongside (or instead of) the legacy job-0 driver
        self.jobs = JobManager(self, max_concurrent=max_concurrent_jobs,
                               queue_cap=job_queue_cap)

        if self.tracer is not None:
            self.controller._trace = self.tracer
            if self.driver is not None:
                self.driver._trace = self.tracer
            for worker in self.workers.values():
                worker._trace = self.tracer

        # Adaptive rebalancing (opt-in): workers report per-task timings
        # and the controller runs the observe→decide→edit loop. Tie-breaks
        # draw from a dedicated seed substream, so enabling the rebalancer
        # on a skew-free run leaves virtual results bit-identical.
        self.rebalancer = None
        if rebalance:
            from ..sched import GreedyLeastLoaded, Rebalancer
            self.rebalancer = Rebalancer(policy=GreedyLeastLoaded(
                threshold=rebalance_threshold,
                rng=self.seeds.stream("rebalance"),
            ))
            self.rebalancer.attach(self.controller)
            for worker in self.workers.values():
                worker.report_task_times = True

        # Elastic autoscaling (opt-in): a reconciliation loop provisions
        # and drains workers from the load EWMA. The loop is pure
        # observation until a decision trips, so autoscale=True on a
        # steady run leaves virtual results bit-identical (DESIGN.md §15).
        self.autoscaler = None
        if autoscale:
            from ..scale import ResourceController, TargetUtilizationPolicy
            policy = autoscale_policy
            if policy is None:
                policy = TargetUtilizationPolicy(
                    target_load=autoscale_target_load,
                    min_workers=autoscale_min_workers or 1,
                    max_workers=autoscale_max_workers or 4 * num_workers,
                )
            self.autoscaler = ResourceController(
                self, policy, interval=autoscale_interval,
                cold_start=autoscale_cold_start)
            self.autoscaler.start()

        if chaos_plan is not None:
            chaos_plan.apply_scripted(self.sim, self.network, self.workers)

    def provision_worker(self) -> Worker:
        """Build, attach, and wire one new simulated worker (scale-up).

        The worker joins the shared peer dict immediately (data-plane
        reachable, and in scope for scripted demand events) but is *not*
        yet schedulable: the controller learns of it only when the
        autoscaler's cold start elapses and ``Controller.add_worker``
        runs. Its task-duration scale starts at the chaos plan's ambient
        demand level, so late joiners feel the same demand as everyone.
        """
        wid = max(self.workers) + 1 if self.workers else 0
        scale = 1.0
        if self.chaos_plan is not None:
            scale = self.chaos_plan.ambient_demand_scale(self.sim.now)
        worker = Worker(
            self.sim, wid, self.controller, self.registry, self.costs,
            self.metrics, self.storage, slots=self.slots_per_worker,
            duration_scale=scale, use_compiled=self._use_compiled,
        )
        worker.peers = self.workers
        self.network.attach(worker)
        self.workers[wid] = worker
        if self.tracer is not None:
            worker._trace = self.tracer
        if self.rebalancer is not None:
            worker.report_task_times = True
        if self._hb_interval is not None:
            worker.start_heartbeats(self._hb_interval)
        return worker

    @property
    def job(self) -> Optional[Job]:
        return self.driver.job if self.driver is not None else None

    # ------------------------------------------------------------------
    # Multi-tenant serving
    # ------------------------------------------------------------------
    def submit_job(self, program: Callable[[Job], Iterable],
                   weight: float = 1.0,
                   use_templates: Optional[bool] = None,
                   max_inflight: int = 4,
                   mode: Optional[str] = None) -> JobRecord:
        """Admit (or queue) a job under its own namespace; see JobManager.

        ``mode`` picks the job's scheduling policy (centralized,
        decentralized, or sharded), defaulting to the cluster-wide
        mode — co-scheduled jobs may mix modes freely.
        """
        if use_templates is None:
            use_templates = self.default_use_templates
        return self.jobs.submit(program, weight=weight,
                                use_templates=use_templates,
                                max_inflight=max_inflight,
                                mode=mode)

    def run_until_jobs_finished(self, max_seconds: float = 1e6) -> None:
        """Run until every submitted (and scheduled) job has finished."""
        self.jobs.run_until_all_finished(max_seconds=max_seconds)

    def start_fault_tolerance(self, heartbeat_interval: float = 0.5,
                              check_interval: float = 1.0) -> None:
        """Enable heartbeats and the controller failure detector."""
        self._hb_interval = heartbeat_interval
        for worker in self.workers.values():
            worker.start_heartbeats(heartbeat_interval)
        self.controller.start_failure_detector(check_interval)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> Job:
        """Start the driver program and run the simulation.

        Returns the job handle; ``job.finished`` tells whether the program
        ran to completion.
        """
        self.driver.start()
        self.sim.run(until=until, max_events=max_events)
        return self.job

    def run_until_finished(self, max_seconds: float = 1e6) -> Job:
        """Run until the driver program completes.

        The driver halts the simulator the moment its program finishes, so
        background timers (heartbeats, failure detection) do not keep the
        run alive forever — without paying a per-event completion poll.
        """
        self.driver.halt_on_finish = True
        self.driver.start()
        self.sim.run(until=max_seconds)
        if self.job.finished:
            return self.job
        if self.sim.peek_time() is None:
            raise RuntimeError(
                "simulation drained before the driver program finished "
                "(deadlocked dataflow?)"
            )
        raise RuntimeError(
            f"driver program did not finish by t={max_seconds}s"
        )
