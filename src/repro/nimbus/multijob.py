"""Multi-tenant job serving: per-job namespaces, admission, fair share.

The paper's controller serves exactly one driver. The ROADMAP's north star
(serving heavy traffic from many users) needs the controller to multiplex
N concurrent jobs without breaking the template machinery's core promise:
a job co-scheduled with strangers computes bit-identical results to the
same job running alone.

Three pieces make that hold:

* :class:`JobContext` — everything the controller used to keep as flat
  per-controller state (template namespace, object directory and version
  map, placement, patch cache, driver channel, metrics stream) becomes
  per-job. Logical object ids are namespaced by striding: job ``j``'s
  local oid ``k`` becomes global oid ``j * OID_STRIDE + k``, so worker
  object stores never collide across jobs. Job 0 keeps the identity
  mapping — a single-job cluster is byte-for-byte the old system.
* :class:`FairShareQueue` — a deterministic stride scheduler (weighted
  fair queueing over virtual time) ordering blocks queued behind the
  controller's dispatch cap. No RNG, no wall clock: ties break by job id,
  so serving order is a pure function of the submission sequence.
* :class:`JobManager` — admission control in front of the cluster: at
  most ``max_concurrent`` jobs hold a driver at once, at most
  ``queue_cap`` wait behind them, and overflow is rejected loudly
  (:class:`JobRejected`) rather than queued unboundedly.

Each job also carries its own scheduling mode (``mode=`` on submit,
defaulting to the cluster's): centralized per-instance dispatch,
decentralized self-scheduled windows (DESIGN.md §14), or sharded —
windows relayed through controller shards so the coordinator stays off
the steady-state path entirely (§16). Tenants of different modes
co-schedule freely; admission, placement, and release go through the
coordinator regardless of mode.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..core.validation import ValidationState
from .data import ObjectDirectory, PartitionPlacement
from .driver import Driver
from .runtime import FunctionRegistry

#: global-oid stride per job: job j's local oid k maps to j * STRIDE + k.
#: A power of two so apps can recover a local partition index from a
#: write-set oid with one modulo; 2^20 local objects per job is far above
#: any workload here (fig07 at 100 workers defines ~16k objects).
OID_STRIDE = 1 << 20


class JobRejected(RuntimeError):
    """Admission control refused a job submission (queue overflow)."""


class JobContext:
    """Per-job controller state: template namespace, directory, driver.

    For job 0 the cluster passes the controller's own :class:`Metrics`
    object, making every counter/interval land exactly where the
    single-job controller put them — the bit-identity seam.
    """

    __slots__ = (
        "job_id", "weight", "driver", "metrics", "directory", "placement",
        "templates", "phase", "worker_templates", "current_version",
        "assignments", "validation_state", "patch_cache", "prev_block_key",
        "pending_edits", "divergent_wts", "holder_cids", "seen_requests",
        "results_history", "object_sizes_cache", "_block_cache", "policy",
    )

    def __init__(self, job_id: int, driver=None, metrics=None,
                 weight: float = 1.0, patch_cache=None):
        self.job_id = job_id
        self.weight = weight
        self.driver = driver
        self.metrics = metrics
        self.directory = ObjectDirectory()
        self.placement: Optional[PartitionPlacement] = None
        self.templates: Dict[str, Any] = {}
        self.phase: Dict[str, int] = {}
        self.worker_templates: Dict[Tuple[str, int], Any] = {}
        self.current_version: Dict[str, int] = {}
        self.assignments: Dict[Tuple[str, int], List[int]] = {}
        self.validation_state = ValidationState()
        self.patch_cache = patch_cache
        self.prev_block_key: Hashable = "job-start"
        self.pending_edits: Dict[Tuple[str, int], Dict[int, list]] = {}
        self.divergent_wts: Set[Tuple[str, int]] = set()
        self.holder_cids: Dict[int, Dict[int, int]] = {}
        self.seen_requests: Set[int] = set()
        self.results_history: List[Tuple[str, Dict[str, Any]]] = []
        self.object_sizes_cache: Optional[Dict[int, int]] = None
        #: scheduling policy (set by Controller.register_job)
        self.policy = None
        # translated-block cache: keeps the original alive so the id key
        # can never be recycled under us
        self._block_cache: Dict[int, Tuple[BlockSpec, BlockSpec]] = {}

    # -- oid namespacing -------------------------------------------------
    def goid(self, oid: int) -> int:
        """Local object id -> global (cluster-wide) object id."""
        if self.job_id == 0:
            return oid
        return self.job_id * OID_STRIDE + oid

    def local_oid(self, goid: int) -> int:
        """Global object id -> the job-local id the driver defined."""
        if self.job_id == 0:
            return goid
        return goid % OID_STRIDE

    def translate_block(self, block: BlockSpec) -> BlockSpec:
        """Rewrite a driver block's read/write/return sets into goids.

        Job 0 returns the block unchanged (identity namespace). Blocks are
        built once per app and resubmitted every iteration, so the
        translation is cached per block object.
        """
        if self.job_id == 0:
            return block
        cached = self._block_cache.get(id(block))
        if cached is not None and cached[0] is block:
            return cached[1]
        goid = self.goid
        stages = [
            StageSpec(stage.name, [
                LogicalTask(task.function,
                            read=tuple(goid(o) for o in task.read),
                            write=tuple(goid(o) for o in task.write),
                            param_slot=task.param_slot)
                for task in stage.tasks
            ])
            for stage in block.stages
        ]
        returns = {name: goid(oid) for name, oid in block.returns.items()}
        translated = BlockSpec(block.block_id, stages, returns=returns)
        self._block_cache[id(block)] = (block, translated)
        return translated


class FairShareQueue:
    """Deterministic weighted fair queueing (a stride scheduler).

    Each job has a virtual time that advances by ``cost / weight`` per
    dequeued item; ``pop`` serves the job with the lowest virtual time
    (ties break by job id). A job going from empty to backlogged re-enters
    at the global virtual time so it cannot claim credit for idle periods.
    """

    def __init__(self) -> None:
        self._queues: Dict[int, deque] = {}
        self._weights: Dict[int, float] = {}
        self._vtime: Dict[int, float] = {}
        self._global = 0.0
        self._len = 0

    def push(self, job_id: int, weight: float, item: Any,
             cost: float = 1.0) -> None:
        q = self._queues.get(job_id)
        if q is None:
            q = self._queues[job_id] = deque()
        if not q:
            self._vtime[job_id] = max(self._vtime.get(job_id, 0.0),
                                      self._global)
        self._weights[job_id] = weight
        q.append((item, cost))
        self._len += 1

    def pop(self) -> Tuple[int, Any]:
        backlogged = [j for j, q in self._queues.items() if q]
        if not backlogged:
            raise IndexError("pop from empty FairShareQueue")
        job_id = min(backlogged, key=lambda j: (self._vtime[j], j))
        item, cost = self._queues[job_id].popleft()
        self._len -= 1
        self._global = self._vtime[job_id]
        self._vtime[job_id] += cost / max(self._weights.get(job_id, 1.0),
                                          1e-9)
        return job_id, item

    def drop_job(self, job_id: int) -> int:
        """Discard everything a (cancelled) job still has queued."""
        q = self._queues.pop(job_id, None)
        dropped = len(q) if q else 0
        self._len -= dropped
        self._weights.pop(job_id, None)
        self._vtime.pop(job_id, None)
        return dropped

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0


def merged_registry(registries: List[FunctionRegistry]) -> FunctionRegistry:
    """Union several apps' registries for a shared multi-tenant cluster.

    Workers hold one registry, so co-scheduled jobs must agree on every
    function name they share. Identical re-registrations (the builtins,
    or two jobs of the same app instance) are tolerated; a true conflict
    is a configuration error and raises.
    """
    merged = FunctionRegistry()
    for registry in registries:
        for name, fn in registry._functions.items():
            if name in merged._functions:
                continue
            merged._functions[name] = fn
    return merged


class JobRecord:
    """One submitted job's lifecycle, visible to tests and benchmarks."""

    __slots__ = ("job_id", "program", "weight", "use_templates",
                 "max_inflight", "mode", "state", "submit_time",
                 "start_time", "finish_time", "driver", "metrics")

    def __init__(self, job_id: int, program, weight: float,
                 use_templates: bool, max_inflight: int,
                 submit_time: float, mode: str = "centralized"):
        self.job_id = job_id
        self.program = program
        self.weight = weight
        self.use_templates = use_templates
        self.max_inflight = max_inflight
        self.mode = mode
        self.state = "queued"  # queued|running|finished|cancelled
        self.submit_time = submit_time
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.driver: Optional[Driver] = None
        self.metrics = None

    @property
    def latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


class JobManager:
    """Admission control and lifecycle for N concurrent driver programs.

    ``submit`` either admits a job (builds a per-job driver + metrics
    stream and registers a :class:`JobContext` with the controller),
    queues it behind the concurrency cap, or raises :class:`JobRejected`
    when the wait queue itself is full.
    """

    def __init__(self, cluster, max_concurrent: int = 4,
                 queue_cap: int = 16):
        self.cluster = cluster
        self.max_concurrent = max_concurrent
        self.queue_cap = queue_cap
        self.records: Dict[int, JobRecord] = {}
        self.rejections: List[Tuple[float, str]] = []
        self._pending: deque = deque()
        self._next_job_id = 1
        self._scheduled_arrivals = 0
        self._halt_when_done = False

    # -- queries ---------------------------------------------------------
    def running(self) -> List[JobRecord]:
        return [r for r in self.records.values() if r.state == "running"]

    def all_done(self) -> bool:
        return (self._scheduled_arrivals == 0 and not self._pending
                and all(r.state in ("finished", "cancelled")
                        for r in self.records.values()))

    # -- submission ------------------------------------------------------
    def submit(self, program, weight: float = 1.0,
               use_templates: bool = True,
               max_inflight: int = 4,
               mode: Optional[str] = None) -> JobRecord:
        sim = self.cluster.sim
        if (len(self.running()) >= self.max_concurrent
                and len(self._pending) >= self.queue_cap):
            message = (
                f"job rejected at t={sim.now:.6f}: {len(self.running())} "
                f"jobs running (cap {self.max_concurrent}) and the wait "
                f"queue is full ({len(self._pending)}/{self.queue_cap})"
            )
            self.rejections.append((sim.now, message))
            self.cluster.metrics.incr("jobs_rejected")
            raise JobRejected(message)
        record = JobRecord(self._next_job_id, program, weight,
                           use_templates, max_inflight, sim.now,
                           mode=mode or self.cluster.mode)
        self._next_job_id += 1
        self.records[record.job_id] = record
        if len(self.running()) < self.max_concurrent:
            self._admit(record)
        else:
            self._pending.append(record)
            self.cluster.metrics.incr("jobs_queued")
        return record

    def submit_at(self, time: float, program, **kwargs) -> None:
        """Schedule a future arrival (Poisson workloads); rejections at
        fire time are recorded in :attr:`rejections`, not raised."""
        self._scheduled_arrivals += 1

        def arrive():
            self._scheduled_arrivals -= 1
            try:
                self.submit(program, **kwargs)
            except JobRejected:
                self._maybe_halt()

        self.cluster.sim.schedule_at(time, arrive)

    # -- lifecycle -------------------------------------------------------
    def _admit(self, record: JobRecord) -> None:
        from ..sim.metrics import Metrics

        cluster = self.cluster
        metrics = Metrics()
        driver = Driver(
            cluster.sim, cluster.controller, record.program, metrics,
            use_templates=record.use_templates,
            max_inflight=record.max_inflight,
            name=f"driver-{record.job_id}", job_id=record.job_id,
            mode=record.mode,
        )
        cluster.network.attach(driver)
        if cluster.tracer is not None:
            driver._trace = cluster.tracer
        cluster.controller.register_job(
            record.job_id, driver, metrics, weight=record.weight,
            mode=record.mode)
        record.driver = driver
        record.metrics = metrics
        record.state = "running"
        record.start_time = cluster.sim.now
        driver.on_finish = lambda _driver, r=record: self._on_job_finish(r)
        driver.start()
        cluster.metrics.incr("jobs_admitted")

    def _on_job_finish(self, record: JobRecord) -> None:
        record.state = "finished"
        record.finish_time = self.cluster.sim.now
        self.cluster.metrics.incr("jobs_finished")
        self._admit_next()
        self._maybe_halt()

    def cancel(self, job_id: int) -> None:
        """Tear a job down mid-run: its namespace is released and its
        queued dispatches are dropped so other jobs never stall on it."""
        record = self.records.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id}")
        if record.state == "queued":
            self._pending.remove(record)
        elif record.state == "running":
            from . import protocol as P
            self.cluster.controller.deliver(P.ManagerDirective(
                lambda ctrl, jid=job_id: ctrl.release_job(jid)))
        record.state = "cancelled"
        record.finish_time = self.cluster.sim.now
        self.cluster.metrics.incr("jobs_cancelled")
        self._admit_next()
        self._maybe_halt()

    def _admit_next(self) -> None:
        while self._pending and len(self.running()) < self.max_concurrent:
            self._admit(self._pending.popleft())

    def _maybe_halt(self) -> None:
        if self._halt_when_done and self.all_done():
            self.cluster.sim.halt()

    # -- driving ---------------------------------------------------------
    def run_until_all_finished(self, max_seconds: float = 1e6) -> None:
        """Run the simulation until every submitted/scheduled job ends."""
        self._halt_when_done = True
        sim = self.cluster.sim
        sim.run(until=max_seconds)
        if self.all_done():
            return
        if sim.peek_time() is None:
            raise RuntimeError(
                "simulation drained before all jobs finished "
                "(deadlocked dataflow?)"
            )
        raise RuntimeError(f"jobs did not all finish by t={max_seconds}s")
