"""The Nimbus controller (§3.2, §4).

The controller receives blocks from the driver, transforms them into an
execution plan, and dispatches commands to workers. Execution templates
live here: per basic block the controller moves through four phases,
matching the installation staircase of Figure 9:

* ``CENTRAL`` — no template: the block's task stream is scheduled centrally,
  one dispatch message per command (134 µs/task). If the driver marked the
  block, the stream is simultaneously captured into a controller template
  (+25 µs/task).
* ``CT_READY`` — the controller template exists: instantiation requests are
  parameter fills (0.2 µs/task); tasks are still dispatched centrally while
  the controller half of the worker templates is generated (+15 µs/task).
* ``WT_GENERATED`` — worker halves are shipped to the workers (9 µs/task at
  each worker) alongside one last central dispatch.
* ``WT_INSTALLED`` — the steady state: validate (auto 1.7 µs/task, full
  7.3 µs/task), patch if needed, and send one instantiation message per
  worker — n+1 control messages for the whole iteration (§2.2).

The controller also owns the object directory, the patch cache, edit-based
migration, eviction/restore of workers (Figure 9), checkpointing, and
failure recovery (§4.4).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..core.controller_template import ControllerTemplate
from ..core.edits import plan_migrations
from ..core.patching import Patch, PatchCache, build_patch
from ..core.spec import BlockSpec
from ..core.validation import ValidationState, full_validate
from ..core.worker_template import WorkerTemplateSet, generate_worker_templates
from ..sim.actor import Actor, Message
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from .commands import Command, CommandKind, make_copy_pair, make_task
from .costs import CostModel
from .data import LogicalObject, ObjectDirectory, PartitionPlacement
from . import protocol as P


class _BlockRun:
    """Tracks one in-flight block instance until completion."""

    __slots__ = ("seq", "block_id", "num_tasks", "mode", "outstanding",
                 "expected_workers", "results", "return_cids", "start_time",
                 "compute_by_worker", "instance_id", "request_id", "open")

    def __init__(self, seq, block_id, num_tasks, mode, start_time,
                 request_id=0):
        self.seq = seq
        self.block_id = block_id
        self.num_tasks = num_tasks
        self.mode = mode  # "central" | "template"
        self.outstanding = 0  # commands (central) or worker acks (template)
        self.expected_workers: Set[int] = set()
        self.results: Dict[str, Any] = {}
        self.return_cids: Dict[int, Tuple[str, int]] = {}  # cid -> (name, oid)
        self.start_time = start_time
        self.compute_by_worker: Dict[int, float] = {}
        self.instance_id: Optional[int] = None
        self.request_id = request_id
        #: True while the scheduler still has commands to dispatch for this
        #: run (staged dispatch must not complete the block at a barrier)
        self.open = False


class Controller(P.ReliableEndpoint, Actor):
    """Centralized Nimbus controller with execution-template support.

    All controller↔worker and controller↔driver traffic runs over the
    reliable channels of :class:`~repro.nimbus.protocol.ReliableEndpoint`,
    so the control plane survives dropped, delayed, duplicated, and
    reordered messages (chaos injection). Application-level idempotence
    guards back the transport up: instantiation requests are deduplicated
    by request id so a redelivered :class:`~repro.nimbus.protocol.
    InstantiateBlock` can never apply a template's directory delta twice.
    """

    # template phases per block
    PHASE_NONE = 0
    PHASE_CT_READY = 1
    PHASE_WT_GENERATED = 2
    PHASE_WT_INSTALLED = 3

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        metrics: Metrics,
        slots_per_worker: int = 8,
        checkpoint_every: Optional[int] = None,
        heartbeat_timeout: float = 3.0,
        edit_threshold: float = 0.25,
        patch_cache_cap: int = 256,
    ):
        super().__init__(sim, "controller")
        self.costs = costs
        self.metrics = metrics
        self._init_reliable(metrics)
        self.slots_per_worker = slots_per_worker
        self.checkpoint_every = checkpoint_every
        self.heartbeat_timeout = heartbeat_timeout
        #: migrations touching more than this fraction of a template's tasks
        #: trigger a re-install instead of edits (§2.3)
        self.edit_threshold = edit_threshold

        self.driver = None  # attached by the cluster
        self.workers: Dict[int, Actor] = {}
        self.live_workers: Set[int] = set()
        self.directory = ObjectDirectory()
        self.placement: Optional[PartitionPlacement] = None

        # template state
        self.templates: Dict[str, ControllerTemplate] = {}
        self.phase: Dict[str, int] = {}
        # (block_id, version) -> WorkerTemplateSet
        self.worker_templates: Dict[Tuple[str, int], WorkerTemplateSet] = {}
        self.current_version: Dict[str, int] = {}
        self.assignments: Dict[Tuple[str, int], List[int]] = {}
        self.validation_state = ValidationState()
        self.patch_cache = PatchCache(capacity=patch_cache_cap,
                                      metrics=metrics)
        self._prev_block_key: Hashable = "job-start"
        # (block_id, version) -> {worker: [EditOp]} pending application
        self.pending_edits: Dict[Tuple[str, int], Dict[int, list]] = {}
        # cached template versions invalidated while they had un-shipped
        # edits: restore_workers must re-install these, never resurrect
        self._divergent_wts: Set[Tuple[str, int]] = set()
        #: optional adaptive rebalancer (sched.Rebalancer), attached by the
        #: cluster when --rebalance is on; None leaves behavior untouched
        self.rebalancer = None

        # id allocation
        self._next_cid = 1
        self._next_instance = 1
        self._next_seq = 1
        self._next_checkpoint = 1

        # per-block-run state
        self.runs: Dict[int, _BlockRun] = {}
        self._blocks_since_checkpoint = 0
        self._results_history: List[Tuple[str, Dict[str, Any]]] = []

        # central-path copy tracking: oid -> {worker: providing cid}
        self._holder_cids: Dict[int, Dict[int, int]] = {}

        #: while a central block run is being planned, dispatches coalesce
        #: here (worker -> [(command, report)]) into one batch message per
        #: worker instead of one message per command
        self._dispatch_buffer: Optional[Dict[int, List[Tuple[Command, bool]]]] = None
        #: memoized object_sizes(); dropped on define/undefine
        self._object_sizes_cache: Optional[Dict[int, int]] = None

        #: driver request ids already acted on (idempotent receive: a
        #: redelivered submit/instantiate must not run the block twice)
        self._seen_requests: Set[int] = set()

        # checkpoint / recovery state
        self._checkpoint_acks: Set[int] = set()
        self._halt_acks: Set[int] = set()
        self._load_acks: Set[int] = set()
        self._last_committed_checkpoint: Optional[int] = None
        self._checkpoint_snapshots: Dict[int, Tuple] = {}
        self._recovering = False
        self._checkpointing = False
        self._last_heartbeat: Dict[int, float] = {}
        self._failed_workers: Set[int] = set()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_workers(self, workers: Dict[int, Actor]) -> None:
        self.workers = dict(workers)
        self.live_workers = set(workers)
        self.placement = PartitionPlacement(sorted(workers))

    def _rel_should_retry(self, dst) -> bool:
        """Stop retransmitting to workers declared failed by recovery.

        Evicted workers stay retryable — eviction revokes scheduling, not
        network reachability — so their channels never develop gaps and
        :meth:`restore_workers` can resume them seamlessly.
        """
        wid = getattr(dst, "worker_id", None)
        if wid is not None and wid in self._failed_workers:
            return False
        return super()._rel_should_retry(dst)

    def start_failure_detector(self, check_interval: float = 1.0) -> None:
        self._hb_check_interval = check_interval
        for w in self.live_workers:
            self._last_heartbeat[w] = self.sim.now
        self.call_later(check_interval, self._check_heartbeats)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        if isinstance(msg, P.CommandComplete):
            self._on_command_complete(msg)
        elif isinstance(msg, P.CommandCompleteBatch):
            self._on_command_complete_batch(msg)
        elif isinstance(msg, P.InstanceComplete):
            self._on_instance_complete(msg)
        elif isinstance(msg, P.SubmitBlock):
            self._on_submit_block(msg)
        elif isinstance(msg, P.InstantiateBlock):
            self._on_instantiate_block(msg)
        elif isinstance(msg, P.DefineObjects):
            self._on_define_objects(msg)
        elif isinstance(msg, P.UndefineObjects):
            self._on_undefine_objects(msg)
        elif isinstance(msg, P.Heartbeat):
            self._last_heartbeat[msg.worker_id] = self.sim.now
        elif isinstance(msg, P.CheckpointAck):
            self._on_checkpoint_ack(msg)
        elif isinstance(msg, P.HaltAck):
            self._on_halt_ack(msg)
        elif isinstance(msg, P.LoadAck):
            self._on_load_ack(msg)
        elif isinstance(msg, P.ManagerDirective):
            msg.action(self)
        else:
            raise TypeError(f"controller got unexpected message {msg!r}")

    # ------------------------------------------------------------------
    # Object definition
    # ------------------------------------------------------------------
    def _on_define_objects(self, msg: P.DefineObjects) -> None:
        self._object_sizes_cache = None
        per_worker: Dict[int, List[int]] = {}
        for oid, variable, partition, size, home in msg.objects:
            obj = LogicalObject(oid, variable, partition, size)
            worker = self.placement.place(oid, home)
            self.directory.register(obj, worker)
            per_worker.setdefault(worker, []).append(oid)
        self.charge(self.costs.message_handling * max(1, len(msg.objects) // 64))
        for worker, oids in per_worker.items():
            self.send_reliable(self.workers[worker], P.CreateObjects(oids))
        self.send_reliable(self.driver, P.ObjectsReady())

    def _on_undefine_objects(self, msg: P.UndefineObjects) -> None:
        """Destroy logical objects everywhere (data commands, §3.4).

        Installed templates referencing the objects become invalid; the
        driver is responsible for only undefining objects its remaining
        blocks no longer touch (as in the paper, where the driver owns
        the data lifecycle).
        """
        self.charge(self.costs.message_handling)
        self._object_sizes_cache = None
        per_worker: Dict[int, List[int]] = {}
        for oid in msg.oids:
            if oid not in self.directory:
                continue
            for holders in [self.directory._holders.get(oid, {})]:
                for worker in holders:
                    per_worker.setdefault(worker, []).append(oid)
            self.directory.unregister(oid)
            self._holder_cids.pop(oid, None)
        for worker, oids in per_worker.items():
            if worker in self.live_workers:
                self.send_reliable(self.workers[worker], P.DestroyObjects(oids))
        self.send_reliable(self.driver, P.ObjectsReady())

    def object_sizes(self) -> Dict[int, int]:
        # sizes are fixed at definition, so the map only changes when
        # objects are defined or undefined (which drop the cache)
        if self._object_sizes_cache is None:
            self._object_sizes_cache = {
                obj.oid: obj.size_bytes for obj in self.directory.objects()
            }
        return self._object_sizes_cache

    # ------------------------------------------------------------------
    # Central scheduling path
    # ------------------------------------------------------------------
    def _assign_worker(self, read: Tuple[int, ...], write: Tuple[int, ...]) -> int:
        """Anchor a task at the home of its first written (or read) object."""
        anchor = write[0] if write else (read[0] if read else None)
        if anchor is None:
            return min(self.live_workers)
        return self.placement.home(anchor)

    def _alloc_cids(self, n: int) -> int:
        base = self._next_cid
        self._next_cid += n
        return base

    def _dispatch(self, run: _BlockRun, cmd: Command, report: bool = False) -> None:
        run.outstanding += 1
        buffer = self._dispatch_buffer
        if buffer is not None:
            lst = buffer.get(cmd.worker)
            if lst is None:
                lst = buffer[cmd.worker] = []
            lst.append((cmd, report))
            return
        self.send_reliable(self.workers[cmd.worker],
                  P.DispatchCommand(cmd, run.seq, report))

    def _begin_dispatch_batch(self) -> None:
        self._dispatch_buffer = {}

    def _flush_dispatch_batch(self, run: _BlockRun) -> None:
        """Send buffered dispatches, one coalesced message per worker.

        Workers flush in first-dispatch order (deterministic: plain dict
        insertion order), and each worker's command list preserves its
        dispatch order, so worker-side conflict tracking resolves the
        same dependencies as one-message-per-command dispatch.
        """
        buffer, self._dispatch_buffer = self._dispatch_buffer, None
        for worker, items in buffer.items():
            if len(items) == 1:
                cmd, report = items[0]
                msg = P.DispatchCommand(cmd, run.seq, report)
            else:
                msg = P.DispatchCommandBatch(items, run.seq)
            self.send_reliable(self.workers[worker], msg)

    def _schedule_task_centrally(
        self,
        run: _BlockRun,
        function: str,
        read: Tuple[int, ...],
        write: Tuple[int, ...],
        worker: int,
        params: Any,
        returns_rev: Dict[int, str],
    ) -> None:
        """Dependency analysis + copy insertion + dispatch for one task.

        Copies are inserted when the task reads an object whose latest
        version is not resident on its worker; the directory and the
        holder-command map are updated as the plan is built.
        """
        sizes = None
        directory = self.directory
        fresh = directory.is_fresh
        for oid in read:
            if not fresh(oid, worker):
                src = min(directory.holders_of_latest(oid))
                if sizes is None:
                    sizes = self.object_sizes()
                send_cid = self._alloc_cids(1)
                recv_cid = self._alloc_cids(1)
                send, recv = make_copy_pair(
                    send_cid, recv_cid, oid, src, worker,
                    size_bytes=sizes.get(oid, 0),
                )
                self._dispatch(run, send)
                self._dispatch(run, recv)
                directory.record_copy(oid, worker)
                holders = self._holder_cids.get(oid)
                if holders is None:
                    holders = self._holder_cids[oid] = {}
                holders[worker] = recv_cid
        cid = self._alloc_cids(1)
        task = make_task(cid, worker, function, read, write, params=params)
        report = False
        for oid in write:
            self.directory.record_write(oid, worker)
            self._holder_cids[oid] = {worker: cid}
            name = returns_rev.get(oid)
            if name is not None:
                run.return_cids[cid] = (name, oid)
                report = True
        self._dispatch(run, task, report=report)

    def _run_block_centrally(
        self,
        block: BlockSpec,
        params: Dict[str, Any],
        capture: bool,
        receive_cost: bool,
        seq: Optional[int] = None,
        request_id: int = 0,
    ) -> _BlockRun:
        run = self._new_run(block.block_id, block.num_tasks, "central", seq,
                            request_id)
        if capture and block.block_id in self.templates:
            capture = False  # already installed (e.g. resubmitted after recovery)
        returns_rev = {oid: name for name, oid in block.returns.items()}
        assignment: List[int] = []
        self._begin_dispatch_batch()
        for _stage_name, task in block.all_tasks():
            worker = self._assign_worker(task.read, task.write)
            assignment.append(worker)
            cost = self.costs.central_schedule_per_task
            if receive_cost:
                cost += self.costs.central_receive_per_task
            if capture:
                cost += self.costs.install_controller_template_per_task
            self.charge(cost)
            task_params = params.get(task.param_slot) if task.param_slot else None
            self._schedule_task_centrally(
                run, task.function, task.read, task.write, worker,
                task_params, returns_rev,
            )
        self._flush_dispatch_batch(run)
        self.metrics.incr("tasks_scheduled", block.num_tasks)
        if capture:
            template = ControllerTemplate.from_block(block, assignment)
            self.templates[block.block_id] = template
            self.phase[block.block_id] = self.PHASE_CT_READY
            self.current_version[block.block_id] = 0
            self.assignments[(block.block_id, 0)] = list(assignment)
            self.metrics.incr("controller_templates_installed")
        # Central execution leaves template validation state unknown.
        self.validation_state.invalidate()
        self._prev_block_key = ("central", block.block_id)
        if self._trace is not None:
            self._trace_decided(run)
        return run

    # ------------------------------------------------------------------
    # Driver block submission (central / capture path)
    # ------------------------------------------------------------------
    def _duplicate_request(self, request_id: int) -> bool:
        """Idempotent receive: has this driver request already run?

        The reliable channel already deduplicates redeliveries; this guard
        protects the object-version map even if a duplicate slips past the
        transport (e.g. a driver resubmitting after a lost completion).
        Request id 0 marks directly injected traffic (tests, benchmarks)
        and is never deduplicated.
        """
        if not request_id:
            return False
        if request_id in self._seen_requests:
            self.metrics.incr("protocol.stale_discards")
            return True
        self._seen_requests.add(request_id)
        return False

    def _on_submit_block(self, msg: P.SubmitBlock) -> None:
        self.charge(self.costs.message_handling)
        if self._duplicate_request(msg.request_id):
            return
        self._run_block_centrally(
            msg.block, msg.params,
            capture=msg.template_start,
            receive_cost=True,
            request_id=msg.request_id,
        )

    # ------------------------------------------------------------------
    # Template instantiation path
    # ------------------------------------------------------------------
    def _on_instantiate_block(self, msg: P.InstantiateBlock) -> None:
        self.charge(self.costs.message_handling)
        if self._duplicate_request(msg.request_id):
            return
        block_id = msg.block_id
        template = self.templates[block_id]
        phase = self.phase[block_id]
        n = template.num_tasks
        # parameter fill of the controller template (Table 2, row 1).
        # Pooled: the instance is a transient view consumed inside this
        # handler, so one object per template suffices.
        self.charge(self.costs.instantiate_controller_template_per_task * n)
        instance = template.instantiate_pooled(msg.task_id_base, msg.params)
        self.metrics.incr("template_instantiations")

        if phase == self.PHASE_CT_READY:
            # generate the controller half of the worker templates while
            # dispatching this iteration centrally (Fig. 9, iteration 11)
            c0 = self._charged
            self.charge(
                self.costs.install_worker_template_controller_per_task * n)
            version = self.current_version[block_id]
            wts = generate_worker_templates(
                template, self.object_sizes(), version)
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "template.generate",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id, **wts.stats())
            self.worker_templates[wts.key] = wts
            self.phase[block_id] = self.PHASE_WT_GENERATED
            self._dispatch_from_template(instance, msg.request_id)
            return
        if phase == self.PHASE_WT_GENERATED:
            # ship worker halves while dispatching centrally (iteration 12)
            version = self.current_version[block_id]
            wts = self.worker_templates[(block_id, version)]
            self._install_worker_halves(wts)
            self.phase[block_id] = self.PHASE_WT_INSTALLED
            self._dispatch_from_template(instance, msg.request_id)
            return

        # steady state (iteration 13+): validate, patch, instantiate
        version = self.current_version[block_id]
        wts = self.worker_templates[(block_id, version)]
        self._install_worker_halves(wts)  # no-op for already-installed workers
        c0 = self._charged
        if self.validation_state.auto_validates(wts.key):
            self.charge(
                self.costs.instantiate_worker_template_auto_per_task * n)
            self.metrics.incr("auto_validations")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "validate.auto",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id)
        else:
            self.charge(
                self.costs.instantiate_worker_template_validate_per_task * n)
            self.metrics.incr("full_validations")
            violations = full_validate(wts, self.directory)
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "validate.full",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id, violations=len(violations))
            if violations:
                self._apply_patch(wts, violations)
        self._instantiate_worker_templates(wts, instance, msg.params,
                                           msg.request_id)

    def _dispatch_from_template(self, instance, request_id: int = 0) -> None:
        """Centrally dispatch a controller-template instance (phases 1–2)."""
        template = instance.template
        run = self._new_run(template.block_id, template.num_tasks, "central",
                            request_id=request_id)
        returns_rev = {oid: name for name, oid in template.returns.items()}
        self._begin_dispatch_batch()
        for entry in template.entries:
            self.charge(self.costs.central_schedule_per_task)
            self._schedule_task_centrally(
                run, entry.function, entry.read, entry.write, entry.worker,
                instance.param_of(entry), returns_rev,
            )
        self._flush_dispatch_batch(run)
        self.metrics.incr("tasks_scheduled", template.num_tasks)
        self.validation_state.invalidate()
        self._prev_block_key = ("central", template.block_id)
        if self._trace is not None:
            self._trace_decided(run)

    def _install_worker_halves(self, wts: WorkerTemplateSet) -> None:
        for worker in wts.workers():
            if worker in wts.installed_on or worker not in self.live_workers:
                continue
            entries = wts.entries[worker]
            reports = [
                e.index for e in entries if e is not None and e.report
            ]
            self.send_reliable(self.workers[worker], P.InstallWorkerTemplate(
                wts.block_id, wts.version, entries, reports,
            ))
            wts.installed_on.add(worker)
            if self._trace is not None:
                self._trace.instant(self.name, "template", "template.ship",
                                    block_id=wts.block_id,
                                    version=wts.version, worker=worker,
                                    entries=len(entries))
            # a fresh install ships the controller half verbatim, which
            # already contains any planned edits — drop them so they are
            # not applied a second time at instantiation
            pending = self.pending_edits.get(wts.key)
            if pending:
                pending.pop(worker, None)

    def _instantiate_worker_templates(
        self,
        wts: WorkerTemplateSet,
        instance,
        params: Dict[str, Any],
        request_id: int = 0,
    ) -> None:
        """The fast path: one message per worker (§2.2: n+1 total)."""
        template = instance.template
        run = self._new_run(template.block_id, template.num_tasks, "template",
                            request_id=request_id)
        run.instance_id = self._next_instance
        self._next_instance += 1
        edits_by_worker = self.pending_edits.pop(wts.key, {})
        for worker in wts.workers():
            entries = wts.entries[worker]
            cid_base = self._alloc_cids(len(entries))
            msg = P.InstantiateWorkerTemplate(
                wts.block_id, wts.version, run.instance_id, cid_base,
                params, run.seq, edits=edits_by_worker.get(worker),
            )
            msg.size_bytes = (P.TASK_ID_BYTES * len(entries)
                              + P.PARAM_BLOCK_BYTES)
            self.send_reliable(self.workers[worker], msg)
            run.expected_workers.add(worker)
        run.outstanding = len(run.expected_workers)
        for name, oid in wts.returns.items():
            # values arrive inside InstanceComplete messages keyed by oid
            run.return_cids[oid] = (name, oid)
        wts.delta.apply(self.directory)
        self.validation_state.note_instantiation(wts.key)
        self._prev_block_key = wts.key
        self.metrics.incr("tasks_scheduled", template.num_tasks)
        if self._trace is not None:
            self._trace_decided(run)

    # ------------------------------------------------------------------
    # Patching (§4.2)
    # ------------------------------------------------------------------
    def _apply_patch(self, wts: WorkerTemplateSet,
                     violations: List[Tuple[int, int]]) -> None:
        instance_id = self._next_instance
        self._next_instance += 1
        c0 = self._charged
        cached = self.patch_cache.lookup(
            self._prev_block_key, wts.key, violations, self.directory)
        if cached is not None:
            self.charge(self.costs.patch_cache_invoke)
            patch = cached
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send_reliable(self.workers[worker], P.InstantiatePatch(
                    patch.patch_id, cid_base, instance_id))
            self.metrics.incr("patch_cache_hits")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "patch.cache_hit",
                    self._handler_start + c0, self._charged - c0,
                    patch_id=patch.patch_id, num_copies=patch.num_copies())
        else:
            patch = build_patch(violations, self.directory, self.object_sizes(),
                                patch_id=self.patch_cache.allocate_id())
            self.charge(self.costs.patch_compute_per_copy * patch.num_copies())
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send_reliable(self.workers[worker], P.InstallPatch(
                    patch.patch_id, patch.entries[worker], cid_base,
                    instance_id))
            self.patch_cache.store(self._prev_block_key, wts.key, patch)
            self.metrics.incr("patches_computed")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "patch.compute",
                    self._handler_start + c0, self._charged - c0,
                    patch_id=patch.patch_id, num_copies=patch.num_copies())
        patch.apply_to_directory(self.directory)
        self.metrics.incr("patch_copies", patch.num_copies())

    # ------------------------------------------------------------------
    # Dynamic scheduling: edits, eviction, restore (§2.3, Fig. 9/10)
    # ------------------------------------------------------------------
    def migrate_tasks(self, block_id: str, moves: List[Tuple[int, int]]) -> str:
        """Move tasks (by controller-template entry index) to new workers.

        Small changes become template edits; large ones re-install. Before
        worker templates exist the block is still dispatched centrally from
        the controller template, so updating the assignment is the whole
        migration ("reassign"). Returns which mechanism was used
        ("edits", "reinstall", or "reassign").
        """
        template = self.templates.get(block_id)
        if template is None:
            raise KeyError(
                f"cannot migrate tasks of block {block_id!r}: no controller "
                f"template captured yet (captured blocks: "
                f"{sorted(self.templates)})"
            )
        version = self.current_version.get(block_id, 0)
        wts = self.worker_templates.get((block_id, version))
        if wts is None or self.phase.get(block_id, 0) < self.PHASE_WT_GENERATED:
            for ct_index, dst in moves:
                template.reassign(ct_index, dst)
            if (block_id, version) in self.assignments:
                self.assignments[(block_id, version)] = [
                    e.worker for e in template.entries
                ]
            self.metrics.incr("migrations_reassigned")
            return "reassign"
        if len(moves) <= self.edit_threshold * template.num_tasks:
            edits, total_ops, relocations = plan_migrations(
                wts, moves, self.object_sizes())
            self.charge(self.costs.edit_per_task * total_ops)
            pending = self.pending_edits.setdefault(wts.key, {})
            for worker, ops in edits.items():
                pending.setdefault(worker, []).extend(ops)
            for ct_index, dst in moves:
                template.reassign(ct_index, dst)
            # one-time data moves for relocated sole-reader inputs: the
            # objects' homes follow the tasks; stale replicas remain behind
            stale = [(dst, oid) for oid, dst in relocations
                     if not self.directory.is_fresh(oid, dst)]
            if stale:
                patch = build_patch(stale, self.directory,
                                    self.object_sizes(),
                                    patch_id=self.patch_cache.allocate_id())
                instance_id = self._next_instance
                self._next_instance += 1
                for worker in patch.workers():
                    cid_base = self._alloc_cids(patch.entry_count(worker))
                    self.send_reliable(self.workers[worker], P.InstallPatch(
                        patch.patch_id, patch.entries[worker], cid_base,
                        instance_id))
                patch.apply_to_directory(self.directory)
                self.metrics.incr("relocation_copies", len(stale))
            for oid, dst in relocations:
                self.placement.migrate(oid, dst)
            self.metrics.incr("edits_applied", total_ops)
            return "edits"
        for ct_index, dst in moves:
            template.reassign(ct_index, dst)
        self._regenerate_worker_templates(block_id)
        return "reinstall"

    def _drop_pending_edits(self, block_id: str) -> None:
        """Forget queued-but-unshipped worker-half edits for ``block_id``.

        Called whenever a regeneration, eviction, or restore supersedes the
        assignment the edits were planned against. ``plan_migration``
        applies edits to the *controller* half immediately, so a cached
        :class:`WorkerTemplateSet` with dropped pending ops can never be
        brought back in sync with the pre-edit halves workers already hold
        — drop that cached version too, and let :meth:`restore_workers`
        fall back to a regeneration if a snapshot still points at it.
        """
        for key in [k for k in self.pending_edits if k[0] == block_id]:
            del self.pending_edits[key]
            wts = self.worker_templates.get(key)
            if wts is not None and wts.installed_on:
                del self.worker_templates[key]
                self._divergent_wts.add(key)

    def _regenerate_worker_templates(self, block_id: str) -> None:
        self._drop_pending_edits(block_id)
        template = self.templates[block_id]
        template.assignment_version += 1
        version = template.assignment_version
        self.current_version[block_id] = version
        c0 = self._charged
        self.charge(self.costs.install_worker_template_controller_per_task
                    * template.num_tasks)
        wts = generate_worker_templates(
            template, self.object_sizes(), version)
        if self._trace is not None:
            self._trace.span(
                self.name, "template", "template.generate",
                self._handler_start + c0, self._charged - c0,
                block_id=block_id, version=version, **wts.stats())
        self.worker_templates[wts.key] = wts
        self.assignments[(block_id, version)] = [
            e.worker for e in template.entries
        ]
        self.phase[block_id] = self.PHASE_WT_GENERATED
        self.validation_state.invalidate()
        self.metrics.incr("worker_template_regenerations")

    def evict_workers(self, evicted: List[int]) -> None:
        """A cluster manager revoked workers: migrate their objects and
        tasks to the survivors and regenerate worker templates (Fig. 9).

        Re-homed objects are drained through the same ``build_patch``
        relocation path :meth:`migrate_tasks` uses: the survivors must
        physically hold the latest version of every object they now home,
        because the revoked workers stop being schedulable the moment this
        returns. The drain itself may copy *from* an evicted worker (it is
        still reachable while the directive runs); afterwards no control
        message targets an evicted worker until :meth:`restore_workers`.
        """
        evicted_set = set(evicted)
        survivors = sorted(self.live_workers - evicted_set)
        if not survivors:
            raise RuntimeError("cannot evict every worker")
        self.live_workers -= evicted_set
        rr = 0
        stale: List[Tuple[int, int]] = []
        for oid in list(self._all_placed_objects()):
            if self.placement.home(oid) in evicted_set:
                dst = survivors[rr % len(survivors)]
                rr += 1
                self.placement.migrate(oid, dst)
                if not self.directory.is_fresh(oid, dst):
                    stale.append((dst, oid))
        if stale:
            patch = build_patch(stale, self.directory, self.object_sizes(),
                                patch_id=self.patch_cache.allocate_id())
            instance_id = self._next_instance
            self._next_instance += 1
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send_reliable(self.workers[worker], P.InstallPatch(
                    patch.patch_id, patch.entries[worker], cid_base,
                    instance_id))
            patch.apply_to_directory(self.directory)
            self.metrics.incr("relocation_copies", len(stale))
        for block_id, template in self.templates.items():
            # a block with queued edits must regenerate even if none of its
            # template entries sit on an evicted worker: the queued ops (or
            # the edited halves they target) may address evicted peers, and
            # regeneration is what retires them (_drop_pending_edits)
            changed = any(key[0] == block_id for key in self.pending_edits)
            for entry in template.entries:
                if entry.worker in evicted_set:
                    entry.worker = self._assign_worker(entry.read, entry.write)
                    changed = True
            if changed and self.phase.get(block_id, 0) >= self.PHASE_CT_READY:
                self._regenerate_worker_templates(block_id)
        self.validation_state.invalidate()

    def restore_workers(self, restored: List[int],
                        placement_snapshot: Dict[int, int],
                        version_snapshot: Dict[str, int]) -> None:
        """Workers returned: revert to the cached templates for the old
        assignment; the next instantiation validates them (Fig. 9)."""
        self.live_workers |= set(restored)
        for oid, home in placement_snapshot.items():
            self.placement.migrate(oid, home)
        for block_id, version in version_snapshot.items():
            # queued edits were planned against assignments this restore is
            # undoing — shipping them later would corrupt installed halves
            self._drop_pending_edits(block_id)
            template = self.templates[block_id]
            assignment = self.assignments[(block_id, version)]
            for entry, worker in zip(template.entries, assignment):
                entry.worker = worker
            self.current_version[block_id] = version
            if (block_id, version) in self.worker_templates:
                self.phase[block_id] = self.PHASE_WT_INSTALLED
            elif (block_id, version) in self._divergent_wts:
                # the cached set for this version was invalidated while it
                # had un-shipped edits; re-install instead of resurrecting
                # worker halves that no longer match the controller half
                self._regenerate_worker_templates(block_id)
            else:
                # worker templates were never generated for this version
                # (the block was still pre-WT at snapshot time); rejoin the
                # staircase so the next instantiation generates them fresh
                self.phase[block_id] = self.PHASE_CT_READY
        self.validation_state.invalidate()

    def snapshot_placement(self) -> Dict[int, int]:
        return {oid: self.placement.home(oid)
                for oid in self._all_placed_objects()}

    def snapshot_versions(self) -> Dict[str, int]:
        return dict(self.current_version)

    def _all_placed_objects(self):
        return [obj.oid for obj in self.directory.objects()]

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _new_run(self, block_id: str, num_tasks: int, mode: str,
                 seq: Optional[int] = None, request_id: int = 0) -> _BlockRun:
        if seq is None:
            seq = self._next_seq
            self._next_seq += 1
        run = _BlockRun(seq, block_id, num_tasks, mode, self.sim.now,
                        request_id)
        self.runs[seq] = run
        self.metrics.begin("block", self.sim.now, key=seq,
                           block_id=block_id, seq=seq, mode=mode,
                           num_tasks=num_tasks, request_id=request_id)
        if self._trace is not None:
            self._trace.run_begin(run.seq, block_id, mode, request_id,
                                  num_tasks, self._handler_start)
        return run

    def _trace_decided(self, run: _BlockRun) -> None:
        """Record the end of this run's scheduling decision (traced only).

        The decision ends when the handler's charged CPU elapses — the
        same instant the dispatch messages depart the controller.
        """
        self._trace.run_decided(run.seq, self._handler_start + self._charged)

    def _on_command_complete(self, msg: P.CommandComplete) -> None:
        self.charge(self.costs.controller_completion_per_task)
        self._complete_command(msg.worker_id, msg.cid, msg.block_seq,
                               msg.duration, msg.value)

    def _on_command_complete_batch(self, msg: P.CommandCompleteBatch) -> None:
        # the per-completion cost is charged per item: coalescing saves
        # messages and event overhead, not modeled controller work
        self.charge(self.costs.controller_completion_per_task
                    * len(msg.items))
        worker_id = msg.worker_id
        for cid, block_seq, duration, value, _oid in msg.items:
            self._complete_command(worker_id, cid, block_seq, duration, value)

    def _complete_command(self, worker_id: int, cid: int, block_seq: int,
                          duration: float, value: Any) -> None:
        run = self.runs.get(block_seq)
        if run is None:
            return  # dropped by recovery
        run.outstanding -= 1
        run.compute_by_worker[worker_id] = (
            run.compute_by_worker.get(worker_id, 0.0) + duration)
        if cid in run.return_cids:
            name, _oid = run.return_cids[cid]
            run.results[name] = value
        if run.outstanding == 0 and not run.open:
            self._finish_block(run)

    def _on_instance_complete(self, msg: P.InstanceComplete) -> None:
        self.charge(self.costs.controller_block_completion)
        run = self.runs.get(msg.block_seq)
        if run is None:
            return
        run.outstanding -= 1
        run.compute_by_worker[msg.worker_id] = (
            run.compute_by_worker.get(msg.worker_id, 0.0) + msg.compute_time)
        if self.rebalancer is not None:
            # pure observation: no charge, no metrics, no RNG — a run with
            # the rebalancer enabled but no skew stays bit-identical
            self.rebalancer.observe_instance(
                msg.block_id, msg.version, msg.worker_id,
                msg.compute_time, msg.task_times)
        for oid, value in msg.values.items():
            if oid in run.return_cids:
                name, _oid = run.return_cids[oid]
                run.results[name] = value
        if run.outstanding == 0:
            self._finish_block(run)

    def _finish_block(self, run: _BlockRun) -> None:
        del self.runs[run.seq]
        if self._trace is not None:
            self._trace.run_finish(run.seq)
        compute = 0.0
        if run.compute_by_worker:
            compute = max(run.compute_by_worker.values()) / self.slots_per_worker
        self.metrics.end("block", self.sim.now, key=run.seq,
                         compute=compute, results=dict(run.results))
        self._results_history.append((run.block_id, dict(run.results)))
        self.send_reliable(self.driver, P.BlockComplete(
            run.block_id, run.seq, dict(run.results), run.request_id))
        if (self.rebalancer is not None and run.mode == "template"
                and not self._recovering and not self._checkpointing):
            self.rebalancer.maybe_rebalance(run.block_id)
        self._blocks_since_checkpoint += 1
        if (self.checkpoint_every is not None
                and self._blocks_since_checkpoint >= self.checkpoint_every
                and not self.runs and not self._checkpointing
                and not self._recovering):
            self._start_checkpoint()

    # ------------------------------------------------------------------
    # Checkpointing (§4.4)
    # ------------------------------------------------------------------
    def _start_checkpoint(self) -> None:
        self._checkpointing = True
        self._blocks_since_checkpoint = 0
        checkpoint_id = self._next_checkpoint
        self._next_checkpoint += 1
        self._checkpoint_acks = set()
        self._checkpoint_snapshots[checkpoint_id] = (
            self.directory.snapshot(),
            self.snapshot_placement(),
            list(self._results_history),
        )
        for worker in self.live_workers:
            self.send_reliable(self.workers[worker], P.SaveCheckpoint(checkpoint_id))
        self._pending_checkpoint_id = checkpoint_id
        self.metrics.incr("checkpoints_started")

    def _on_checkpoint_ack(self, msg: P.CheckpointAck) -> None:
        if msg.checkpoint_id != getattr(self, "_pending_checkpoint_id", None):
            return
        self._checkpoint_acks.add(msg.worker_id)
        if self._checkpoint_acks >= self.live_workers:
            self._last_committed_checkpoint = msg.checkpoint_id
            self._checkpointing = False
            self.metrics.incr("checkpoints_committed")

    # ------------------------------------------------------------------
    # Failure detection and recovery (§4.4)
    # ------------------------------------------------------------------
    def _check_heartbeats(self) -> None:
        if not self._recovering:
            now = self.sim.now
            dead = [
                w for w in self.live_workers
                if now - self._last_heartbeat.get(w, now) > self.heartbeat_timeout
            ]
            if dead:
                self._begin_recovery(dead)
        self.call_later(self._hb_check_interval, self._check_heartbeats)

    def _begin_recovery(self, dead: List[int]) -> None:
        if self._last_committed_checkpoint is None:
            raise RuntimeError(
                f"workers {dead} failed with no committed checkpoint")
        self._recovering = True
        self._failed_workers |= set(dead)
        self.live_workers -= set(dead)
        self.runs.clear()  # in-flight blocks are abandoned and replayed
        self._halt_acks = set()
        for worker in self.live_workers:
            self.send_reliable(self.workers[worker], P.Halt())
        self.metrics.incr("recoveries_started")

    def _on_halt_ack(self, msg: P.HaltAck) -> None:
        if not self._recovering:
            return
        self._halt_acks.add(msg.worker_id)
        if self._halt_acks >= self.live_workers:
            self._restore_from_checkpoint()

    def _restore_from_checkpoint(self) -> None:
        checkpoint_id = self._last_committed_checkpoint
        dir_snap, placement_snap, history = (
            self._checkpoint_snapshots[checkpoint_id])
        self.directory.restore(dir_snap)
        survivors = sorted(self.live_workers)
        rr = 0
        per_worker_loads: Dict[int, List[int]] = {}
        for oid, home in placement_snap.items():
            if home not in self.live_workers:
                home = survivors[rr % len(survivors)]
                rr += 1
            self.placement.migrate(oid, home)
            per_worker_loads.setdefault(home, []).append(oid)
        for worker in self._failed_workers:
            self.directory.evict_worker(worker)
        # every object is reloaded at its (possibly new) home at the
        # checkpointed version; the directory reflects exactly that
        for worker, oids in per_worker_loads.items():
            for oid in oids:
                self.directory.apply_block_delta(oid, 0, [worker])
        # all cached schedules referenced the dead workers: rebuild
        for block_id, template in self.templates.items():
            for entry in template.entries:
                if entry.worker not in self.live_workers:
                    entry.worker = self._assign_worker(entry.read, entry.write)
            if self.phase.get(block_id, 0) >= self.PHASE_CT_READY:
                self._regenerate_worker_templates(block_id)
        self.patch_cache.invalidate_all()
        self.validation_state.invalidate()
        self._results_history = list(history)
        self._load_acks = set()
        for worker, oids in per_worker_loads.items():
            self.send_reliable(self.workers[worker],
                      P.LoadCheckpoint(checkpoint_id, oids))
        self._expected_load_acks = set(per_worker_loads)
        if not per_worker_loads:
            self._finish_recovery()

    def _on_load_ack(self, msg: P.LoadAck) -> None:
        if not self._recovering:
            return
        self._load_acks.add(msg.worker_id)
        if self._load_acks >= self._expected_load_acks:
            self._finish_recovery()

    def _finish_recovery(self) -> None:
        self._recovering = False
        self._holder_cids.clear()
        self.send_reliable(self.driver, P.JobRestored(
            len(self._results_history) + 1, list(self._results_history)))
        self.metrics.incr("recoveries_completed")
