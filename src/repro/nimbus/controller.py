"""The Nimbus controller (§3.2, §4).

The controller receives blocks from drivers, transforms them into an
execution plan, and dispatches commands to workers. Execution templates
live here: per basic block the controller moves through four phases,
matching the installation staircase of Figure 9:

* ``CENTRAL`` — no template: the block's task stream is scheduled centrally,
  one dispatch message per command (134 µs/task). If the driver marked the
  block, the stream is simultaneously captured into a controller template
  (+25 µs/task).
* ``CT_READY`` — the controller template exists: instantiation requests are
  parameter fills (0.2 µs/task); tasks are still dispatched centrally while
  the controller half of the worker templates is generated (+15 µs/task).
* ``WT_GENERATED`` — worker halves are shipped to the workers (9 µs/task at
  each worker) alongside one last central dispatch.
* ``WT_INSTALLED`` — the steady state: validate (auto 1.7 µs/task, full
  7.3 µs/task), patch if needed, and send one instantiation message per
  worker — n+1 control messages for the whole iteration (§2.2).

The controller also owns the object directory, the patch cache, edit-based
migration, eviction/restore of workers (Figure 9), checkpointing, and
failure recovery (§4.4).

Multi-tenancy: the controller serves N concurrent jobs. Everything the
template machinery needs per job — the template namespace, the object
directory and version map, placement, patch cache, driver channel, and
metrics stream — lives in a :class:`~repro.nimbus.multijob.JobContext`
keyed by job id. Job 0 is created eagerly with the controller's own
metrics object and an identity oid namespace, so a single-job cluster
behaves bit-identically to the pre-multi-tenant system; the legacy flat
attributes (``controller.templates`` and friends) remain as views onto
job 0. Blocks dispatch behind an optional concurrency cap
(``dispatch_inflight_cap``) with weighted fair-share ordering, and the
shared :class:`~repro.sched.rebalance.LoadTracker` observed from all
jobs' completions seeds new jobs' placements on the least-loaded worker.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..core.controller_template import ControllerTemplate
from ..core.edits import plan_migrations
from ..core.patching import Patch, PatchCache, build_patch
from ..core.spec import BlockSpec
from ..core.validation import ValidationState, full_validate
from ..core.worker_template import WorkerTemplateSet, generate_worker_templates
from ..sched.policy import make_policy
from ..sched.rebalance import LoadTracker
from ..sim.actor import Actor, Message
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from .commands import Command, CommandKind, make_copy_pair, make_task
from .costs import CostModel
from .data import LogicalObject, ObjectDirectory, PartitionPlacement
from .multijob import FairShareQueue, JobContext
from . import protocol as P

#: the steady-state control-plane message types — the traffic Fig. 7
#: measures once templates are installed. Counted separately from total
#: controller traffic so the centralized-vs-decentralized messages-per-task
#: comparison is not drowned out by the (mode-independent) one-time ramp-up
#: of central dispatch and template installation.
_STEADY_IN = frozenset((
    P.InstantiateBlock, P.InstantiateWindow,
    P.InstanceComplete, P.WindowSummary, P.ShardWindowSummary,
))
_STEADY_OUT = frozenset((
    P.InstantiateWorkerTemplate, P.SelfScheduleWindow,
    P.BlockComplete, P.BlockCompleteBatch, P.EpochUpdate,
    P.ShardWindow, P.ShardRegrant,
))


class _BlockRun:
    """Tracks one in-flight block instance until completion."""

    __slots__ = ("seq", "block_id", "num_tasks", "mode", "outstanding",
                 "expected_workers", "results", "return_cids", "start_time",
                 "compute_by_worker", "instance_id", "request_id", "open",
                 "ctx")

    def __init__(self, seq, block_id, num_tasks, mode, start_time,
                 request_id=0, ctx=None):
        self.seq = seq
        self.block_id = block_id
        self.num_tasks = num_tasks
        self.mode = mode  # "central" | "template"
        self.outstanding = 0  # commands (central) or worker acks (template)
        self.expected_workers: Set[int] = set()
        self.results: Dict[str, Any] = {}
        self.return_cids: Dict[int, Tuple[str, int]] = {}  # cid -> (name, oid)
        self.start_time = start_time
        self.compute_by_worker: Dict[int, float] = {}
        self.instance_id: Optional[int] = None
        self.request_id = request_id
        #: True while the scheduler still has commands to dispatch for this
        #: run (staged dispatch must not complete the block at a barrier)
        self.open = False
        #: owning job context (resolves completions without a job id)
        self.ctx: Optional[JobContext] = ctx


def _job0_view(attr, doc, settable=False):
    """A legacy flat-attribute view onto the job-0 context."""
    def fget(self):
        return getattr(self._job0, attr)

    if not settable:
        return property(fget, doc=doc)

    def fset(self, value):
        setattr(self._job0, attr, value)

    return property(fget, fset, doc=doc)


class Controller(P.ReliableEndpoint, Actor):
    """Centralized Nimbus controller with execution-template support.

    All controller↔worker and controller↔driver traffic runs over the
    reliable channels of :class:`~repro.nimbus.protocol.ReliableEndpoint`,
    so the control plane survives dropped, delayed, duplicated, and
    reordered messages (chaos injection). Application-level idempotence
    guards back the transport up: instantiation requests are deduplicated
    by request id so a redelivered :class:`~repro.nimbus.protocol.
    InstantiateBlock` can never apply a template's directory delta twice.
    """

    # template phases per block
    PHASE_NONE = 0
    PHASE_CT_READY = 1
    PHASE_WT_GENERATED = 2
    PHASE_WT_INSTALLED = 3

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        metrics: Metrics,
        slots_per_worker: int = 8,
        checkpoint_every: Optional[int] = None,
        heartbeat_timeout: float = 3.0,
        edit_threshold: float = 0.25,
        patch_cache_cap: int = 256,
        dispatch_inflight_cap: Optional[int] = None,
        default_mode: str = "centralized",
    ):
        super().__init__(sim, "controller")
        self.costs = costs
        self.metrics = metrics
        self._init_reliable(metrics)
        self.slots_per_worker = slots_per_worker
        self.checkpoint_every = checkpoint_every
        self.heartbeat_timeout = heartbeat_timeout
        #: migrations touching more than this fraction of a template's tasks
        #: trigger a re-install instead of edits (§2.3)
        self.edit_threshold = edit_threshold
        self._patch_cache_cap = patch_cache_cap
        #: evictions may never shrink the live set below this floor (the
        #: autoscaler raises it to its policy's min_workers)
        self.min_live_workers = 1

        self.workers: Dict[int, Actor] = {}
        self.live_workers: Set[int] = set()
        #: controller shards (sharded mode, DESIGN.md §16): shard id ->
        #: ControllerShard actor. Attached by the cluster; empty is fine
        #: as long as no job runs mode="sharded".
        self.shards: Dict[int, Actor] = {}
        #: workers the autoscaler is draining (DRAINING lifecycle): still
        #: live — in-flight work finishes, channels stay open — but no
        #: *new* placement may target them (new-job registration, spread
        #: planning). Maintained by scale.ResourceController.
        self.draining_workers: Set[int] = set()
        #: reverse causal barrier for sharded fan-in: highest reliable
        #: sequence handled per sender (actor name). A shard-relayed
        #: WindowSummary carries the worker→coordinator sequence it must
        #: not overtake (``ctrl_seq``); summaries arriving early park in
        #: ``_barrier_summaries`` until the worker's direct stream
        #: catches up — otherwise a window's blocks could complete at
        #: the driver before an earlier centrally-dispatched block.
        self._handled_seq: Dict[str, int] = {}
        self._barrier_summaries: List[Tuple[int, P.WindowSummary]] = []

        # per-job state: job 0 is the legacy single-driver job, sharing the
        # controller's metrics object (the bit-identity seam — every
        # counter lands exactly where the flat controller put it)
        self._job0 = JobContext(
            0, metrics=metrics,
            patch_cache=PatchCache(capacity=patch_cache_cap,
                                   metrics=metrics))
        self.jobs: Dict[int, JobContext] = {0: self._job0}
        #: scheduling mode for jobs that don't pick their own (DESIGN.md §14)
        self.default_mode = default_mode
        self._job0.policy = make_policy(default_mode, self, self._job0)
        #: partition-map epoch: bumped on every map change; decentralized
        #: workers must observe it before crossing a block boundary
        self.pm_epoch = 0
        self._next_window = 1

        #: optional adaptive rebalancer (sched.Rebalancer), attached by the
        #: cluster when --rebalance is on; None leaves behavior untouched
        self.rebalancer = None
        #: cross-job load signal: every block completion folds its per-
        #: worker compute into this EWMA (pure bookkeeping, no RNG/charge);
        #: new jobs' placements start at the least-loaded worker
        self.load_tracker = LoadTracker(alpha=0.5)

        #: when set, at most this many block runs are in flight at once;
        #: excess submissions queue in fair-share order. None (default)
        #: leaves the legacy immediate-dispatch path byte-identical.
        self.dispatch_inflight_cap = dispatch_inflight_cap
        self._dispatch_queue = FairShareQueue()

        # id allocation (shared across jobs so worker-side command ids,
        # instance ids, block seqs, and patch ids never collide)
        self._next_cid = 1
        self._next_instance = 1
        self._next_seq = 1
        self._next_checkpoint = 1
        self._next_patch_id = 1

        # per-block-run state
        self.runs: Dict[int, _BlockRun] = {}
        self._blocks_since_checkpoint = 0

        #: while a central block run is being planned, dispatches coalesce
        #: here (worker -> [(command, report)]) into one batch message per
        #: worker instead of one message per command
        self._dispatch_buffer: Optional[Dict[int, List[Tuple[Command, bool]]]] = None

        # checkpoint / recovery state (job 0: fault tolerance predates
        # multi-tenant serving and is only driven by the legacy driver)
        self._checkpoint_acks: Set[int] = set()
        self._halt_acks: Set[int] = set()
        self._load_acks: Set[int] = set()
        self._last_committed_checkpoint: Optional[int] = None
        self._checkpoint_snapshots: Dict[int, Tuple] = {}
        self._recovering = False
        self._checkpointing = False
        self._last_heartbeat: Dict[int, float] = {}
        self._failed_workers: Set[int] = set()

    # ------------------------------------------------------------------
    # Legacy flat views (single-job API): all delegate to job 0
    # ------------------------------------------------------------------
    driver = _job0_view("driver", "job 0's driver channel", settable=True)
    directory = _job0_view("directory", "job 0's object directory")
    placement = _job0_view("placement", "job 0's placement", settable=True)
    templates = _job0_view("templates", "job 0's controller templates")
    phase = _job0_view("phase", "job 0's per-block template phase")
    worker_templates = _job0_view("worker_templates",
                                  "job 0's worker template sets")
    current_version = _job0_view("current_version",
                                 "job 0's current template versions")
    assignments = _job0_view("assignments", "job 0's assignment snapshots")
    validation_state = _job0_view("validation_state",
                                  "job 0's validation automaton")
    patch_cache = _job0_view("patch_cache", "job 0's patch cache")
    pending_edits = _job0_view("pending_edits", "job 0's un-shipped edits")
    _results_history = _job0_view("results_history",
                                  "job 0's recorded block results")

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_workers(self, workers: Dict[int, Actor]) -> None:
        self.workers = dict(workers)
        self.live_workers = set(workers)
        self._job0.placement = PartitionPlacement(sorted(workers))

    def attach_shards(self, shards: Dict[int, Actor]) -> None:
        self.shards = dict(shards)

    def shard_of(self, worker_id: int) -> int:
        """The shard owning a worker: fixed modulo partitioning, so a
        worker's owner never moves as workers join and leave."""
        if not self.shards:
            raise RuntimeError(
                "mode='sharded' needs controller shards; build the "
                "cluster through NimbusCluster (which always attaches "
                "them) or call attach_shards() first")
        return worker_id % len(self.shards)

    def register_job(self, job_id: int, driver, metrics: Metrics,
                     weight: float = 1.0,
                     mode: Optional[str] = None) -> JobContext:
        """Create a job's namespace: directory, templates, patch cache.

        Placement reuses the cross-job :class:`LoadTracker`: the job's
        round-robin starts at the currently least-loaded worker, so
        concurrent jobs spread instead of piling onto worker 0.

        DRAINING workers are excluded: a job admitted from the wait
        queue while the autoscaler drains a worker used to land
        partitions on it — work placed on a node that is on its way out
        of the cluster (serve+autoscale regression).
        """
        if job_id in self.jobs:
            raise ValueError(f"job {job_id} is already registered")
        ctx = JobContext(
            job_id, driver=driver, metrics=metrics, weight=weight,
            patch_cache=PatchCache(capacity=self._patch_cache_cap,
                                   metrics=metrics))
        order = sorted(self.live_workers - self.draining_workers)
        if not order:
            order = sorted(self.live_workers)
        if order:
            start = min(order, key=lambda w: (
                self.load_tracker.load.get(w, 0.0), w))
            i = order.index(start)
            order = order[i:] + order[:i]
        ctx.placement = PartitionPlacement(order)
        ctx.policy = make_policy(mode or self.default_mode, self, ctx)
        self.jobs[job_id] = ctx
        self.metrics.incr("jobs_registered")
        return ctx

    def release_job(self, job_id: int) -> None:
        """Tear down a job's namespace (crash, cancel, or eviction).

        Queued dispatches are dropped, in-flight runs abandoned, and the
        job's objects destroyed on every worker holding them — so a dead
        job can never stall or leak into the jobs still being served.
        """
        if job_id == 0:
            raise ValueError("job 0 (the legacy driver) cannot be released")
        ctx = self.jobs.pop(job_id, None)
        if ctx is None:
            return
        self._dispatch_queue.drop_job(job_id)
        self._barrier_summaries = [(j, s) for j, s in self._barrier_summaries
                                   if j != job_id]
        for seq in [s for s, run in self.runs.items() if run.ctx is ctx]:
            del self.runs[seq]
        per_worker: Dict[int, List[int]] = {}
        for obj in ctx.directory.objects():
            for worker in ctx.directory._holders.get(obj.oid, {}):
                per_worker.setdefault(worker, []).append(obj.oid)
        # every live worker learns of the release, holder or not: any of
        # them may hold queued commands (or an in-flight write about to
        # create an object) for the dead job
        for worker in sorted(self.live_workers):
            self.send_reliable(self.workers[worker],
                               P.ReleaseJob(job_id,
                                            per_worker.get(worker, [])))
        # close any sharded window state *before* late summaries can
        # arrive: shards holding fan-in for the dead job's windows would
        # otherwise wait forever on workers that just dropped their
        # grants (release-mid-window regression)
        if ctx.policy is not None and ctx.policy.mode == "sharded":
            for shard_id in sorted(self.shards):
                self.send_reliable(self.shards[shard_id],
                                   P.ShardAbort(job_id, None))
        self.metrics.incr("jobs_released")
        self._drain_dispatch_queue()

    def _ctx_of(self, msg) -> Optional[JobContext]:
        """Resolve a driver message's job context; None drops it quietly
        (in-flight traffic of a job released mid-run)."""
        ctx = self.jobs.get(msg.job_id)
        if ctx is None:
            self.metrics.incr("jobs.orphan_discards")
        return ctx

    def send_reliable(self, dst, msg) -> None:
        # logical outbound control messages: retransmissions and channel
        # acks bypass this chokepoint, so each message counts once
        self.metrics.incr("controller.messages_out")
        if type(msg) in _STEADY_OUT:
            self.metrics.incr("controller.steady_messages_out")
        super().send_reliable(dst, msg)

    def _rel_should_retry(self, dst) -> bool:
        """Stop retransmitting to workers declared failed by recovery.

        Evicted workers stay retryable — eviction revokes scheduling, not
        network reachability — so their channels never develop gaps and
        :meth:`restore_workers` can resume them seamlessly.
        """
        wid = getattr(dst, "worker_id", None)
        if wid is not None and wid in self._failed_workers:
            return False
        return super()._rel_should_retry(dst)

    def start_failure_detector(self, check_interval: float = 1.0) -> None:
        self._hb_check_interval = check_interval
        for w in self.live_workers:
            self._last_heartbeat[w] = self.sim.now
        self.call_later(check_interval, self._check_heartbeats)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        # logical inbound control messages (retransmit duplicates are
        # already consumed by the reliable channel; acks never reach here)
        self.metrics.incr("controller.messages_in")
        if type(msg) in _STEADY_IN:
            self.metrics.incr("controller.steady_messages_in")
        if msg.rel_seq is not None:
            self._handled_seq[msg.rel_src] = msg.rel_seq
        if isinstance(msg, P.CommandComplete):
            self._on_command_complete(msg)
        elif isinstance(msg, P.CommandCompleteBatch):
            self._on_command_complete_batch(msg)
        elif isinstance(msg, P.InstanceComplete):
            self._on_instance_complete(msg)
        elif isinstance(msg, P.SubmitBlock):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                self._on_submit_block(ctx, msg)
        elif isinstance(msg, P.InstantiateBlock):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                self._on_instantiate_block(ctx, msg)
        elif isinstance(msg, P.InstantiateWindow):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                self._on_instantiate_window(ctx, msg)
        elif isinstance(msg, P.WindowSummary):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                ctx.policy.on_window_summary(msg)
        elif isinstance(msg, P.ShardWindowSummary):
            # orphan guard first: a released job's shards may still have
            # aggregates in flight — drop them whole, never fold rows
            # into a namespace that no longer exists
            ctx = self._ctx_of(msg)
            if ctx is not None:
                for summary in msg.summaries:
                    self._fold_or_park_summary(msg.job_id, summary)
        elif isinstance(msg, P.DefineObjects):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                self._on_define_objects(ctx, msg)
        elif isinstance(msg, P.UndefineObjects):
            ctx = self._ctx_of(msg)
            if ctx is not None:
                self._on_undefine_objects(ctx, msg)
        elif isinstance(msg, P.Heartbeat):
            self._last_heartbeat[msg.worker_id] = self.sim.now
        elif isinstance(msg, P.CheckpointAck):
            self._on_checkpoint_ack(msg)
        elif isinstance(msg, P.HaltAck):
            self._on_halt_ack(msg)
        elif isinstance(msg, P.LoadAck):
            self._on_load_ack(msg)
        elif isinstance(msg, P.ManagerDirective):
            msg.action(self)
        else:
            raise TypeError(f"controller got unexpected message {msg!r}")
        if self._barrier_summaries:
            # the message above may have been the last direct message a
            # parked shard-relayed summary was stamped against
            self._replay_barrier_summaries()

    def _fold_or_park_summary(self, job_id: int,
                              summary: P.WindowSummary) -> None:
        """Fold a shard-relayed per-worker summary, or park it until the
        worker's direct stream catches up to ``ctrl_seq`` (the reverse
        causal barrier — see ``_barrier_summaries``)."""
        worker = self.workers.get(summary.worker_id)
        if (worker is not None
                and summary.ctrl_seq > self._handled_seq.get(worker.name, 0)):
            self._barrier_summaries.append((job_id, summary))
            self.metrics.incr("self_schedule.summary_barrier_deferrals")
            return
        ctx = self.jobs.get(job_id)
        if ctx is not None:
            ctx.policy.on_window_summary(summary)

    def _summary_barrier_met(self, summary: P.WindowSummary) -> bool:
        worker = self.workers.get(summary.worker_id)
        if worker is None or summary.worker_id in self._failed_workers:
            # the direct stream will never catch up; release the summary
            # and let the policy's stale-window guards judge it
            return True
        return summary.ctrl_seq <= self._handled_seq.get(worker.name, 0)

    def _replay_barrier_summaries(self) -> None:
        ready = [(j, s) for j, s in self._barrier_summaries
                 if self._summary_barrier_met(s)]
        if not ready:
            return
        self._barrier_summaries = [
            (j, s) for j, s in self._barrier_summaries
            if not self._summary_barrier_met(s)]
        for job_id, summary in ready:
            ctx = self.jobs.get(job_id)
            if ctx is not None:  # released while parked: drop whole
                ctx.policy.on_window_summary(summary)

    # ------------------------------------------------------------------
    # Object definition
    # ------------------------------------------------------------------
    def _on_define_objects(self, ctx: JobContext,
                           msg: P.DefineObjects) -> None:
        ctx.object_sizes_cache = None
        per_worker: Dict[int, List[int]] = {}
        for oid, variable, partition, size, home in msg.objects:
            goid = ctx.goid(oid)
            obj = LogicalObject(goid, variable, partition, size)
            worker = ctx.placement.place(goid, home)
            ctx.directory.register(obj, worker)
            per_worker.setdefault(worker, []).append(goid)
        self.charge(self.costs.message_handling * max(1, len(msg.objects) // 64))
        for worker, oids in per_worker.items():
            self.send_reliable(self.workers[worker], P.CreateObjects(oids))
        self.send_reliable(ctx.driver, P.ObjectsReady())

    def _on_undefine_objects(self, ctx: JobContext,
                             msg: P.UndefineObjects) -> None:
        """Destroy logical objects everywhere (data commands, §3.4).

        Installed templates referencing the objects become invalid; the
        driver is responsible for only undefining objects its remaining
        blocks no longer touch (as in the paper, where the driver owns
        the data lifecycle).
        """
        self.charge(self.costs.message_handling)
        ctx.object_sizes_cache = None
        per_worker: Dict[int, List[int]] = {}
        for oid in msg.oids:
            goid = ctx.goid(oid)
            if goid not in ctx.directory:
                continue
            for holders in [ctx.directory._holders.get(goid, {})]:
                for worker in holders:
                    per_worker.setdefault(worker, []).append(goid)
            ctx.directory.unregister(goid)
            ctx.holder_cids.pop(goid, None)
        for worker, oids in per_worker.items():
            if worker in self.live_workers:
                self.send_reliable(self.workers[worker], P.DestroyObjects(oids))
        self.send_reliable(ctx.driver, P.ObjectsReady())

    def object_sizes(self, ctx: Optional[JobContext] = None) -> Dict[int, int]:
        # sizes are fixed at definition, so the map only changes when
        # objects are defined or undefined (which drop the cache)
        if ctx is None:
            ctx = self._job0
        if ctx.object_sizes_cache is None:
            ctx.object_sizes_cache = {
                obj.oid: obj.size_bytes for obj in ctx.directory.objects()
            }
        return ctx.object_sizes_cache

    # ------------------------------------------------------------------
    # Central scheduling path
    # ------------------------------------------------------------------
    def _assign_worker(self, ctx: Optional[JobContext] = None,
                       read: Tuple[int, ...] = (),
                       write: Tuple[int, ...] = ()) -> int:
        """Anchor a task at the home of its first written (or read) object."""
        if ctx is None:
            ctx = self._job0
        anchor = write[0] if write else (read[0] if read else None)
        if anchor is None:
            return min(self.live_workers)
        try:
            return ctx.placement.home(anchor)
        except KeyError:
            raise KeyError(
                f"job {ctx.job_id}: cannot place a task touching unknown "
                f"object id {ctx.local_oid(anchor)} (global id {anchor}); "
                f"the job never defined it"
            ) from None

    def _alloc_cids(self, n: int) -> int:
        base = self._next_cid
        self._next_cid += n
        return base

    def _alloc_window_id(self) -> int:
        wid = self._next_window
        self._next_window += 1
        return wid

    def _alloc_patch_id(self) -> int:
        """Patch ids are controller-global: a worker's patch cache is keyed
        by bare patch id, so ids from different jobs must never collide."""
        pid = self._next_patch_id
        self._next_patch_id += 1
        return pid

    def _dispatch(self, run: _BlockRun, cmd: Command, report: bool = False) -> None:
        run.outstanding += 1
        buffer = self._dispatch_buffer
        if buffer is not None:
            lst = buffer.get(cmd.worker)
            if lst is None:
                lst = buffer[cmd.worker] = []
            lst.append((cmd, report))
            return
        self.send_reliable(self.workers[cmd.worker],
                  P.DispatchCommand(cmd, run.seq, report))

    def _begin_dispatch_batch(self) -> None:
        self._dispatch_buffer = {}

    def _flush_dispatch_batch(self, run: _BlockRun) -> None:
        """Send buffered dispatches, one coalesced message per worker.

        Workers flush in first-dispatch order (deterministic: plain dict
        insertion order), and each worker's command list preserves its
        dispatch order, so worker-side conflict tracking resolves the
        same dependencies as one-message-per-command dispatch.
        """
        buffer, self._dispatch_buffer = self._dispatch_buffer, None
        for worker, items in buffer.items():
            if len(items) == 1:
                cmd, report = items[0]
                msg = P.DispatchCommand(cmd, run.seq, report)
            else:
                msg = P.DispatchCommandBatch(items, run.seq)
            self.send_reliable(self.workers[worker], msg)

    def _schedule_task_centrally(
        self,
        run: _BlockRun,
        function: str,
        read: Tuple[int, ...],
        write: Tuple[int, ...],
        worker: int,
        params: Any,
        returns_rev: Dict[int, str],
    ) -> None:
        """Dependency analysis + copy insertion + dispatch for one task.

        Copies are inserted when the task reads an object whose latest
        version is not resident on its worker; the directory and the
        holder-command map are updated as the plan is built.
        """
        ctx = run.ctx
        sizes = None
        directory = ctx.directory
        holders_d, latest_d = directory.freshness_maps()
        for oid in read:
            if holders_d[oid].get(worker, -1) != latest_d[oid]:
                src = min(directory.holders_of_latest(oid))
                if sizes is None:
                    sizes = self.object_sizes(ctx)
                send_cid = self._alloc_cids(1)
                recv_cid = self._alloc_cids(1)
                send, recv = make_copy_pair(
                    send_cid, recv_cid, oid, src, worker,
                    size_bytes=sizes.get(oid, 0),
                )
                self._dispatch(run, send)
                self._dispatch(run, recv)
                directory.record_copy(oid, worker)
                holders = ctx.holder_cids.get(oid)
                if holders is None:
                    holders = ctx.holder_cids[oid] = {}
                holders[worker] = recv_cid
        cid = self._alloc_cids(1)
        task = make_task(cid, worker, function, read, write, params=params)
        report = False
        for oid in write:
            directory.record_write(oid, worker)
            ctx.holder_cids[oid] = {worker: cid}
            name = returns_rev.get(oid)
            if name is not None:
                run.return_cids[cid] = (name, oid)
                report = True
        self._dispatch(run, task, report=report)

    def _run_block_centrally(
        self,
        ctx: JobContext,
        block: BlockSpec,
        params: Dict[str, Any],
        capture: bool,
        receive_cost: bool,
        seq: Optional[int] = None,
        request_id: int = 0,
    ) -> _BlockRun:
        run = self._new_run(ctx, block.block_id, block.num_tasks, "central",
                            seq, request_id)
        if capture and block.block_id in ctx.templates:
            capture = False  # already installed (e.g. resubmitted after recovery)
        returns_rev = {oid: name for name, oid in block.returns.items()}
        assignment: List[int] = []
        # the per-task cost is constant across the block, and nothing in the
        # loop observes _charged (dispatches stay buffered until the flush),
        # so the charge folds into a local accumulator — same float-addition
        # sequence as per-task self.charge(cost), one attribute store
        cost = self.costs.central_schedule_per_task
        if receive_cost:
            cost += self.costs.central_receive_per_task
        if capture:
            cost += self.costs.install_controller_template_per_task
        schedule = self._schedule_task_centrally
        assign = self._assign_worker
        charged = self._charged
        self._begin_dispatch_batch()
        for _stage_name, task in block.all_tasks():
            worker = assign(ctx, task.read, task.write)
            assignment.append(worker)
            charged += cost
            task_params = params.get(task.param_slot) if task.param_slot else None
            schedule(run, task.function, task.read, task.write, worker,
                     task_params, returns_rev)
        self._charged = charged
        self._flush_dispatch_batch(run)
        ctx.metrics.incr("tasks_scheduled", block.num_tasks)
        if capture:
            template = ControllerTemplate.from_block(block, assignment)
            ctx.templates[block.block_id] = template
            ctx.phase[block.block_id] = self.PHASE_CT_READY
            ctx.current_version[block.block_id] = 0
            ctx.assignments[(block.block_id, 0)] = list(assignment)
            ctx.metrics.incr("controller_templates_installed")
        # Central execution leaves template validation state unknown.
        ctx.validation_state.invalidate()
        ctx.prev_block_key = ("central", block.block_id)
        if self._trace is not None:
            self._trace_decided(run)
        return run

    # ------------------------------------------------------------------
    # Driver block submission (central / capture path)
    # ------------------------------------------------------------------
    def _duplicate_request(self, ctx: JobContext, request_id: int) -> bool:
        """Idempotent receive: has this driver request already run?

        The reliable channel already deduplicates redeliveries; this guard
        protects the object-version map even if a duplicate slips past the
        transport (e.g. a driver resubmitting after a lost completion).
        Request id 0 marks directly injected traffic (tests, benchmarks)
        and is never deduplicated.
        """
        if not request_id:
            return False
        if request_id in ctx.seen_requests:
            ctx.metrics.incr("protocol.stale_discards")
            return True
        ctx.seen_requests.add(request_id)
        return False

    def _on_submit_block(self, ctx: JobContext, msg: P.SubmitBlock) -> None:
        self.charge(self.costs.message_handling)
        if self._duplicate_request(ctx, msg.request_id):
            return
        block = ctx.translate_block(msg.block)
        item = ("submit", block, msg.params, msg.template_start,
                msg.request_id)
        if self._gate_dispatch(ctx, item, block.num_tasks):
            return
        ctx.policy.submit_central(block, msg.params, msg.template_start,
                                  msg.request_id)

    # ------------------------------------------------------------------
    # Admission gate: fair-share dispatch behind a concurrency cap
    # ------------------------------------------------------------------
    def _gate_dispatch(self, ctx: JobContext, item: Tuple,
                       num_tasks: int) -> bool:
        """Queue ``item`` when the in-flight cap is reached (or a queue
        already exists — FIFO within a job is part of the contract).
        Returns True when the item was deferred. Runs after request
        deduplication, so a queued block is never enqueued twice."""
        cap = self.dispatch_inflight_cap
        if cap is None:
            return False
        if len(self.runs) < cap and not self._dispatch_queue:
            return False
        self._dispatch_queue.push(ctx.job_id, ctx.weight, item,
                                  cost=max(1, num_tasks))
        self.metrics.incr("dispatch.queued")
        return True

    def _drain_dispatch_queue(self) -> None:
        cap = self.dispatch_inflight_cap
        if cap is None:
            return
        while self._dispatch_queue and len(self.runs) < cap:
            job_id, item = self._dispatch_queue.pop()
            ctx = self.jobs.get(job_id)
            if ctx is None:
                continue  # released after queueing
            if item[0] == "submit":
                _kind, block, params, template_start, request_id = item
                ctx.policy.submit_central(block, params, template_start,
                                          request_id)
            elif item[0] == "window":
                ctx.policy.instantiate_window(item[1])
            else:
                ctx.policy.instantiate(item[1])

    # ------------------------------------------------------------------
    # Template instantiation path
    # ------------------------------------------------------------------
    def _on_instantiate_block(self, ctx: JobContext,
                              msg: P.InstantiateBlock) -> None:
        self.charge(self.costs.message_handling)
        if self._duplicate_request(ctx, msg.request_id):
            return
        if self._gate_dispatch(ctx, ("instantiate", msg), msg.num_tasks):
            return
        ctx.policy.instantiate(msg)

    def _on_instantiate_window(self, ctx: JobContext,
                               msg: P.InstantiateWindow) -> None:
        """A decentralized driver's window of instantiations.

        Windows pass through :meth:`_gate_dispatch` like every other
        submission: FIFO within a job is part of the contract, and a
        window that skipped the queue would overtake the job's own gated
        capture ``SubmitBlock`` and instantiate a template that does not
        exist yet (seen with a wait-queued decentralized job admitted
        into a busy serve cluster). The window's queue cost is its total
        task count, so fair-share weighting sees it exactly as it would
        the per-instance messages it replaces.
        """
        self.charge(self.costs.message_handling)
        total = msg.num_tasks * max(1, len(msg.entries))
        if self._gate_dispatch(ctx, ("window", msg), total):
            return
        ctx.policy.instantiate_window(msg)

    def _process_instantiate(self, ctx: JobContext,
                             msg: P.InstantiateBlock) -> None:
        block_id = msg.block_id
        template = ctx.templates.get(block_id)
        if template is None:
            raise KeyError(
                f"job {ctx.job_id}: no controller template installed for "
                f"block {block_id!r} (installed blocks: "
                f"{sorted(ctx.templates)})"
            )
        phase = ctx.phase[block_id]
        n = template.num_tasks
        # parameter fill of the controller template (Table 2, row 1).
        # Pooled: the instance is a transient view consumed inside this
        # handler, so one object per template suffices.
        self.charge(self.costs.instantiate_controller_template_per_task * n)
        instance = template.instantiate_pooled(msg.task_id_base, msg.params)
        ctx.metrics.incr("template_instantiations")

        if phase == self.PHASE_CT_READY:
            # generate the controller half of the worker templates while
            # dispatching this iteration centrally (Fig. 9, iteration 11)
            c0 = self._charged
            self.charge(
                self.costs.install_worker_template_controller_per_task * n)
            version = ctx.current_version[block_id]
            wts = generate_worker_templates(
                template, self.object_sizes(ctx), version)
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "template.generate",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id, **wts.stats())
            ctx.worker_templates[wts.key] = wts
            ctx.phase[block_id] = self.PHASE_WT_GENERATED
            self._dispatch_from_template(ctx, instance, msg.request_id)
            return
        if phase == self.PHASE_WT_GENERATED:
            # ship worker halves while dispatching centrally (iteration 12)
            version = ctx.current_version[block_id]
            wts = ctx.worker_templates[(block_id, version)]
            self._install_worker_halves(ctx, wts)
            ctx.phase[block_id] = self.PHASE_WT_INSTALLED
            self._dispatch_from_template(ctx, instance, msg.request_id)
            return

        # steady state (iteration 13+): validate, patch, instantiate
        version = ctx.current_version[block_id]
        wts = ctx.worker_templates[(block_id, version)]
        self._install_worker_halves(ctx, wts)  # no-op for already-installed workers
        c0 = self._charged
        if ctx.validation_state.auto_validates(wts.key):
            self.charge(
                self.costs.instantiate_worker_template_auto_per_task * n)
            ctx.metrics.incr("auto_validations")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "validate.auto",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id)
        else:
            self.charge(
                self.costs.instantiate_worker_template_validate_per_task * n)
            ctx.metrics.incr("full_validations")
            violations = full_validate(wts, ctx.directory)
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "validate.full",
                    self._handler_start + c0, self._charged - c0,
                    block_id=block_id, violations=len(violations))
            if violations:
                self._apply_patch(ctx, wts, violations)
        self._instantiate_worker_templates(ctx, wts, instance, msg.params,
                                           msg.request_id)

    def _dispatch_from_template(self, ctx: JobContext, instance,
                                request_id: int = 0) -> None:
        """Centrally dispatch a controller-template instance (phases 1–2)."""
        template = instance.template
        run = self._new_run(ctx, template.block_id, template.num_tasks,
                            "central", request_id=request_id)
        returns_rev = {oid: name for name, oid in template.returns.items()}
        self._begin_dispatch_batch()
        for entry in template.entries:
            self.charge(self.costs.central_schedule_per_task)
            self._schedule_task_centrally(
                run, entry.function, entry.read, entry.write, entry.worker,
                instance.param_of(entry), returns_rev,
            )
        self._flush_dispatch_batch(run)
        ctx.metrics.incr("tasks_scheduled", template.num_tasks)
        ctx.validation_state.invalidate()
        ctx.prev_block_key = ("central", template.block_id)
        if self._trace is not None:
            self._trace_decided(run)

    def _install_worker_halves(self, ctx: JobContext,
                               wts: WorkerTemplateSet) -> None:
        for worker in wts.workers():
            if worker in wts.installed_on or worker not in self.live_workers:
                continue
            entries = wts.entries[worker]
            reports = [
                e.index for e in entries if e is not None and e.report
            ]
            self.send_reliable(self.workers[worker], P.InstallWorkerTemplate(
                wts.block_id, wts.version, entries, reports,
                job_id=ctx.job_id,
            ))
            wts.installed_on.add(worker)
            if self._trace is not None:
                self._trace.instant(self.name, "template", "template.ship",
                                    block_id=wts.block_id,
                                    version=wts.version, worker=worker,
                                    entries=len(entries))
            # a fresh install ships the controller half verbatim, which
            # already contains any planned edits — drop them so they are
            # not applied a second time at instantiation
            pending = ctx.pending_edits.get(wts.key)
            if pending:
                pending.pop(worker, None)

    def _instantiate_worker_templates(
        self,
        ctx: JobContext,
        wts: WorkerTemplateSet,
        instance,
        params: Dict[str, Any],
        request_id: int = 0,
    ) -> None:
        """The fast path: one message per worker (§2.2: n+1 total)."""
        template = instance.template
        run = self._new_run(ctx, template.block_id, template.num_tasks,
                            "template", request_id=request_id)
        run.instance_id = self._next_instance
        self._next_instance += 1
        edits_by_worker = ctx.pending_edits.pop(wts.key, {})
        for worker in wts.workers():
            entries = wts.entries[worker]
            cid_base = self._alloc_cids(len(entries))
            msg = P.InstantiateWorkerTemplate(
                wts.block_id, wts.version, run.instance_id, cid_base,
                params, run.seq, edits=edits_by_worker.get(worker),
                job_id=ctx.job_id,
            )
            msg.size_bytes = (P.TASK_ID_BYTES * len(entries)
                              + P.PARAM_BLOCK_BYTES)
            self.send_reliable(self.workers[worker], msg)
            run.expected_workers.add(worker)
        run.outstanding = len(run.expected_workers)
        for name, oid in wts.returns.items():
            # values arrive inside InstanceComplete messages keyed by oid
            run.return_cids[oid] = (name, oid)
        wts.delta.apply(ctx.directory)
        ctx.validation_state.note_instantiation(wts.key)
        ctx.prev_block_key = wts.key
        ctx.metrics.incr("tasks_scheduled", template.num_tasks)
        if self._trace is not None:
            self._trace_decided(run)

    # ------------------------------------------------------------------
    # Patching (§4.2)
    # ------------------------------------------------------------------
    def _apply_patch(self, ctx: JobContext, wts: WorkerTemplateSet,
                     violations: List[Tuple[int, int]]) -> None:
        instance_id = self._next_instance
        self._next_instance += 1
        c0 = self._charged
        cached = ctx.patch_cache.lookup(
            ctx.prev_block_key, wts.key, violations, ctx.directory)
        if cached is not None:
            self.charge(self.costs.patch_cache_invoke)
            patch = cached
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send_reliable(self.workers[worker], P.InstantiatePatch(
                    patch.patch_id, cid_base, instance_id))
            ctx.metrics.incr("patch_cache_hits")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "patch.cache_hit",
                    self._handler_start + c0, self._charged - c0,
                    patch_id=patch.patch_id, num_copies=patch.num_copies())
        else:
            patch = build_patch(violations, ctx.directory,
                                self.object_sizes(ctx),
                                patch_id=self._alloc_patch_id())
            self.charge(self.costs.patch_compute_per_copy * patch.num_copies())
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send_reliable(self.workers[worker], P.InstallPatch(
                    patch.patch_id, patch.entries[worker], cid_base,
                    instance_id))
            ctx.patch_cache.store(ctx.prev_block_key, wts.key, patch)
            ctx.metrics.incr("patches_computed")
            if self._trace is not None:
                self._trace.span(
                    self.name, "template", "patch.compute",
                    self._handler_start + c0, self._charged - c0,
                    patch_id=patch.patch_id, num_copies=patch.num_copies())
        patch.apply_to_directory(ctx.directory)
        ctx.metrics.incr("patch_copies", patch.num_copies())

    # ------------------------------------------------------------------
    # Partition-map epochs (decentralized mode, DESIGN.md §14)
    # ------------------------------------------------------------------
    def _decentralized_active(self) -> bool:
        """Any job scheduling through self-schedule windows — both the
        decentralized and sharded modes need epoch broadcasts."""
        return any(ctx.policy is not None
                   and ctx.policy.mode in ("decentralized", "sharded")
                   for ctx in self.jobs.values())

    def bump_partition_epoch(self) -> None:
        """Advance the partition-map epoch after a map change.

        Broadcast only while a decentralized job is registered: a worker
        holding a self-schedule grant under an older epoch stalls at its
        next block boundary and waits for a re-grant. Centralized-only
        clusters see zero extra traffic (the counter bump is free).
        """
        self.pm_epoch += 1
        if self._decentralized_active():
            for worker in sorted(self.live_workers):
                self.send_reliable(self.workers[worker],
                                   P.EpochUpdate(self.pm_epoch))

    def _require_quiesced(self, ctx: Optional[JobContext] = None) -> None:
        """Partition-map changes need quiesced jobs (no grants in flight).

        Decentralized workers schedule from granted state the controller
        cannot retract mid-window; the window boundary (every
        ``Driver.window_size`` iterations) is the next safe point.
        """
        targets = [ctx] if ctx is not None else list(self.jobs.values())
        for j in targets:
            if j.policy is not None and j.policy.outstanding_grants():
                raise RuntimeError(
                    f"job {j.job_id} has a self-schedule window in "
                    f"flight; partition-map changes require a quiesced "
                    f"job — wait for the window boundary (the rebalancer "
                    f"does this automatically)")

    # ------------------------------------------------------------------
    # Dynamic scheduling: edits, eviction, restore (§2.3, Fig. 9/10)
    # ------------------------------------------------------------------
    def migrate_tasks(self, block_id: str, moves: List[Tuple[int, int]],
                      job_id: int = 0) -> str:
        """Move tasks (by controller-template entry index) to new workers.

        Small changes become template edits; large ones re-install. Before
        worker templates exist the block is still dispatched centrally from
        the controller template, so updating the assignment is the whole
        migration ("reassign"). Returns which mechanism was used
        ("edits", "reinstall", or "reassign").
        """
        ctx = self.jobs.get(job_id)
        if ctx is None:
            raise KeyError(
                f"cannot migrate tasks of block {block_id!r}: job {job_id} "
                f"is not registered (live jobs: {sorted(self.jobs)})"
            )
        template = ctx.templates.get(block_id)
        if template is None:
            raise KeyError(
                f"job {job_id}: cannot migrate tasks of block {block_id!r}: "
                f"no controller template captured yet (captured blocks: "
                f"{sorted(ctx.templates)})"
            )
        self._require_quiesced(ctx)
        version = ctx.current_version.get(block_id, 0)
        wts = ctx.worker_templates.get((block_id, version))
        if wts is None or ctx.phase.get(block_id, 0) < self.PHASE_WT_GENERATED:
            for ct_index, dst in moves:
                template.reassign(ct_index, dst)
            if (block_id, version) in ctx.assignments:
                ctx.assignments[(block_id, version)] = [
                    e.worker for e in template.entries
                ]
            ctx.metrics.incr("migrations_reassigned")
            self.bump_partition_epoch()
            return "reassign"
        if len(moves) <= self.edit_threshold * template.num_tasks:
            edits, total_ops, relocations = plan_migrations(
                wts, moves, self.object_sizes(ctx))
            self.charge(self.costs.edit_per_task * total_ops)
            pending = ctx.pending_edits.setdefault(wts.key, {})
            for worker, ops in edits.items():
                pending.setdefault(worker, []).extend(ops)
            for ct_index, dst in moves:
                template.reassign(ct_index, dst)
            # one-time data moves for relocated sole-reader inputs: the
            # objects' homes follow the tasks; stale replicas remain behind
            stale = [(dst, oid) for oid, dst in relocations
                     if not ctx.directory.is_fresh(oid, dst)]
            if stale:
                patch = build_patch(stale, ctx.directory,
                                    self.object_sizes(ctx),
                                    patch_id=self._alloc_patch_id())
                instance_id = self._next_instance
                self._next_instance += 1
                for worker in patch.workers():
                    cid_base = self._alloc_cids(patch.entry_count(worker))
                    self.send_reliable(self.workers[worker], P.InstallPatch(
                        patch.patch_id, patch.entries[worker], cid_base,
                        instance_id))
                patch.apply_to_directory(ctx.directory)
                ctx.metrics.incr("relocation_copies", len(stale))
            for oid, dst in relocations:
                ctx.placement.migrate(oid, dst)
            ctx.metrics.incr("edits_applied", total_ops)
            self.bump_partition_epoch()
            return "edits"
        for ct_index, dst in moves:
            template.reassign(ct_index, dst)
        self._regenerate_worker_templates(ctx, block_id)
        self.bump_partition_epoch()
        return "reinstall"

    def _drop_pending_edits(self, ctx: JobContext, block_id: str) -> None:
        """Forget queued-but-unshipped worker-half edits for ``block_id``.

        Called whenever a regeneration, eviction, or restore supersedes the
        assignment the edits were planned against. ``plan_migration``
        applies edits to the *controller* half immediately, so a cached
        :class:`WorkerTemplateSet` with dropped pending ops can never be
        brought back in sync with the pre-edit halves workers already hold
        — drop that cached version too, and let :meth:`restore_workers`
        fall back to a regeneration if a snapshot still points at it.
        """
        for key in [k for k in ctx.pending_edits if k[0] == block_id]:
            del ctx.pending_edits[key]
            wts = ctx.worker_templates.get(key)
            if wts is not None and wts.installed_on:
                del ctx.worker_templates[key]
                ctx.divergent_wts.add(key)

    def _regenerate_worker_templates(self, ctx: JobContext,
                                     block_id: str) -> None:
        self._drop_pending_edits(ctx, block_id)
        template = ctx.templates[block_id]
        template.assignment_version += 1
        version = template.assignment_version
        ctx.current_version[block_id] = version
        c0 = self._charged
        self.charge(self.costs.install_worker_template_controller_per_task
                    * template.num_tasks)
        wts = generate_worker_templates(
            template, self.object_sizes(ctx), version)
        if self._trace is not None:
            self._trace.span(
                self.name, "template", "template.generate",
                self._handler_start + c0, self._charged - c0,
                block_id=block_id, version=version, **wts.stats())
        ctx.worker_templates[wts.key] = wts
        ctx.assignments[(block_id, version)] = [
            e.worker for e in template.entries
        ]
        ctx.phase[block_id] = self.PHASE_WT_GENERATED
        ctx.validation_state.invalidate()
        ctx.metrics.incr("worker_template_regenerations")

    def evict_workers(self, evicted: List[int]) -> None:
        """A cluster manager revoked workers: migrate their objects and
        tasks to the survivors and regenerate worker templates (Fig. 9).

        Re-homed objects are drained through the same ``build_patch``
        relocation path :meth:`migrate_tasks` uses: the survivors must
        physically hold the latest version of every object they now home,
        because the revoked workers stop being schedulable the moment this
        returns. The drain itself may copy *from* an evicted worker (it is
        still reachable while the directive runs); afterwards no control
        message targets an evicted worker until :meth:`restore_workers`.
        Every registered job is drained — eviction is a cluster event, not
        a job event.
        """
        self._require_quiesced()
        evicted_set = set(evicted)
        # every precondition is checked before any state mutates: a failed
        # eviction must leave placements, templates, and the live set
        # exactly as they were (no partially drained cluster to unpick)
        unknown = sorted(evicted_set - self.live_workers)
        if unknown:
            raise RuntimeError(
                f"cannot evict workers {unknown}: not in the live set "
                f"{sorted(self.live_workers)} (never attached, already "
                f"evicted, or failed); no state was changed")
        survivors = sorted(self.live_workers - evicted_set)
        if not survivors:
            raise RuntimeError(
                f"cannot evict every worker: evicting "
                f"{sorted(evicted_set)} would leave the live set empty "
                f"with nowhere to re-home their objects and tasks; no "
                f"state was changed")
        if len(survivors) < self.min_live_workers:
            raise RuntimeError(
                f"cannot evict workers {sorted(evicted_set)}: "
                f"{len(survivors)} survivor(s) {survivors} would fall "
                f"below the minimum live worker count "
                f"{self.min_live_workers}; no state was changed")
        self.live_workers -= evicted_set
        # worker-set churn is explicit: load signals for departed workers
        # die with them, so no placement or scaling policy ever books
        # load onto a dead worker, and min_samples warmup-gates arrivals
        for w in sorted(evicted_set):
            self.load_tracker.drop_worker(w)
            if self.rebalancer is not None:
                self.rebalancer.drop_worker(w)
        for job_id in sorted(self.jobs):
            ctx = self.jobs[job_id]
            rr = 0
            stale: List[Tuple[int, int]] = []
            for oid in self._placed_objects(ctx):
                if ctx.placement.home(oid) in evicted_set:
                    dst = survivors[rr % len(survivors)]
                    rr += 1
                    ctx.placement.migrate(oid, dst)
                    if not ctx.directory.is_fresh(oid, dst):
                        stale.append((dst, oid))
            if stale:
                patch = build_patch(stale, ctx.directory,
                                    self.object_sizes(ctx),
                                    patch_id=self._alloc_patch_id())
                instance_id = self._next_instance
                self._next_instance += 1
                for worker in patch.workers():
                    cid_base = self._alloc_cids(patch.entry_count(worker))
                    self.send_reliable(self.workers[worker], P.InstallPatch(
                        patch.patch_id, patch.entries[worker], cid_base,
                        instance_id))
                patch.apply_to_directory(ctx.directory)
                ctx.metrics.incr("relocation_copies", len(stale))
            for block_id, template in ctx.templates.items():
                # a block with queued edits must regenerate even if none of
                # its template entries sit on an evicted worker: the queued
                # ops (or the edited halves they target) may address evicted
                # peers, and regeneration retires them (_drop_pending_edits)
                changed = any(key[0] == block_id
                              for key in ctx.pending_edits)
                for entry in template.entries:
                    if entry.worker in evicted_set:
                        entry.worker = self._assign_worker(
                            ctx, entry.read, entry.write)
                        changed = True
                if changed and ctx.phase.get(block_id, 0) >= self.PHASE_CT_READY:
                    self._regenerate_worker_templates(ctx, block_id)
            ctx.validation_state.invalidate()
        self.bump_partition_epoch()

    def on_worker_dead(self, worker_id: int) -> None:
        """A worker died ungracefully (crash fault, forced removal).

        Unlike :meth:`evict_workers` — which requires quiesced jobs —
        death cannot wait for a window boundary: an outstanding
        self-schedule grant expecting the dead worker would never drain,
        wedging every future partition-map change. So the order is:
        reclaim the dead worker's granted-but-unfinished window
        participation from every job's policy (making the jobs
        quiescable), stop retransmitting to it, then re-home its objects
        and tasks through the normal eviction path. Data the dead worker
        solely held is *not* resurrected — checkpoint recovery is the
        data-loss story; this call restores schedulability.
        """
        if worker_id not in self.live_workers:
            return
        for job_id in sorted(self.jobs):
            ctx = self.jobs[job_id]
            if ctx.policy is not None:
                ctx.policy.drop_worker(worker_id)
        self._failed_workers.add(worker_id)
        self.draining_workers.discard(worker_id)  # death outruns the drain
        self.evict_workers([worker_id])
        if self._barrier_summaries:
            # summaries parked behind the dead worker's stream unblock now
            self._replay_barrier_summaries()

    def add_worker(self, worker_id: int, actor: Actor) -> None:
        """A provisioned worker finished cold start: join the live set.

        The worker becomes schedulable for every job — future object
        definitions may place on it, and :meth:`migrate_tasks` may edit
        tasks onto it (worker template halves ship lazily on first use
        via ``_install_worker_halves``). Joining moves nothing by
        itself: an autoscaler that adds a worker and never migrates work
        onto it leaves the run's dataflow untouched.
        """
        if worker_id in self.live_workers:
            raise ValueError(f"worker {worker_id} is already live")
        self.workers[worker_id] = actor
        self.live_workers.add(worker_id)
        self._failed_workers.discard(worker_id)
        self._last_heartbeat[worker_id] = self.sim.now
        for ctx in self.jobs.values():
            order = ctx.placement.workers
            if worker_id not in order:
                order.append(worker_id)
                ctx.placement.set_workers(order)
        # late joiners missed earlier epoch broadcasts; sync before any
        # window is granted to them or they would stall immediately
        if self._decentralized_active() and self.pm_epoch:
            self.send_reliable(actor, P.EpochUpdate(self.pm_epoch))
        self.metrics.incr("scale.workers_added")

    def restore_workers(self, restored: List[int],
                        placement_snapshot: Dict[int, int],
                        version_snapshot: Dict[str, int]) -> None:
        """Workers returned: revert to the cached templates for the old
        assignment; the next instantiation validates them (Fig. 9).

        Snapshots are per-namespace: this restores job 0 (the legacy
        dynamic-scheduling experiments drive a single job). The restored
        workers rejoin the shared live set for every job.
        """
        ctx = self._job0
        self._require_quiesced()
        self.live_workers |= set(restored)
        for oid, home in placement_snapshot.items():
            ctx.placement.migrate(oid, home)
        for block_id, version in version_snapshot.items():
            # queued edits were planned against assignments this restore is
            # undoing — shipping them later would corrupt installed halves
            self._drop_pending_edits(ctx, block_id)
            template = ctx.templates[block_id]
            assignment = ctx.assignments[(block_id, version)]
            for entry, worker in zip(template.entries, assignment):
                entry.worker = worker
            ctx.current_version[block_id] = version
            if (block_id, version) in ctx.worker_templates:
                ctx.phase[block_id] = self.PHASE_WT_INSTALLED
            elif (block_id, version) in ctx.divergent_wts:
                # the cached set for this version was invalidated while it
                # had un-shipped edits; re-install instead of resurrecting
                # worker halves that no longer match the controller half
                self._regenerate_worker_templates(ctx, block_id)
            else:
                # worker templates were never generated for this version
                # (the block was still pre-WT at snapshot time); rejoin the
                # staircase so the next instantiation generates them fresh
                ctx.phase[block_id] = self.PHASE_CT_READY
        ctx.validation_state.invalidate()
        self.bump_partition_epoch()

    def snapshot_placement(self) -> Dict[int, int]:
        ctx = self._job0
        return {oid: ctx.placement.home(oid)
                for oid in self._placed_objects(ctx)}

    def snapshot_versions(self) -> Dict[str, int]:
        return dict(self._job0.current_version)

    def _placed_objects(self, ctx: JobContext):
        return [obj.oid for obj in ctx.directory.objects()]

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _new_run(self, ctx: JobContext, block_id: str, num_tasks: int,
                 mode: str, seq: Optional[int] = None,
                 request_id: int = 0) -> _BlockRun:
        if seq is None:
            seq = self._next_seq
            self._next_seq += 1
        run = _BlockRun(seq, block_id, num_tasks, mode, self.sim.now,
                        request_id, ctx=ctx)
        self.runs[seq] = run
        ctx.metrics.begin("block", self.sim.now, key=seq,
                          block_id=block_id, seq=seq, mode=mode,
                          num_tasks=num_tasks, request_id=request_id)
        if self._trace is not None:
            self._trace.run_begin(run.seq, block_id, mode, request_id,
                                  num_tasks, self._handler_start,
                                  job_id=ctx.job_id)
        return run

    def _trace_decided(self, run: _BlockRun) -> None:
        """Record the end of this run's scheduling decision (traced only).

        The decision ends when the handler's charged CPU elapses — the
        same instant the dispatch messages depart the controller.
        """
        self._trace.run_decided(run.seq, self._handler_start + self._charged)

    def _on_command_complete(self, msg: P.CommandComplete) -> None:
        self.charge(self.costs.controller_completion_per_task)
        self._complete_command(msg.worker_id, msg.cid, msg.block_seq,
                               msg.duration, msg.value)

    def _on_command_complete_batch(self, msg: P.CommandCompleteBatch) -> None:
        # the per-completion cost is charged per item: coalescing saves
        # messages and event overhead, not modeled controller work
        items = msg.items
        self.charge(self.costs.controller_completion_per_task * len(items))
        worker_id = msg.worker_id
        if type(self)._complete_command is not Controller._complete_command:
            # a subclass hooks per-command completion (the Spark baseline's
            # stage barrier) — keep the one-call-per-item contract for it
            for cid, block_seq, duration, value, _oid in items:
                self._complete_command(worker_id, cid, block_seq,
                                       duration, value)
            return
        # flat walk over the item array: the run lookup is hoisted per
        # block_seq group (batches overwhelmingly carry one run), and the
        # per-item fold inlines _complete_command body-for-body
        runs = self.runs
        run = None
        run_seq = None
        for cid, block_seq, duration, value, _oid in items:
            if block_seq != run_seq:
                run_seq = block_seq
                run = runs.get(block_seq)
            if run is None:
                continue  # dropped by recovery (or a released job)
            run.outstanding -= 1
            cbw = run.compute_by_worker
            cbw[worker_id] = cbw.get(worker_id, 0.0) + duration
            if cid in run.return_cids:
                name, _o = run.return_cids[cid]
                run.results[name] = value
            if run.outstanding == 0 and not run.open:
                self._finish_block(run)
                run = runs.get(block_seq)  # gone now; later items drop

    def _complete_command(self, worker_id: int, cid: int, block_seq: int,
                          duration: float, value: Any) -> None:
        run = self.runs.get(block_seq)
        if run is None:
            return  # dropped by recovery (or a released job)
        run.outstanding -= 1
        run.compute_by_worker[worker_id] = (
            run.compute_by_worker.get(worker_id, 0.0) + duration)
        if cid in run.return_cids:
            name, _oid = run.return_cids[cid]
            run.results[name] = value
        if run.outstanding == 0 and not run.open:
            self._finish_block(run)

    def _on_instance_complete(self, msg: P.InstanceComplete) -> None:
        self.charge(self.costs.controller_block_completion)
        run = self.runs.get(msg.block_seq)
        if run is None:
            return
        run.outstanding -= 1
        run.compute_by_worker[msg.worker_id] = (
            run.compute_by_worker.get(msg.worker_id, 0.0) + msg.compute_time)
        if self.rebalancer is not None and msg.worker_id in self.live_workers:
            # pure observation: no charge, no metrics, no RNG — a run with
            # the rebalancer enabled but no skew stays bit-identical.
            # Departed workers are filtered: a straggling completion from
            # an already-evicted worker must not resurrect its EWMA entry
            self.rebalancer.observe_instance(
                run.ctx, msg.block_id, msg.version, msg.worker_id,
                msg.compute_time, msg.task_times)
        for oid, value in msg.values.items():
            if oid in run.return_cids:
                name, _oid = run.return_cids[oid]
                run.results[name] = value
        if run.outstanding == 0:
            self._finish_block(run)

    def _finish_block(self, run: _BlockRun) -> None:
        ctx = run.ctx
        del self.runs[run.seq]
        if self._trace is not None:
            self._trace.run_finish(run.seq)
        compute = 0.0
        if run.compute_by_worker:
            compute = max(run.compute_by_worker.values()) / self.slots_per_worker
        ctx.metrics.end("block", self.sim.now, key=run.seq,
                        compute=compute, results=dict(run.results))
        ctx.results_history.append((run.block_id, dict(run.results)))
        # pure bookkeeping for cross-job placement: dict folds only, no
        # charge, no RNG — the virtual timeline is untouched. Departed
        # workers are filtered so a run that straddled an eviction does
        # not resurrect the evicted worker's load signal
        for worker, compute_time in run.compute_by_worker.items():
            if worker in self.live_workers:
                self.load_tracker.observe(worker, compute_time, {})
        self.send_reliable(ctx.driver, P.BlockComplete(
            run.block_id, run.seq, dict(run.results), run.request_id))
        if (self.rebalancer is not None and run.mode == "template"
                and not self._recovering and not self._checkpointing
                and not (ctx.policy is not None
                         and ctx.policy.outstanding_grants())):
            # a mixed window's fallback runs must not move the partition
            # map while the same job's grant is in flight; the policy
            # rebalances at the window boundary instead
            self.rebalancer.maybe_rebalance(ctx, run.block_id)
        if ctx is self._job0:
            self._blocks_since_checkpoint += 1
            if (self.checkpoint_every is not None
                    and self._blocks_since_checkpoint >= self.checkpoint_every
                    and not self.runs and not self._checkpointing
                    and not self._recovering):
                self._start_checkpoint()
        self._drain_dispatch_queue()

    # ------------------------------------------------------------------
    # Checkpointing (§4.4) — job 0 (fault tolerance is driven by the
    # legacy single driver; serve mode does not enable it)
    # ------------------------------------------------------------------
    def _start_checkpoint(self) -> None:
        self._checkpointing = True
        self._blocks_since_checkpoint = 0
        checkpoint_id = self._next_checkpoint
        self._next_checkpoint += 1
        self._checkpoint_acks = set()
        self._checkpoint_snapshots[checkpoint_id] = (
            self._job0.directory.snapshot(),
            self.snapshot_placement(),
            list(self._job0.results_history),
        )
        for worker in self.live_workers:
            self.send_reliable(self.workers[worker], P.SaveCheckpoint(checkpoint_id))
        self._pending_checkpoint_id = checkpoint_id
        self.metrics.incr("checkpoints_started")

    def _on_checkpoint_ack(self, msg: P.CheckpointAck) -> None:
        if msg.checkpoint_id != getattr(self, "_pending_checkpoint_id", None):
            return
        self._checkpoint_acks.add(msg.worker_id)
        if self._checkpoint_acks >= self.live_workers:
            self._last_committed_checkpoint = msg.checkpoint_id
            self._checkpointing = False
            self.metrics.incr("checkpoints_committed")

    # ------------------------------------------------------------------
    # Failure detection and recovery (§4.4)
    # ------------------------------------------------------------------
    def _check_heartbeats(self) -> None:
        if not self._recovering:
            now = self.sim.now
            dead = [
                w for w in self.live_workers
                if now - self._last_heartbeat.get(w, now) > self.heartbeat_timeout
            ]
            if dead:
                self._begin_recovery(dead)
        self.call_later(self._hb_check_interval, self._check_heartbeats)

    def _begin_recovery(self, dead: List[int]) -> None:
        if self._last_committed_checkpoint is None:
            raise RuntimeError(
                f"workers {dead} failed with no committed checkpoint")
        self._recovering = True
        self._failed_workers |= set(dead)
        self.live_workers -= set(dead)
        for w in sorted(dead):
            self.load_tracker.drop_worker(w)
            if self.rebalancer is not None:
                self.rebalancer.drop_worker(w)
        # in-flight blocks are abandoned and replayed. The halt wipes every
        # job's worker-side queues, so all runs are dropped (recovery is a
        # cluster-wide stop-the-world; serve mode does not enable it)
        self.runs.clear()
        for ctx in self.jobs.values():
            if ctx.policy is not None:
                ctx.policy.reset()  # the halt wipes worker-side grants too
        self._halt_acks = set()
        for worker in self.live_workers:
            self.send_reliable(self.workers[worker], P.Halt())
        self.metrics.incr("recoveries_started")

    def _on_halt_ack(self, msg: P.HaltAck) -> None:
        if not self._recovering:
            return
        self._halt_acks.add(msg.worker_id)
        if self._halt_acks >= self.live_workers:
            self._restore_from_checkpoint()

    def _restore_from_checkpoint(self) -> None:
        ctx = self._job0
        checkpoint_id = self._last_committed_checkpoint
        dir_snap, placement_snap, history = (
            self._checkpoint_snapshots[checkpoint_id])
        ctx.directory.restore(dir_snap)
        survivors = sorted(self.live_workers)
        rr = 0
        per_worker_loads: Dict[int, List[int]] = {}
        for oid, home in placement_snap.items():
            if home not in self.live_workers:
                home = survivors[rr % len(survivors)]
                rr += 1
            ctx.placement.migrate(oid, home)
            per_worker_loads.setdefault(home, []).append(oid)
        for worker in self._failed_workers:
            ctx.directory.evict_worker(worker)
        # every object is reloaded at its (possibly new) home at the
        # checkpointed version; the directory reflects exactly that
        for worker, oids in per_worker_loads.items():
            for oid in oids:
                ctx.directory.apply_block_delta(oid, 0, [worker])
        # all cached schedules referenced the dead workers: rebuild
        for block_id, template in ctx.templates.items():
            for entry in template.entries:
                if entry.worker not in self.live_workers:
                    entry.worker = self._assign_worker(
                        ctx, entry.read, entry.write)
            if ctx.phase.get(block_id, 0) >= self.PHASE_CT_READY:
                self._regenerate_worker_templates(ctx, block_id)
        ctx.patch_cache.invalidate_all()
        ctx.validation_state.invalidate()
        ctx.results_history = list(history)
        self._load_acks = set()
        for worker, oids in per_worker_loads.items():
            self.send_reliable(self.workers[worker],
                      P.LoadCheckpoint(checkpoint_id, oids))
        self._expected_load_acks = set(per_worker_loads)
        if not per_worker_loads:
            self._finish_recovery()

    def _on_load_ack(self, msg: P.LoadAck) -> None:
        if not self._recovering:
            return
        self._load_acks.add(msg.worker_id)
        if self._load_acks >= self._expected_load_acks:
            self._finish_recovery()

    def _finish_recovery(self) -> None:
        ctx = self._job0
        self._recovering = False
        ctx.holder_cids.clear()
        self.send_reliable(ctx.driver, P.JobRestored(
            len(ctx.results_history) + 1, list(ctx.results_history)))
        self.metrics.incr("recoveries_completed")
