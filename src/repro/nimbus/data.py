"""Nimbus data model: mutable data objects with versions.

Nimbus tasks operate on *mutable* data objects (§3.3). Each logical object is
one partition of an application variable (e.g. partition 17 of ``tdata`` or
the singleton ``coeff``). Because objects are mutable, their identifiers are
stable across loop iterations and can be cached inside execution templates;
only *versions* advance.

Two structures implement the model:

* :class:`ObjectDirectory` — the controller's authoritative map from object
  id to latest version and to the set of workers holding each version. All
  copy insertion, template validation, and patching decisions read it.
* :class:`ObjectStore` — a worker's local store of object payloads. Payloads
  are real Python values (numpy arrays in the bundled applications), so
  integration tests can check end-to-end dataflow correctness, not just
  timing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

ObjectId = int
WorkerId = int


class LogicalObject:
    """Driver-level handle to one partition of an application variable."""

    __slots__ = ("oid", "variable", "partition", "size_bytes")

    def __init__(self, oid: ObjectId, variable: str, partition: int, size_bytes: int = 0):
        self.oid = oid
        self.variable = variable
        self.partition = partition
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return f"<{self.variable}[{self.partition}] oid={self.oid}>"


class ObjectDirectory:
    """Controller-side map of object versions and their holders.

    The directory tracks, per object id, the latest version number and which
    workers hold which version. Scheduling a write bumps the version and
    narrows the holder set to the writer; scheduling a copy widens it.

    The directory reflects *planned* state: the controller updates it as it
    schedules commands, before they execute, exactly as a real controller
    reasons about the future state its command stream will produce.
    """

    #: process-wide id source distinguishing directory instances, so a
    #: validation cache built against one directory is never trusted
    #: against another (see :mod:`repro.core.validation`)
    _next_token = 0

    def __init__(self) -> None:
        self._latest: Dict[ObjectId, int] = {}
        self._holders: Dict[ObjectId, Dict[WorkerId, int]] = {}
        self._objects: Dict[ObjectId, LogicalObject] = {}
        # dirty tracking for incremental template validation: a global
        # monotone stamp, advanced on every mutation, and the stamp at
        # which each object last changed (latest version or holder set)
        self._stamp: int = 0
        self._stamps: Dict[ObjectId, int] = {}
        ObjectDirectory._next_token += 1
        self.token: int = ObjectDirectory._next_token

    # -- dirty tracking ---------------------------------------------------
    @property
    def stamp(self) -> int:
        """Monotone mutation counter; advances on every state change."""
        return self._stamp

    def stamp_of(self, oid: ObjectId) -> int:
        """Stamp at which ``oid`` last changed (0 = never touched)."""
        return self._stamps.get(oid, 0)

    def _touch(self, oid: ObjectId) -> None:
        self._stamp += 1
        self._stamps[oid] = self._stamp

    # -- registration ---------------------------------------------------
    def register(self, obj: LogicalObject, home: WorkerId) -> None:
        """Register a newly created object resident on ``home`` at version 0."""
        self._objects[obj.oid] = obj
        self._latest[obj.oid] = 0
        self._holders[obj.oid] = {home: 0}
        self._touch(obj.oid)

    def unregister(self, oid: ObjectId) -> None:
        self._objects.pop(oid, None)
        self._latest.pop(oid, None)
        self._holders.pop(oid, None)
        self._touch(oid)  # stamp survives so cached validations re-check

    def object(self, oid: ObjectId) -> LogicalObject:
        return self._objects[oid]

    def objects(self) -> Iterable[LogicalObject]:
        return self._objects.values()

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._objects

    # -- queries ----------------------------------------------------------
    def latest_version(self, oid: ObjectId) -> int:
        return self._latest[oid]

    def holders_of_latest(self, oid: ObjectId) -> List[WorkerId]:
        latest = self._latest[oid]
        return [w for w, v in self._holders[oid].items() if v == latest]

    def is_fresh(self, oid: ObjectId, worker: WorkerId) -> bool:
        """True when ``worker`` holds the latest version of ``oid``."""
        return self._holders[oid].get(worker, -1) == self._latest[oid]

    def freshness_maps(self) -> Tuple[Dict[ObjectId, Dict[WorkerId, int]],
                                      Dict[ObjectId, int]]:
        """The raw ``(holders, latest)`` maps behind :meth:`is_fresh`.

        Read-only view for the central scheduler's per-read freshness walk,
        which at paper scale checks hundreds of thousands of (oid, worker)
        pairs per warm-up and cannot afford a method call per check. Callers
        must treat both maps as immutable and route every mutation through
        :meth:`record_write` / :meth:`record_copy`, which keep the
        validation stamps coherent.
        """
        return self._holders, self._latest

    def holds_any(self, oid: ObjectId, worker: WorkerId) -> bool:
        return worker in self._holders[oid]

    # -- planned mutations ------------------------------------------------
    def record_write(self, oid: ObjectId, worker: WorkerId) -> int:
        """A write on ``worker`` produces the next version; returns it.

        Other workers keep their (now stale) replicas — mutable objects are
        overwritten in place, not invalidated remotely."""
        version = self._latest[oid] + 1
        self._latest[oid] = version
        self._holders[oid][worker] = version
        self._stamp = stamp = self._stamp + 1
        self._stamps[oid] = stamp
        return version

    def record_copy(self, oid: ObjectId, dst: WorkerId) -> None:
        """A copy delivers the latest version of ``oid`` to ``dst``."""
        self._holders[oid][dst] = self._latest[oid]
        self._stamp = stamp = self._stamp + 1
        self._stamps[oid] = stamp

    def apply_block_delta(self, oid: ObjectId, bumps: int,
                          final_holders: Iterable[WorkerId]) -> None:
        """Apply a cached template directory delta for one object:
        advance the version by ``bumps`` writes and set the holder set."""
        latest = self._latest[oid] + bumps
        self._latest[oid] = latest
        self._holders[oid] = {w: latest for w in final_holders}
        self._touch(oid)

    def apply_block_deltas(self, write_counts: Dict[ObjectId, int],
                           final_holders: Dict[ObjectId, Iterable[WorkerId]],
                           ) -> None:
        """Bulk :meth:`apply_block_delta` over a whole template delta.

        One call per block submission instead of one per written object —
        a templated block touches thousands of objects every round, so the
        per-object method dispatch is worth hoisting.
        """
        latest_d = self._latest
        holders_d = self._holders
        stamps = self._stamps
        stamp = self._stamp
        fromkeys = dict.fromkeys
        for oid, bumps in write_counts.items():
            latest = latest_d[oid] + bumps
            latest_d[oid] = latest
            holders_d[oid] = fromkeys(final_holders[oid], latest)
            stamp += 1
            stamps[oid] = stamp
        self._stamp = stamp

    def evict_worker(self, worker: WorkerId) -> None:
        """Forget all replicas held by ``worker`` (worker failure/eviction)."""
        for oid, holders in self._holders.items():
            if holders.pop(worker, None) is not None:
                self._touch(oid)

    # -- snapshot / restore (checkpointing) -------------------------------
    def snapshot(self) -> Tuple[Dict[ObjectId, int], Dict[ObjectId, Dict[WorkerId, int]]]:
        return (
            dict(self._latest),
            {oid: dict(h) for oid, h in self._holders.items()},
        )

    def restore(
        self,
        snap: Tuple[Dict[ObjectId, int], Dict[ObjectId, Dict[WorkerId, int]]],
    ) -> None:
        latest, holders = snap
        stale = set(self._holders) | set(holders)
        self._latest = dict(latest)
        self._holders = {oid: dict(h) for oid, h in holders.items()}
        for oid in stale:
            self._touch(oid)


class ObjectStore:
    """A worker's local payload store.

    Maps object id → payload. Version numbers are a controller concept; the
    store also remembers an opaque ``stamp`` per object (set by copies and
    task writes) that tests use to verify read-latest-value semantics.
    """

    def __init__(self) -> None:
        self._payloads: Dict[ObjectId, Any] = {}

    def create(self, oid: ObjectId, payload: Any = None) -> None:
        self._payloads[oid] = payload

    def destroy(self, oid: ObjectId) -> None:
        self._payloads.pop(oid, None)

    def put(self, oid: ObjectId, payload: Any) -> None:
        self._payloads[oid] = payload

    def get(self, oid: ObjectId) -> Any:
        return self._payloads.get(oid)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._payloads

    def live_objects(self) -> List[ObjectId]:
        return list(self._payloads.keys())


class PartitionPlacement:
    """Assignment of logical objects to home workers.

    The paper explicitly leaves scheduling *policy* out of scope (§6); the
    reproduction places partitions round-robin and exposes :meth:`migrate`
    for the dynamic-scheduling experiments, where the policy decisions come
    from the experiment script (evict 50 workers, migrate 5 % of tasks, ...).
    """

    def __init__(self, workers: Iterable[WorkerId]):
        self._workers: List[WorkerId] = list(workers)
        self._home: Dict[ObjectId, WorkerId] = {}
        self._rr = 0

    @property
    def workers(self) -> List[WorkerId]:
        return list(self._workers)

    def set_workers(self, workers: Iterable[WorkerId]) -> None:
        self._workers = list(workers)
        self._rr = 0

    def place(self, oid: ObjectId, worker: Optional[WorkerId] = None) -> WorkerId:
        """Assign a home worker (round-robin when not given). Returns it."""
        if worker is None:
            worker = self._workers[self._rr % len(self._workers)]
            self._rr += 1
        self._home[oid] = worker
        return worker

    def home(self, oid: ObjectId) -> WorkerId:
        return self._home[oid]

    def migrate(self, oid: ObjectId, dst: WorkerId) -> None:
        self._home[oid] = dst

    def objects_on(self, worker: WorkerId) -> List[ObjectId]:
        return [oid for oid, w in self._home.items() if w == worker]
