"""The driver: runs the application program and talks to the controller.

Application programs are Python generators over a :class:`Job` handle, so
nested loops and data-dependent branches are ordinary Python control flow —
exactly the driver-program model of Figure 3::

    def program(job):
        yield job.define(objects)
        error = 1.0
        while error > 1e-3:                       # outer loop
            for _ in range(5):                    # inner loop
                res = yield job.run(opt_block, {"step": 0.1})
            res = yield job.run(est_block, {})
            error = res["error"]

``yield job.run(...)`` blocks on the block's completion and returns the
declared driver values. ``job.post(...)`` is fire-and-forget (the dataflow
ordering is enforced by the workers, not the driver), with ``yield
job.drain()`` as a barrier. ``job.enable_templates()`` switches the driver
from streaming task descriptions to installing/instantiating templates —
it can be called mid-run, as in the experiment of Figure 9.

On failure recovery the controller replays the results history: the driver
restarts the program generator and feeds it recorded results without
resubmitting, then switches back to live execution — deterministic
programs therefore resume exactly where the checkpoint left them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.spec import BlockSpec
from ..sim.actor import Actor, Message
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from . import protocol as P


class _Kickoff(Message):
    size_bytes = 0


def _as_generator(iterable):
    """Accept any iterable of directives as a program body."""
    if hasattr(iterable, "send"):
        return iterable
    return (directive for directive in iterable)


class Job:
    """The handle a driver program uses to talk to the system."""

    def __init__(self, driver: "Driver"):
        self._driver = driver
        self.finished = False
        self.finish_time: Optional[float] = None

    # -- directives (yield these) ----------------------------------------
    def define(self, objects: List[Tuple[int, str, int, int, Optional[int]]]):
        """Declare logical objects; yield to wait until they exist."""
        return ("define", objects)

    def run(self, block: BlockSpec, params: Optional[Dict[str, Any]] = None):
        """Submit a block and wait for its completion (yield this)."""
        return ("run", block, params or {})

    def undefine(self, oids):
        """Destroy logical objects cluster-wide; yield to wait (§3.4)."""
        return ("undefine", list(oids))

    def drain(self):
        """Barrier: wait until every posted block has completed."""
        return ("drain",)

    # -- immediate calls ---------------------------------------------------
    def post(self, block: BlockSpec, params: Optional[Dict[str, Any]] = None) -> None:
        """Submit a block without waiting for completion."""
        self._driver._post(block, params or {})

    def enable_templates(self) -> None:
        self._driver.use_templates = True

    def disable_templates(self) -> None:
        self._driver.use_templates = False

    @property
    def templates_enabled(self) -> bool:
        return self._driver.use_templates

    @property
    def now(self) -> float:
        return self._driver.sim.now

    @property
    def iteration_log(self) -> List[Tuple[int, float, float]]:
        """(request_id, submit_time, complete_time) per completed request."""
        return self._driver.iteration_log


class Driver(P.ReliableEndpoint, Actor):
    """Driver actor: advances the program generator on completions."""

    #: decentralized mode: successive instantiations of one installed
    #: block coalesce into windows of this many iterations (DESIGN.md §14).
    #: Larger windows amortize more controller work but coarsen the
    #: rebalancer/migration quiesce points to one per window.
    window_size = 32

    def __init__(
        self,
        sim: Simulator,
        controller,
        program: Callable[[Job], Iterable],
        metrics: Metrics,
        use_templates: bool = True,
        max_inflight: int = 4,
        name: str = "driver",
        job_id: int = 0,
        mode: str = "centralized",
    ):
        super().__init__(sim, name)
        self._init_reliable(metrics)
        self.controller = controller
        self.program = program
        self.metrics = metrics
        self.use_templates = use_templates
        #: scheduling mode: "decentralized" windows installed-block
        #: instantiations for worker self-scheduling
        self.mode = mode
        #: controller-side namespace this driver submits into. Reliable
        #: channels are keyed by actor name, so concurrent drivers must
        #: also carry unique names (the JobManager uses "driver-<id>").
        self.job_id = job_id
        #: callback invoked (with this driver) when the program finishes;
        #: the JobManager uses it to admit queued jobs
        self.on_finish: Optional[Callable[["Driver"], None]] = None
        #: submission backpressure: at most this many blocks in flight.
        #: Enough to pipeline control plane against computation, without
        #: flooding a saturated controller's inbox arbitrarily deep.
        self.max_inflight = max_inflight
        #: when set (by run_until_finished), program completion halts the
        #: simulator so the caller need not single-step and poll
        self.halt_on_finish = False
        self.job = Job(self)
        self.iteration_log: List[Tuple[int, float, float]] = []

        self._gen = None
        self._wait: Optional[Tuple] = None  # ("define",)|("request", id)|("drain",)
        self._outstanding = 0
        self._next_request = 1
        self._next_task_id = 1
        self._installed: set = set()  # block_ids with a controller template
        self._submit_times: Dict[int, float] = {}
        self._block_results: Dict[int, Dict[str, Any]] = {}
        self._backlog = []  # (request_id, block, params) awaiting a slot
        #: decentralized mode: buffered (request_id, block, params) of one
        #: block awaiting window flush (all entries share a block_id)
        self._window_buffer: List[Tuple[int, BlockSpec, Dict[str, Any]]] = []

        # recovery replay state
        self._replay: List[Tuple[str, Dict[str, Any]]] = []
        self._replay_cursor = 0

        #: request id whose completion caused the submission currently
        #: being dispatched (traced only; critical-path causality edge)
        self._trace_cause: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing the program (enters the actor's handler loop)."""
        self.deliver(_Kickoff())

    def handle(self, msg: Message) -> None:
        if isinstance(msg, _Kickoff):
            self._gen = _as_generator(self.program(self.job))
            self._advance(None)
        elif isinstance(msg, P.ObjectsReady):
            if self._wait and self._wait[0] == "define":
                self._wait = None
                self._advance(None)
        elif isinstance(msg, P.BlockComplete):
            self._complete_one(msg.request_id, msg.results)
        elif isinstance(msg, P.BlockCompleteBatch):
            for _block_id, _seq, results, request_id, finished_at in msg.items:
                self._complete_one(request_id, results, finished_at)
        elif isinstance(msg, P.JobRestored):
            self._on_restored(msg)
        else:
            raise TypeError(f"driver got unexpected message {msg!r}")

    # ------------------------------------------------------------------
    # Program advancement
    # ------------------------------------------------------------------
    def _advance(self, value: Any) -> None:
        while True:
            try:
                directive = self._gen.send(value)
            except StopIteration:
                self._flush_window()  # posted-but-buffered work still runs
                self.job.finished = True
                self.job.finish_time = self.sim.now
                if self._trace is not None:
                    self._trace.driver_finish()
                if self.on_finish is not None:
                    self.on_finish(self)
                if self.halt_on_finish:
                    self.sim.halt()
                return
            value = None
            kind = directive[0]
            if kind == "define":
                if self._replaying:
                    continue  # objects already exist after recovery
                self._flush_window()  # keep submission order on the wire
                self.send_reliable(self.controller, P.DefineObjects(
                    directive[1], job_id=self.job_id))
                self._wait = ("define",)
                return
            if kind == "undefine":
                if self._replaying:
                    continue
                self._flush_window()
                self.send_reliable(self.controller, P.UndefineObjects(
                    directive[1], job_id=self.job_id))
                self._wait = ("define",)  # same ack message
                return
            if kind == "run":
                _kind, block, params = directive
                if self._replaying:
                    value = self._consume_replay(block.block_id)
                    continue
                request_id = self._submit(block, params)
                self._wait = ("request", request_id)
                # a blocking run can't grow its window further: flush the
                # (possibly single-entry) buffer now
                self._flush_window()
                return
            if kind == "drain":
                if self._replaying:
                    continue
                self._flush_window()
                if self._outstanding == 0:
                    continue
                self._wait = ("drain",)
                return
            raise ValueError(f"unknown driver directive {directive!r}")

    @property
    def _replaying(self) -> bool:
        return self._replay_cursor < len(self._replay)

    def _consume_replay(self, block_id: str) -> Dict[str, Any]:
        recorded_id, results = self._replay[self._replay_cursor]
        if recorded_id != block_id:
            raise RuntimeError(
                f"non-deterministic driver program: replay expected block "
                f"{recorded_id!r}, program submitted {block_id!r}"
            )
        self._replay_cursor += 1
        return results

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _post(self, block: BlockSpec, params: Dict[str, Any]) -> None:
        if self._replaying:
            self._consume_replay(block.block_id)
            return
        self._submit(block, params)

    def _submit(self, block: BlockSpec, params: Dict[str, Any]) -> int:
        request_id = self._next_request
        self._next_request += 1
        self._outstanding += 1
        if self._windowable(block):
            buf = self._window_buffer
            if buf and buf[0][1].block_id != block.block_id:
                self._flush_window()
            self._window_buffer.append((request_id, block, params))
            if len(self._window_buffer) >= self.window_size:
                self._flush_window()
            return request_id
        self._flush_window()  # never let a window overtake this submission
        if self._outstanding > self.max_inflight:
            self._backlog.append((request_id, block, params))
        else:
            self._dispatch_request(request_id, block, params)
        return request_id

    def _windowable(self, block: BlockSpec) -> bool:
        """Can this submission join a self-schedule window?

        Only installed blocks under templates in a window-granting mode
        (decentralized or sharded): the pre-install staircase and the
        central path stay byte-identical to centralized mode. Windowed
        submissions bypass the ``max_inflight`` backlog — the
        controller's policy serializes whole windows instead (one grant
        in flight per job) — but still count as outstanding so ``drain``
        keeps its barrier semantics.
        """
        return (self.mode in ("decentralized", "sharded")
                and self.use_templates
                and block.block_id in self._installed)

    def _flush_window(self) -> None:
        """Ship the buffered window as one ``InstantiateWindow``.

        Per-request bookkeeping (submit times, driver_block intervals,
        trace causality) happens at flush — the instant the requests
        actually reach the wire. A single-entry buffer degenerates to a
        plain ``InstantiateBlock``: blocking programs in decentralized
        mode take exactly the centralized instantiation path.
        """
        buf = self._window_buffer
        if not buf:
            return
        self._window_buffer = []
        block = buf[0][1]
        entries = []
        for request_id, _block, params in buf:
            self._submit_times[request_id] = self.sim.now
            self.metrics.begin("driver_block", self.sim.now, key=request_id,
                               block_id=block.block_id,
                               request_id=request_id)
            if self._trace is not None:
                self._trace.block_submit(request_id, block.block_id,
                                         self._trace_cause)
            base = self._next_task_id
            self._next_task_id += block.num_tasks
            entries.append((request_id, base, params))
        if len(entries) == 1:
            request_id, base, params = entries[0]
            self.send_reliable(self.controller, P.InstantiateBlock(
                block.block_id, block.num_tasks, base, params, request_id,
                job_id=self.job_id))
            return
        self.send_reliable(self.controller, P.InstantiateWindow(
            block.block_id, block.num_tasks, entries, job_id=self.job_id))

    def _dispatch_request(self, request_id: int, block: BlockSpec,
                          params: Dict[str, Any]) -> None:
        self._submit_times[request_id] = self.sim.now
        self.metrics.begin("driver_block", self.sim.now, key=request_id,
                           block_id=block.block_id, request_id=request_id)
        if self._trace is not None:
            self._trace.block_submit(request_id, block.block_id,
                                     self._trace_cause)
        if self.use_templates and block.block_id in self._installed:
            base = self._next_task_id
            self._next_task_id += block.num_tasks
            self.send_reliable(self.controller, P.InstantiateBlock(
                block.block_id, block.num_tasks, base, params, request_id,
                job_id=self.job_id))
        else:
            template_start = self.use_templates
            if template_start:
                self._installed.add(block.block_id)
            self.send_reliable(self.controller, P.SubmitBlock(
                block, params, template_start, request_id,
                job_id=self.job_id))

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _complete_one(self, request_id: int, results: Dict[str, Any],
                      finished_at: float = None) -> None:
        self._outstanding -= 1
        if self._trace is not None:
            self._trace.block_complete(request_id)
            self._trace_cause = request_id
        if self._backlog and self._outstanding - len(self._backlog) < self.max_inflight:
            backlogged_id, block, params = self._backlog.pop(0)
            self._dispatch_request(backlogged_id, block, params)
        submit_time = self._submit_times.pop(request_id, None)
        if submit_time is not None:
            # a windowed batch reports each run's true completion time;
            # without it every iteration in the window would appear to end
            # at the batch's arrival instant
            end = finished_at if finished_at is not None else self.sim.now
            self.iteration_log.append((request_id, submit_time, end))
            self.metrics.end("driver_block", end,
                             key=request_id, results=results)
        self._block_results[request_id] = results
        if self._wait is None:
            self._trace_cause = None
            return
        if self._wait == ("request", request_id):
            self._wait = None
            self._advance(results)
        elif self._wait == ("drain",) and self._outstanding == 0:
            self._wait = None
            self._advance(None)
        self._trace_cause = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _on_restored(self, msg: P.JobRestored) -> None:
        # abandon open waits and in-flight requests; rebuild from history
        for request_id in list(self._submit_times):
            self.metrics.end("driver_block", self.sim.now, key=request_id,
                             aborted=True)
        self._submit_times.clear()
        self._outstanding = 0
        self._backlog.clear()
        self._window_buffer.clear()
        self._wait = None
        self._replay = list(msg.results_history)
        self._replay_cursor = 0
        # controller templates survive recovery (worker halves were
        # regenerated by the controller), so _installed is kept as-is
        self._gen = _as_generator(self.program(self.job))
        self.metrics.incr("driver_replays")
        self._advance(None)
