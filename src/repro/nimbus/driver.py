"""The driver: runs the application program and talks to the controller.

Application programs are Python generators over a :class:`Job` handle, so
nested loops and data-dependent branches are ordinary Python control flow —
exactly the driver-program model of Figure 3::

    def program(job):
        yield job.define(objects)
        error = 1.0
        while error > 1e-3:                       # outer loop
            for _ in range(5):                    # inner loop
                res = yield job.run(opt_block, {"step": 0.1})
            res = yield job.run(est_block, {})
            error = res["error"]

``yield job.run(...)`` blocks on the block's completion and returns the
declared driver values. ``job.post(...)`` is fire-and-forget (the dataflow
ordering is enforced by the workers, not the driver), with ``yield
job.drain()`` as a barrier. ``job.enable_templates()`` switches the driver
from streaming task descriptions to installing/instantiating templates —
it can be called mid-run, as in the experiment of Figure 9.

On failure recovery the controller replays the results history: the driver
restarts the program generator and feeds it recorded results without
resubmitting, then switches back to live execution — deterministic
programs therefore resume exactly where the checkpoint left them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.spec import BlockSpec
from ..sim.actor import Actor, Message
from ..sim.engine import Simulator
from ..sim.metrics import Metrics
from . import protocol as P


class _Kickoff(Message):
    size_bytes = 0


def _as_generator(iterable):
    """Accept any iterable of directives as a program body."""
    if hasattr(iterable, "send"):
        return iterable
    return (directive for directive in iterable)


class Job:
    """The handle a driver program uses to talk to the system."""

    def __init__(self, driver: "Driver"):
        self._driver = driver
        self.finished = False
        self.finish_time: Optional[float] = None

    # -- directives (yield these) ----------------------------------------
    def define(self, objects: List[Tuple[int, str, int, int, Optional[int]]]):
        """Declare logical objects; yield to wait until they exist."""
        return ("define", objects)

    def run(self, block: BlockSpec, params: Optional[Dict[str, Any]] = None):
        """Submit a block and wait for its completion (yield this)."""
        return ("run", block, params or {})

    def undefine(self, oids):
        """Destroy logical objects cluster-wide; yield to wait (§3.4)."""
        return ("undefine", list(oids))

    def drain(self):
        """Barrier: wait until every posted block has completed."""
        return ("drain",)

    # -- immediate calls ---------------------------------------------------
    def post(self, block: BlockSpec, params: Optional[Dict[str, Any]] = None) -> None:
        """Submit a block without waiting for completion."""
        self._driver._post(block, params or {})

    def enable_templates(self) -> None:
        self._driver.use_templates = True

    def disable_templates(self) -> None:
        self._driver.use_templates = False

    @property
    def templates_enabled(self) -> bool:
        return self._driver.use_templates

    @property
    def now(self) -> float:
        return self._driver.sim.now

    @property
    def iteration_log(self) -> List[Tuple[int, float, float]]:
        """(request_id, submit_time, complete_time) per completed request."""
        return self._driver.iteration_log


class Driver(P.ReliableEndpoint, Actor):
    """Driver actor: advances the program generator on completions."""

    def __init__(
        self,
        sim: Simulator,
        controller,
        program: Callable[[Job], Iterable],
        metrics: Metrics,
        use_templates: bool = True,
        max_inflight: int = 4,
        name: str = "driver",
        job_id: int = 0,
    ):
        super().__init__(sim, name)
        self._init_reliable(metrics)
        self.controller = controller
        self.program = program
        self.metrics = metrics
        self.use_templates = use_templates
        #: controller-side namespace this driver submits into. Reliable
        #: channels are keyed by actor name, so concurrent drivers must
        #: also carry unique names (the JobManager uses "driver-<id>").
        self.job_id = job_id
        #: callback invoked (with this driver) when the program finishes;
        #: the JobManager uses it to admit queued jobs
        self.on_finish: Optional[Callable[["Driver"], None]] = None
        #: submission backpressure: at most this many blocks in flight.
        #: Enough to pipeline control plane against computation, without
        #: flooding a saturated controller's inbox arbitrarily deep.
        self.max_inflight = max_inflight
        #: when set (by run_until_finished), program completion halts the
        #: simulator so the caller need not single-step and poll
        self.halt_on_finish = False
        self.job = Job(self)
        self.iteration_log: List[Tuple[int, float, float]] = []

        self._gen = None
        self._wait: Optional[Tuple] = None  # ("define",)|("request", id)|("drain",)
        self._outstanding = 0
        self._next_request = 1
        self._next_task_id = 1
        self._installed: set = set()  # block_ids with a controller template
        self._submit_times: Dict[int, float] = {}
        self._block_results: Dict[int, Dict[str, Any]] = {}
        self._backlog = []  # (request_id, block, params) awaiting a slot

        # recovery replay state
        self._replay: List[Tuple[str, Dict[str, Any]]] = []
        self._replay_cursor = 0

        #: request id whose completion caused the submission currently
        #: being dispatched (traced only; critical-path causality edge)
        self._trace_cause: Optional[int] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin executing the program (enters the actor's handler loop)."""
        self.deliver(_Kickoff())

    def handle(self, msg: Message) -> None:
        if isinstance(msg, _Kickoff):
            self._gen = _as_generator(self.program(self.job))
            self._advance(None)
        elif isinstance(msg, P.ObjectsReady):
            if self._wait and self._wait[0] == "define":
                self._wait = None
                self._advance(None)
        elif isinstance(msg, P.BlockComplete):
            self._on_block_complete(msg)
        elif isinstance(msg, P.JobRestored):
            self._on_restored(msg)
        else:
            raise TypeError(f"driver got unexpected message {msg!r}")

    # ------------------------------------------------------------------
    # Program advancement
    # ------------------------------------------------------------------
    def _advance(self, value: Any) -> None:
        while True:
            try:
                directive = self._gen.send(value)
            except StopIteration:
                self.job.finished = True
                self.job.finish_time = self.sim.now
                if self._trace is not None:
                    self._trace.driver_finish()
                if self.on_finish is not None:
                    self.on_finish(self)
                if self.halt_on_finish:
                    self.sim.halt()
                return
            value = None
            kind = directive[0]
            if kind == "define":
                if self._replaying:
                    continue  # objects already exist after recovery
                self.send_reliable(self.controller, P.DefineObjects(
                    directive[1], job_id=self.job_id))
                self._wait = ("define",)
                return
            if kind == "undefine":
                if self._replaying:
                    continue
                self.send_reliable(self.controller, P.UndefineObjects(
                    directive[1], job_id=self.job_id))
                self._wait = ("define",)  # same ack message
                return
            if kind == "run":
                _kind, block, params = directive
                if self._replaying:
                    value = self._consume_replay(block.block_id)
                    continue
                request_id = self._submit(block, params)
                self._wait = ("request", request_id)
                return
            if kind == "drain":
                if self._replaying:
                    continue
                if self._outstanding == 0:
                    continue
                self._wait = ("drain",)
                return
            raise ValueError(f"unknown driver directive {directive!r}")

    @property
    def _replaying(self) -> bool:
        return self._replay_cursor < len(self._replay)

    def _consume_replay(self, block_id: str) -> Dict[str, Any]:
        recorded_id, results = self._replay[self._replay_cursor]
        if recorded_id != block_id:
            raise RuntimeError(
                f"non-deterministic driver program: replay expected block "
                f"{recorded_id!r}, program submitted {block_id!r}"
            )
        self._replay_cursor += 1
        return results

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _post(self, block: BlockSpec, params: Dict[str, Any]) -> None:
        if self._replaying:
            self._consume_replay(block.block_id)
            return
        self._submit(block, params)

    def _submit(self, block: BlockSpec, params: Dict[str, Any]) -> int:
        request_id = self._next_request
        self._next_request += 1
        self._outstanding += 1
        if self._outstanding > self.max_inflight:
            self._backlog.append((request_id, block, params))
        else:
            self._dispatch_request(request_id, block, params)
        return request_id

    def _dispatch_request(self, request_id: int, block: BlockSpec,
                          params: Dict[str, Any]) -> None:
        self._submit_times[request_id] = self.sim.now
        self.metrics.begin("driver_block", self.sim.now, key=request_id,
                           block_id=block.block_id, request_id=request_id)
        if self._trace is not None:
            self._trace.block_submit(request_id, block.block_id,
                                     self._trace_cause)
        if self.use_templates and block.block_id in self._installed:
            base = self._next_task_id
            self._next_task_id += block.num_tasks
            self.send_reliable(self.controller, P.InstantiateBlock(
                block.block_id, block.num_tasks, base, params, request_id,
                job_id=self.job_id))
        else:
            template_start = self.use_templates
            if template_start:
                self._installed.add(block.block_id)
            self.send_reliable(self.controller, P.SubmitBlock(
                block, params, template_start, request_id,
                job_id=self.job_id))

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _on_block_complete(self, msg: P.BlockComplete) -> None:
        self._outstanding -= 1
        if self._trace is not None:
            self._trace.block_complete(msg.request_id)
            self._trace_cause = msg.request_id
        if self._backlog and self._outstanding - len(self._backlog) < self.max_inflight:
            request_id, block, params = self._backlog.pop(0)
            self._dispatch_request(request_id, block, params)
        submit_time = self._submit_times.pop(msg.request_id, None)
        if submit_time is not None:
            self.iteration_log.append(
                (msg.request_id, submit_time, self.sim.now))
            self.metrics.end("driver_block", self.sim.now,
                             key=msg.request_id, results=msg.results)
        self._block_results[msg.request_id] = msg.results
        if self._wait is None:
            self._trace_cause = None
            return
        if self._wait == ("request", msg.request_id):
            self._wait = None
            self._advance(msg.results)
        elif self._wait == ("drain",) and self._outstanding == 0:
            self._wait = None
            self._advance(None)
        self._trace_cause = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _on_restored(self, msg: P.JobRestored) -> None:
        # abandon open waits and in-flight requests; rebuild from history
        for request_id in list(self._submit_times):
            self.metrics.end("driver_block", self.sim.now, key=request_id,
                             aborted=True)
        self._submit_times.clear()
        self._outstanding = 0
        self._backlog.clear()
        self._wait = None
        self._replay = list(msg.results_history)
        self._replay_cursor = 0
        # controller templates survive recovery (worker halves were
        # regenerated by the controller), so _installed is kept as-is
        self._gen = _as_generator(self.program(self.job))
        self.metrics.incr("driver_replays")
        self._advance(None)
