"""Messages of the Nimbus control plane.

Three interfaces, as in Figure 2 of the paper:

* driver ↔ controller — block submission, template installation markers,
  template instantiation, block completion with returned driver values;
* controller ↔ worker — command dispatch (central path), worker-template
  install/instantiate, patches, checkpoint/recovery control;
* worker ↔ worker — direct data exchange (the push-model copies of §3.4).

Message ``size_bytes`` approximate the paper's wire sizes so the network
model charges realistic serialization time (task descriptions are a few
hundred bytes; instantiation messages are ~4 bytes per task id plus the
parameter block).
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..sim.actor import Message
from .commands import Command

TASK_DESC_BYTES = 200  # serialized size of one task description
TASK_ID_BYTES = 4  # one entry of the instantiation id array
PARAM_BLOCK_BYTES = 64  # typical parameter blob


# ---------------------------------------------------------------------------
# driver → controller
# ---------------------------------------------------------------------------
class DefineObjects(Message):
    """Declare logical objects (partitions) and optional placement hints."""

    def __init__(self, objects: List[Tuple[int, str, int, int, Optional[int]]],
                 job_id: int = 0):
        # entries: (oid, variable, partition, size_bytes, home_worker or None)
        self.objects = objects
        self.job_id = job_id
        self.size_bytes = 64 * len(objects)


class SubmitBlock(Message):
    """Submit a basic block as an explicit task stream (non-template path).

    When ``template_start`` is set this stream doubles as the template
    installation capture (the driver marked the basic block, §4.1).
    """

    def __init__(self, block, params: Dict[str, Any], template_start: bool = False,
                 request_id: int = 0, job_id: int = 0):
        self.block = block  # BlockSpec
        self.params = params
        self.template_start = template_start
        self.request_id = request_id
        self.job_id = job_id
        self.size_bytes = TASK_DESC_BYTES * block.num_tasks + PARAM_BLOCK_BYTES


class InstantiateBlock(Message):
    """Execute an installed controller template (§2.2).

    Carries the new task identifiers (modeled as ``task_id_base`` plus the
    count — the array contents are consecutive) and the parameter block.
    """

    def __init__(self, block_id: str, num_tasks: int, task_id_base: int,
                 params: Dict[str, Any], request_id: int = 0, job_id: int = 0):
        self.block_id = block_id
        self.num_tasks = num_tasks
        self.task_id_base = task_id_base
        self.params = params
        self.request_id = request_id
        self.job_id = job_id
        self.size_bytes = TASK_ID_BYTES * num_tasks + PARAM_BLOCK_BYTES


class InstantiateWindow(Message):
    """A batch of successive instantiations of one installed block.

    Decentralized mode (DESIGN.md §14): the driver submits a *window* of
    iterations in one message instead of one ``InstantiateBlock`` per
    iteration. Each entry carries the same payload an ``InstantiateBlock``
    would — request id, task-id base, parameter block — so the wire size
    is honest: the savings are in message count, not bytes.
    """

    def __init__(self, block_id: str, num_tasks: int,
                 entries: List[Tuple[int, int, Dict[str, Any]]],
                 job_id: int = 0):
        # entries: (request_id, task_id_base, params)
        self.block_id = block_id
        self.num_tasks = num_tasks
        self.entries = entries
        self.job_id = job_id
        self.size_bytes = ((TASK_ID_BYTES * num_tasks + PARAM_BLOCK_BYTES)
                           * len(entries))


# ---------------------------------------------------------------------------
# controller → driver
# ---------------------------------------------------------------------------
class ObjectsReady(Message):
    """All requested objects were created and registered."""


class BlockComplete(Message):
    """A block instance finished; carries returned driver values."""

    def __init__(self, block_id: str, seq: int, results: Dict[str, Any],
                 request_id: int = 0):
        self.block_id = block_id
        self.seq = seq
        self.results = results
        self.request_id = request_id
        self.size_bytes = 64 + 32 * len(results)


class BlockCompleteBatch(Message):
    """All block instances of a self-schedule window finished.

    Decentralized mode: one message closes the whole window; each item is
    what a ``BlockComplete`` would have carried.
    """

    def __init__(self,
                 items: List[Tuple[str, int, Dict[str, Any], int, float]]):
        # items: (block_id, seq, results, request_id, finished_at) in seq
        # order; finished_at is the last worker's local completion time,
        # so driver-side iteration statistics keep per-run resolution even
        # though the batch lands as one message
        self.items = items
        self.size_bytes = sum(64 + 32 * len(results)
                              for _b, _s, results, _r, _f in items)


class JobRestored(Message):
    """Recovery completed; driver must replay from the checkpoint."""

    def __init__(self, next_seq: int, results_history: List[Tuple[str, Dict[str, Any]]]):
        self.next_seq = next_seq
        self.results_history = results_history
        # block id + per-block result digest; previously fell back to the
        # generic Message default, undercounting replay traffic
        self.size_bytes = 64 + sum(32 + 32 * len(results)
                                   for _block_id, results in results_history)


# ---------------------------------------------------------------------------
# controller → worker
# ---------------------------------------------------------------------------
class CreateObjects(Message):
    """Create (empty) objects in the worker's local store."""

    def __init__(self, oids: List[int]):
        self.oids = oids
        self.size_bytes = 16 * len(oids)


class DestroyObjects(Message):
    """Destroy objects in the worker's local store (data commands, §3.4)."""

    def __init__(self, oids: List[int]):
        self.oids = oids
        self.size_bytes = 16 * len(oids)


class ReleaseJob(Message):
    """Tear a released job out of a worker (multi-tenant lifecycle).

    Destroys the job's objects, uninstalls its template halves, and marks
    the job id dead so the worker drains the job's in-flight commands
    without executing their bodies — a cancelled or crashed tenant must
    never run a task against destroyed data or stall a neighbor.
    """

    def __init__(self, job_id: int, oids: List[int]):
        self.job_id = job_id
        self.oids = oids
        self.size_bytes = 16 + 16 * len(oids)


class UndefineObjects(Message):
    """Driver → controller: drop logical objects from the system."""

    def __init__(self, oids: List[int], job_id: int = 0):
        self.oids = oids
        self.job_id = job_id
        self.size_bytes = 16 * len(oids)


class DispatchCommand(Message):
    """Centrally dispatch one concrete command (one message per task)."""

    def __init__(self, command: Command, block_seq: int, report: bool = False):
        self.command = command
        self.block_seq = block_seq
        self.report = report  # send the written value back with completion
        self.size_bytes = TASK_DESC_BYTES


class DispatchCommandBatch(Message):
    """Centrally dispatch a coalesced command list to one worker.

    One message carries every command a block run schedules on that worker
    (in dispatch order, so worker-side conflict tracking sees the same
    sequence as individual dispatches). The wire size and the worker's
    per-command enqueue cost are both charged per task — batching saves
    messages and per-message control-plane work, not modeled task work.
    """

    def __init__(self, items: List[Tuple[Command, bool]], block_seq: int):
        self.items = items  # [(command, report)]
        self.block_seq = block_seq
        self.size_bytes = TASK_DESC_BYTES * len(items)


class InstallWorkerTemplate(Message):
    """Install the worker half of a worker template (§4.1)."""

    def __init__(self, block_id: str, version: int, entries, reports: List[int],
                 job_id: int = 0):
        self.block_id = block_id
        self.version = version
        self.entries = entries  # list[TemplateEntry]
        self.reports = reports  # entry indices whose written value is reported
        self.job_id = job_id
        self.size_bytes = TASK_DESC_BYTES * len(entries)


class InstantiateWorkerTemplate(Message):
    """Instantiate a cached worker template: ids + params (+ edits) (§2.2/4.3)."""

    def __init__(
        self,
        block_id: str,
        version: int,
        instance_id: int,
        cid_base: int,
        params: Dict[str, Any],
        block_seq: int,
        edits=None,
        job_id: int = 0,
    ):
        self.block_id = block_id
        self.version = version
        self.instance_id = instance_id
        self.cid_base = cid_base
        self.params = params
        self.block_seq = block_seq
        self.edits = edits or []
        self.job_id = job_id
        num = 0  # sized below by the controller, which knows the entry count
        self.size_bytes = TASK_ID_BYTES * num + PARAM_BLOCK_BYTES


class SelfScheduleWindow(Message):
    """Grant a worker a window of template instances to self-schedule.

    Decentralized mode (DESIGN.md §14): the controller validates the
    window once, allocates every instance's ids up front, and hands the
    worker the full schedule. The worker then advances instance to
    instance locally — no per-instance controller round-trip — but must
    observe the partition-map ``epoch`` before crossing each block
    boundary. Wire size equals the sum of the per-instance
    ``InstantiateWorkerTemplate`` messages it replaces (set by the
    controller, which knows the entry count).
    """

    def __init__(
        self,
        window_id: int,
        block_id: str,
        version: int,
        epoch: int,
        instances,
        job_id: int = 0,
        edits=None,
        reply_to=None,
        barrier_seq: int = 0,
    ):
        # instances: [(instance_id, cid_base, block_seq, params)]
        self.window_id = window_id
        self.block_id = block_id
        self.version = version
        self.epoch = epoch
        self.instances = instances
        self.job_id = job_id
        self.edits = edits or []
        # sharded mode: actor name the WindowSummary goes back to (the
        # owning shard); None sends it to the coordinator as before
        self.reply_to = reply_to
        # sharded mode: the coordinator→worker channel sequence this
        # window must not overtake. A shard-relayed window travels a
        # different channel than the coordinator's own dispatch stream,
        # so without this causal barrier it could start instance N+1
        # before the (retransmitting) central dispatch of instance N has
        # even arrived. 0 means no barrier (decentralized mode).
        self.barrier_seq = barrier_seq
        self.size_bytes = PARAM_BLOCK_BYTES * max(1, len(instances))


class EpochUpdate(Message):
    """Broadcast a new partition-map epoch (decentralized mode).

    Any outstanding grant issued under an older epoch stalls at its next
    block boundary until the controller re-grants the remainder.
    """

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.size_bytes = 16


class InstallPatch(Message):
    """Send a patch's full command list and cache it under ``patch_id`` (§4.2)."""

    def __init__(self, patch_id: int, entries, cid_base: int, instance_id: int):
        self.patch_id = patch_id
        self.entries = entries  # list[TemplateEntry] (SEND/RECV only)
        self.cid_base = cid_base
        self.instance_id = instance_id
        self.size_bytes = TASK_DESC_BYTES * len(entries)


class InstantiatePatch(Message):
    """Invoke a patch already cached at the worker (single command, §4.2)."""

    def __init__(self, patch_id: int, cid_base: int, instance_id: int):
        self.patch_id = patch_id
        self.cid_base = cid_base
        self.instance_id = instance_id
        self.size_bytes = 32


class Halt(Message):
    """Terminate ongoing tasks and flush queues (recovery, §4.4)."""


class SaveCheckpoint(Message):
    """Write all live objects to durable storage."""

    def __init__(self, checkpoint_id: int):
        self.checkpoint_id = checkpoint_id


class LoadCheckpoint(Message):
    """Load the given objects from durable storage into local memory."""

    def __init__(self, checkpoint_id: int, oids: List[int]):
        self.checkpoint_id = checkpoint_id
        self.oids = oids
        self.size_bytes = 16 * len(oids)


class ManagerDirective(Message):
    """A cluster-manager action executed in controller context.

    Experiments (and the dynamic-scheduling benchmarks) deliver these to
    drive migrations, evictions, and restorations — the "cluster manager"
    role of Figure 2. ``action`` receives the controller instance.
    """

    def __init__(self, action):
        self.action = action
        self.size_bytes = 64


# ---------------------------------------------------------------------------
# worker → controller
# ---------------------------------------------------------------------------
class CommandComplete(Message):
    """Per-command completion ack (central path)."""

    def __init__(self, worker_id: int, cid: int, block_seq: int,
                 duration: float, value: Any = None, oid: Optional[int] = None):
        self.worker_id = worker_id
        self.cid = cid
        self.block_seq = block_seq
        self.duration = duration
        self.value = value
        self.oid = oid
        self.size_bytes = 64


class CommandCompleteBatch(Message):
    """Coalesced per-command completions (central path).

    A worker's completions within one flush window ride in a single
    message; the controller charges its per-completion cost for each item,
    so only message and event overhead is saved — never modeled work.
    """

    def __init__(self, worker_id: int,
                 items: List[Tuple[int, int, float, Any, Optional[int]]]):
        self.worker_id = worker_id
        self.items = items  # [(cid, block_seq, duration, value, oid)]
        self.size_bytes = 64 * len(items)


class InstanceComplete(Message):
    """Per-block-instance completion (template path): one message per worker.

    ``task_times`` optionally piggybacks per-task execution timings for the
    adaptive rebalancer: {local entry index -> duration}. Timings ride in
    the fixed 64-byte completion header (the worker already owes the
    controller one completion per instance), so attaching them never
    changes ``size_bytes`` — a rebalancer-enabled run that takes no action
    stays bit-identical to a rebalancer-off run.
    """

    def __init__(self, worker_id: int, block_id: str, instance_id: int,
                 block_seq: int, compute_time: float,
                 values: Dict[int, Any], version: int = 0,
                 task_times: Optional[Dict[int, float]] = None):
        self.worker_id = worker_id
        self.block_id = block_id
        self.instance_id = instance_id
        self.block_seq = block_seq
        self.compute_time = compute_time  # sum of task durations this instance
        self.values = values  # oid -> reported value
        self.version = version  # worker-template version this instance ran
        self.task_times = task_times  # local entry index -> duration
        self.size_bytes = 64 + 32 * len(values)


class WindowSummary(Message):
    """Coarse per-window progress report (decentralized mode).

    One message replaces the per-instance ``InstanceComplete`` stream for
    a whole self-schedule window. ``rows`` carry the same per-instance
    facts (and bytes) the individual completions would have; ``stalled``
    marks a window interrupted by a partition-map epoch change, in which
    case ``next_index`` tells the controller where to re-grant from.
    """

    def __init__(self, worker_id: int, window_id: int, rows,
                 job_id: int = 0, stalled: bool = False, next_index: int = 0,
                 ctrl_seq: int = 0):
        # rows: [(instance_id, block_seq, compute_time, values, task_times,
        #         finished_at)] — finished_at is the worker-local completion
        # time, so block-end statistics stay honest even though the
        # controller only folds them at the window boundary
        self.worker_id = worker_id
        self.window_id = window_id
        self.rows = rows
        self.job_id = job_id
        self.stalled = stalled
        self.next_index = next_index
        # sharded mode: the worker→coordinator channel sequence this
        # summary must not overtake (the reverse causal barrier — a
        # shard-relayed summary must not be folded before the worker's
        # earlier direct completions have been handled). 0 = no barrier.
        self.ctrl_seq = ctrl_seq
        self.size_bytes = 64 + sum(32 * len(values)
                                   for _i, _s, _c, values, _t, _f in rows)


# ---------------------------------------------------------------------------
# coordinator ↔ controller shard (sharded mode, DESIGN.md §16)
# ---------------------------------------------------------------------------
class ShardWindow(Message):
    """One shard's slice of a self-schedule window (coordinator → shard).

    ``grants`` is ``[(worker_id, SelfScheduleWindow)]`` for exactly the
    workers this shard owns. The shard relays each inner window to its
    worker on its own control thread — the coordinator pays one message
    per *shard* instead of one per worker, which is the entire point of
    the mode.
    """

    def __init__(self, window_id: int, grants, job_id: int = 0):
        self.window_id = window_id
        self.grants = grants
        self.job_id = job_id
        self.size_bytes = 32 + sum(win.size_bytes for _w, win in grants)


class ShardWindowSummary(Message):
    """Aggregated window progress for one shard (shard → coordinator).

    ``summaries`` carries the raw per-worker :class:`WindowSummary`
    messages the shard collected; the coordinator folds them exactly as
    it would have folded the direct stream. A stalled summary is
    forwarded immediately (alone) so the re-grant is not delayed behind
    the shard's other workers.
    """

    def __init__(self, shard_id: int, window_id: int, summaries,
                 job_id: int = 0):
        self.shard_id = shard_id
        self.window_id = window_id
        self.summaries = summaries
        self.job_id = job_id
        self.size_bytes = 32 + sum(s.size_bytes for s in summaries)


class ShardRegrant(Message):
    """Re-grant a stalled worker's window remainder via its shard."""

    def __init__(self, worker_id: int, window, job_id: int = 0):
        self.worker_id = worker_id
        self.window = window  # SelfScheduleWindow for the remainder
        self.job_id = job_id
        self.size_bytes = 16 + window.size_bytes


class ShardAbort(Message):
    """Drop a shard's window state (worker death or job release).

    ``window_id=None`` drops every window of ``job_id`` — the release
    path's bulk form.
    """

    def __init__(self, job_id: int, window_id=None):
        self.job_id = job_id
        self.window_id = window_id
        self.size_bytes = 16


class Heartbeat(Message):
    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.size_bytes = 16


class HaltAck(Message):
    def __init__(self, worker_id: int):
        self.worker_id = worker_id


class CheckpointAck(Message):
    def __init__(self, worker_id: int, checkpoint_id: int):
        self.worker_id = worker_id
        self.checkpoint_id = checkpoint_id


class LoadAck(Message):
    def __init__(self, worker_id: int, checkpoint_id: int):
        self.worker_id = worker_id
        self.checkpoint_id = checkpoint_id


# ---------------------------------------------------------------------------
# worker ↔ worker
# ---------------------------------------------------------------------------
class DataMessage(Message):
    """Pushed copy payload, tagged for RECV matching (§3.4)."""

    def __init__(self, tag: Hashable, oid: int, payload: Any, size_bytes: int):
        self.tag = tag
        self.oid = oid
        self.payload = payload
        self.size_bytes = max(size_bytes, 64)


# ---------------------------------------------------------------------------
# Reliable channels (chaos hardening)
# ---------------------------------------------------------------------------
# The paper's implementation rides on TCP, so every control message enjoys
# exactly-once, in-order delivery even though the physical network drops,
# delays, duplicates, and reorders packets. The simulation reproduces that
# transport guarantee here: every directed (sender, receiver) pair of
# reliable endpoints forms a *channel* with per-message sequence numbers,
# receiver-side acks, sender-side retransmission with exponential backoff,
# and receiver-side dedup + in-order release. On top of a faulty
# :class:`~repro.chaos.ChaosNetwork` this yields at-least-once delivery on
# the wire and effectively-once, in-order delivery to the application.

class Ack(Message):
    """Channel-level acknowledgement of one sequence number.

    Acks are transport control traffic: they carry no application payload,
    are never themselves sequenced or retransmitted (a lost ack simply
    triggers a retransmission, which is re-acked), and are consumed at
    delivery time without occupying the receiver's control thread.
    """

    size_bytes = 16

    def __init__(self, acker: str, seq: int):
        self.acker = acker  # name of the actor that received the message
        self.seq = seq


#: initial retransmission timeout — generous next to the 100 µs link
#: latency so fault-free runs never retransmit spuriously
RELIABLE_RTO = 0.25
RELIABLE_RTO_BACKOFF = 2.0
RELIABLE_RTO_MAX = 2.0
#: give up after this many retransmissions (a destination unreachable for
#: this long is dead; failure recovery, not the transport, takes over)
RELIABLE_MAX_RETRIES = 30


class ReliableEndpoint:
    """Mixin over :class:`~repro.sim.actor.Actor` adding reliable channels.

    Subclasses call :meth:`_init_reliable` during construction and use
    :meth:`send_reliable` instead of ``send`` for messages that must
    survive drops, duplication, and reordering. Messages sent to peers
    that are not reliable endpoints (e.g. bare test doubles) fall back to
    plain unreliable sends, so unit fixtures keep working unchanged.

    The receive half lives in :meth:`deliver` — acks are emitted the
    moment a message *arrives* (like kernel TCP acks), independent of how
    backed up the receiving control thread is, which keeps a saturated
    controller from triggering spurious retransmissions.
    """

    def _init_reliable(self, metrics=None) -> None:
        self._rel_metrics = metrics
        self._rel_send_seq: Dict[str, int] = {}  # dst name -> last seq used
        # (dst name, seq) -> [dst actor, msg, attempts, deadline, rto]
        self._rel_unacked: Dict[Tuple[str, int], list] = {}
        self._rel_recv_next: Dict[str, int] = {}  # src name -> next expected
        self._rel_held: Dict[str, Dict[int, Message]] = {}  # out-of-order
        # retransmission timer wheel: a min-heap of (deadline, dst name,
        # seq) with lazy deletion — an entry is stale when the message was
        # acked (key gone) or rescheduled (deadline mismatch). One engine
        # timer is armed at the earliest live deadline; a full ack cancels
        # it, so fault-free steady state runs zero retransmission events.
        self._rel_wheel: List[Tuple[float, str, int]] = []
        self._rel_wake = None  # pending engine Event, if armed
        self._rel_wake_time = float("inf")

    def channel_seq(self, dst_name: str) -> int:
        """Last sequence number sent to ``dst_name`` on this endpoint's
        reliable channel — the causal-barrier stamp for messages that
        travel a *different* channel but must not overtake this one."""
        return self._rel_send_seq.get(dst_name, 0)

    # -- sender side ---------------------------------------------------
    def send_reliable(self, dst, msg: Message) -> None:
        """Send ``msg`` over the reliable channel to ``dst``.

        Self-sends on a lossless network skip the reliable framing
        entirely: loopback delivery is FIFO with no link contention, the
        ack would ride the same loopback (round trip ``2 x
        loopback_latency``, six orders of magnitude under the RTO), so
        neither a drop nor a spurious retransmission is possible and the
        bookkeeping is provably unobservable. ``Network.partition`` flips
        ``lossless`` off permanently, so this can never race a heal.

        Remote sends always take the fully-tracked path, even on a
        lossless network. Retransmissions there are *not* loss-driven
        only: an ack serialized behind a long data transfer can overrun
        the RTO and trigger a spurious retransmission (TCP under
        congestion does the same), whose duplicate occupies real link
        time — modeled behavior that eliding the tracking would erase.
        """
        if not isinstance(dst, ReliableEndpoint):
            self.send(dst, msg)  # peer speaks only the raw protocol
            return
        if (dst is self and self._fused and self._trace is None
                and self.network is not None and self.network.lossless):
            # the receiver treats an unframed message as a direct delivery
            self.send(dst, msg)
            return
        seq = self._rel_send_seq.get(dst.name, 0) + 1
        self._rel_send_seq[dst.name] = seq
        msg.rel_seq = seq
        msg.rel_src = self.name
        if self._trace is not None:
            self._trace.flow_send(self.name, dst.name, seq,
                                  type(msg).__name__)
        # The RTO clock starts at *transmission*, not at this call: a
        # message sent from inside a long handler does not depart until
        # the handler's charged time has elapsed (see ``Actor.send``), and
        # a real transport never times out bytes still sitting in its own
        # egress buffer. Arming from the call time instead made every
        # message queued behind a multi-second handler retransmit
        # spuriously, up to the retry cap.
        depart = max(self.sim._now, self._handler_start + self._charged)
        deadline = depart + RELIABLE_RTO
        self._rel_unacked[(dst.name, seq)] = [
            dst, msg, 0, deadline, RELIABLE_RTO,
        ]
        self.send(dst, msg)
        heapq.heappush(self._rel_wheel, (deadline, dst.name, seq))
        self._rel_arm(deadline)

    def _rel_arm(self, deadline: float) -> None:
        """Make sure the wake timer fires no later than ``deadline``."""
        if deadline >= self._rel_wake_time:
            return
        if self._rel_wake is not None:
            self._rel_wake.cancel()
        # scheduled directly on the engine: retransmission is transport
        # work and must not queue behind the application control thread
        self._rel_wake = self.sim.schedule_at(deadline, self._rel_on_wake)
        self._rel_wake_time = deadline

    def _rel_disarm(self) -> None:
        if self._rel_wake is not None:
            self._rel_wake.cancel()
            self._rel_wake = None
        self._rel_wake_time = float("inf")
        self._rel_wheel.clear()

    def _rel_on_wake(self) -> None:
        self._rel_wake = None
        self._rel_wake_time = float("inf")
        if not self._rel_alive():
            self._rel_unacked.clear()  # a crashed endpoint retransmits nothing
            self._rel_wheel.clear()
            return
        now = self.sim._now
        wheel = self._rel_wheel
        unacked = self._rel_unacked
        while wheel and wheel[0][0] <= now + 1e-12:
            deadline, dst_name, seq = heapq.heappop(wheel)
            entry = unacked.get((dst_name, seq))
            if entry is None or entry[3] != deadline:
                continue  # stale: acked, abandoned, or already rescheduled
            dst, msg, attempts, _deadline, rto = entry
            if attempts >= RELIABLE_MAX_RETRIES or not self._rel_should_retry(dst):
                del unacked[(dst_name, seq)]
                self._rel_incr("protocol.abandoned")
                continue
            entry[2] = attempts + 1
            entry[4] = min(rto * RELIABLE_RTO_BACKOFF, RELIABLE_RTO_MAX)
            entry[3] = now + entry[4]
            self.send(dst, msg)
            self._rel_incr("protocol.retries")
            heapq.heappush(wheel, (entry[3], dst_name, seq))
        if not unacked:
            wheel.clear()
            return
        # drop acked/rescheduled heads so the next wake is armed at a
        # *live* deadline — otherwise each stale entry costs one wake
        while wheel:
            deadline, dst_name, seq = wheel[0]
            entry = unacked.get((dst_name, seq))
            if entry is not None and entry[3] == deadline:
                self._rel_arm(deadline)
                return
            heapq.heappop(wheel)

    def _rel_should_retry(self, dst) -> bool:
        """Whether retransmitting to ``dst`` is still worthwhile."""
        return not getattr(dst, "_dead", False)

    # -- receiver side -------------------------------------------------
    def deliver(self, msg: Message) -> None:
        if not self._rel_alive():
            return  # crashed endpoints neither ack nor process anything
        if isinstance(msg, Ack):
            self._rel_unacked.pop((msg.acker, msg.seq), None)
            if not self._rel_unacked:
                self._rel_disarm()  # nothing pending: no wake, empty wheel
            return
        seq = msg.rel_seq
        if seq is None:
            super().deliver(msg)
            return
        src = msg.rel_src
        # ack unconditionally: a lost ack means the sender retransmits a
        # message we already have, and the retransmission must re-ack
        peer = self.network.actors.get(src) if self.network else None
        if peer is not None:
            self.send(peer, Ack(self.name, seq))
        expected = self._rel_recv_next.get(src, 1)
        held = self._rel_held.setdefault(src, {})
        if seq < expected or seq in held:
            self._rel_incr("protocol.dup_discards")
            return
        if seq > expected:
            held[seq] = msg  # out of order: hold until the gap fills
            self._rel_incr("protocol.reorder_holds")
            return
        self._rel_recv_next[src] = seq + 1
        if self._trace is not None:
            self._trace.flow_recv(src, self.name, seq)
        super().deliver(msg)
        while True:
            nxt = self._rel_recv_next[src]
            pending = held.pop(nxt, None)
            if pending is None:
                break
            self._rel_recv_next[src] = nxt + 1
            if self._trace is not None:
                self._trace.flow_recv(src, self.name, nxt)
            super().deliver(pending)

    def _rel_alive(self) -> bool:
        return True

    def _timer_alive(self) -> bool:
        # timer callbacks on a crashed endpoint are dropped, exactly as
        # their _Callback delivery would have been
        return self._rel_alive()

    def _rel_incr(self, name: str) -> None:
        if self._rel_metrics is not None:
            self._rel_metrics.incr(name)
