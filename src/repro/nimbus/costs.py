"""Calibrated control-plane cost model.

Every control-plane operation in the simulation charges virtual CPU time
from this model. The defaults are the paper's own micro-benchmark numbers
(Tables 1–3 and §5.1), so the macro experiments (Figures 7–11) follow from
the *measured* per-operation costs plus the real message flow produced by
our template implementation — the same way the paper's macro numbers follow
from its micro numbers.

All values are seconds (per task / per command unless noted).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class CostModel:
    """Per-operation control-plane costs. Defaults reproduce the paper."""

    # -- central (non-template) scheduling, Table 1 -----------------------
    #: Controller cost to build, analyze and dispatch one task centrally.
    #: Together with ``central_receive_per_task`` this reproduces the
    #: 134 µs/task of Table 1; the receive part is the driver→controller
    #: task-stream parsing that template instantiation eliminates first
    #: (Fig. 9, iteration 11).
    central_schedule_per_task: float = 104e-6
    #: Controller cost to receive/parse one task description from the driver.
    central_receive_per_task: float = 30e-6
    #: Spark driver cost to schedule one task (Table 1, used by baselines).
    spark_schedule_per_task: float = 166e-6

    # -- template installation, Table 1 -----------------------------------
    #: Adding one task to a controller template at install time.
    install_controller_template_per_task: float = 25e-6
    #: Building the controller half of a worker template, per task.
    install_worker_template_controller_per_task: float = 15e-6
    #: Installing the worker half of a worker template, per task (at worker).
    install_worker_template_worker_per_task: float = 9e-6

    # -- template instantiation, Table 2 -----------------------------------
    #: Filling task ids/parameters into a controller template, per task.
    instantiate_controller_template_per_task: float = 0.2e-6
    #: Worker-template instantiation when auto-validation applies, per task.
    instantiate_worker_template_auto_per_task: float = 1.7e-6
    #: Worker-template instantiation with a full validation pass, per task.
    instantiate_worker_template_validate_per_task: float = 7.3e-6

    # -- edits and patches, Table 3 ----------------------------------------
    #: One edit (add or remove one task, including copy splicing).
    edit_per_task: float = 41e-6
    #: Computing one patch copy command on a patch-cache miss.
    patch_compute_per_copy: float = 20e-6
    #: Invoking a cached patch (single message, §4.2).
    patch_cache_invoke: float = 5e-6

    # -- baseline profiles --------------------------------------------------
    #: Naiad per-task cost of compiling+installing its dataflow graph.
    #: 230 ms / 8000 tasks (Table 3).
    naiad_install_per_task: float = 28.75e-6
    #: Naiad per-task progress-tracking callback overhead at each worker
    #: (the "many callbacks for the small data partitions" of §5.3). At
    #: 0.8 ms/callback the worker's control thread becomes the bottleneck
    #: exactly when partitions are small (100 workers: 80 callbacks of
    #: 0.8 ms vs 41 ms of compute), reproducing the paper's 60-vs-80 ms
    #: gap at 100 workers while staying hidden at 20-50 workers.
    naiad_callback_per_task: float = 800e-6
    #: Per-iteration epoch coordination rounds in Naiad's progress protocol.
    naiad_epoch_rounds: int = 2

    # -- worker-side handling ----------------------------------------------
    #: Worker control-thread cost to enqueue one centrally-dispatched command.
    worker_enqueue_per_command: float = 2e-6
    #: Worker control-thread cost per command when instantiating a template
    #: (index-array fill; cheaper than parsing individual commands).
    worker_instantiate_per_command: float = 0.5e-6
    #: Worker cost to process a task-completion bookkeeping step.
    worker_complete_per_command: float = 1e-6
    #: Worker cost to apply one edit to a cached template.
    worker_edit_per_task: float = 9e-6

    # -- decentralized self-scheduling (DESIGN.md §14) -----------------------
    #: Controller cost to extend a self-schedule grant by one task: id
    #: allocation and parameter-slot capture, without the per-instance
    #: validation pass (the window validates once). Matches the
    #: controller-template fill rate of Table 2.
    self_schedule_grant_per_task: float = 0.2e-6
    #: Worker control-thread cost to self-advance to the next template
    #: instance of a grant (the local scheduling decision that replaces a
    #: controller round-trip).
    worker_self_schedule_per_instance: float = 2e-6

    # -- controller-side misc ------------------------------------------------
    #: Controller cost to process one per-task completion ack (central mode).
    controller_completion_per_task: float = 2e-6
    #: Controller cost to process a per-block completion message.
    controller_block_completion: float = 20e-6
    #: Fixed cost of handling any driver/worker message.
    message_handling: float = 5e-6

    # -- durable storage ------------------------------------------------------
    #: Bytes/second for checkpoint save/load at each worker.
    storage_bandwidth: float = 200e6
    #: Fixed latency per file command.
    storage_latency: float = 2e-3

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with all per-task costs scaled by ``factor``.

        Used by ablation benches to explore sensitivity to control-plane
        speed (e.g. "what if the controller were 2x slower?").
        """
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "central_schedule_per_task",
                "central_receive_per_task",
                "spark_schedule_per_task",
                "install_controller_template_per_task",
                "install_worker_template_controller_per_task",
                "install_worker_template_worker_per_task",
                "instantiate_controller_template_per_task",
                "instantiate_worker_template_auto_per_task",
                "instantiate_worker_template_validate_per_task",
                "edit_per_task",
            )
        }
        return replace(self, **fields)


#: The paper-calibrated default model.
PAPER_COSTS = CostModel()
