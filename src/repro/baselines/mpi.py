"""MPI-like baseline: application-level messaging, no control plane (§5.5).

PhysBAM's hand-tuned MPI libraries statically partition the simulation;
every rank runs the same loop and exchanges ghost regions directly with its
neighbors. There is no controller work at all — and correspondingly no
load rebalancing and no fault tolerance ("in practice developers rarely
use them due to their brittle behavior", §5.5).

The baseline is modeled as the same dataflow (tasks, ghost-exchange
copies, reductions) executed with a zero-cost control plane: every
controller/driver/worker control charge is zero, leaving only computation
and data movement. This is the lower bound an ideal static schedule
achieves, which is what the hand-tuned MPI numbers in Figure 11 represent.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..nimbus.cluster import NimbusCluster
from ..nimbus.costs import CostModel, PAPER_COSTS
from ..nimbus.runtime import FunctionRegistry


def make_mpi_costs(base: Optional[CostModel] = None) -> CostModel:
    """Zero out every control-plane cost; keep storage characteristics."""
    base = base or PAPER_COSTS
    return replace(
        base,
        central_schedule_per_task=0.0,
        central_receive_per_task=0.0,
        spark_schedule_per_task=0.0,
        install_controller_template_per_task=0.0,
        install_worker_template_controller_per_task=0.0,
        install_worker_template_worker_per_task=0.0,
        instantiate_controller_template_per_task=0.0,
        instantiate_worker_template_auto_per_task=0.0,
        instantiate_worker_template_validate_per_task=0.0,
        edit_per_task=0.0,
        patch_compute_per_copy=0.0,
        patch_cache_invoke=0.0,
        naiad_install_per_task=0.0,
        naiad_callback_per_task=0.0,
        worker_enqueue_per_command=0.0,
        worker_instantiate_per_command=0.0,
        worker_complete_per_command=0.0,
        worker_edit_per_task=0.0,
        controller_completion_per_task=0.0,
        controller_block_completion=0.0,
        message_handling=0.0,
    )


class MPICluster(NimbusCluster):
    """An MPI-like deployment: the same dataflow with free control.

    Templates are enabled purely as the cheapest execution vehicle; with
    all control costs zeroed, iteration time is computation plus direct
    data exchange — the static-schedule lower bound.
    """

    def __init__(
        self,
        num_workers: int,
        program: Callable,
        registry: Optional[FunctionRegistry] = None,
        **kwargs,
    ):
        super().__init__(
            num_workers,
            program,
            registry=registry,
            costs=make_mpi_costs(),
            use_templates=True,
            **kwargs,
        )
