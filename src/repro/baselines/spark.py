"""Spark-like baseline: a purely centralized per-task scheduler (§5.1).

Spark's driver/controller dispatches every task individually and processes
every completion; the paper measures its per-task scheduling cost at 166 µs
(Table 1), which caps throughput near 6,000 tasks/second (Fig. 8). The
baseline reuses the Nimbus workers and network verbatim — only the control
plane differs: templates are disabled and the central path charges Spark's
per-task cost. Task bodies follow the paper's "Spark-opt" methodology:
spin waits as long as the C++ tasks, so the comparison isolates the control
plane.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..nimbus.cluster import NimbusCluster
from ..nimbus.controller import Controller
from ..nimbus.costs import CostModel, PAPER_COSTS
from ..nimbus.runtime import FunctionRegistry
from ..nimbus import protocol as P


def make_spark_costs(base: Optional[CostModel] = None) -> CostModel:
    """Cost profile of the Spark control plane (Table 1).

    The driver and scheduler are one process, so there is no separate
    driver→controller task-stream parse; the whole 166 µs is scheduling.
    """
    base = base or PAPER_COSTS
    return replace(
        base,
        central_schedule_per_task=166e-6,
        central_receive_per_task=0.0,
    )


class SparkController(Controller):
    """Spark's BSP scheduler: one stage in flight at a time.

    Spark dispatches a stage's tasks, waits for all of them to complete at
    the driver, then launches the next stage; independent jobs queue behind
    the active one. This keeps completion processing interleaved with
    dispatch (as Spark's driver threads do) and reproduces the per-stage
    barriers of its execution model.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # queue of (run, [(stage_name, [(task, params)])], returns_rev)
        self._stage_queue: Deque[Tuple] = deque()
        self._active: Optional[Tuple] = None
        self._stage_outstanding = 0

    def _on_submit_block(self, ctx, msg: P.SubmitBlock) -> None:
        self.charge(self.costs.message_handling)
        run = self._new_run(ctx, msg.block.block_id, msg.block.num_tasks,
                            "central", request_id=msg.request_id)
        run.open = True
        returns_rev = {oid: name for name, oid in msg.block.returns.items()}
        stages = [
            (stage.name,
             [(task, msg.params.get(task.param_slot) if task.param_slot
               else None) for task in stage.tasks])
            for stage in msg.block.stages
        ]
        self._stage_queue.append((run, deque(stages), returns_rev))
        self._pump()

    def _pump(self) -> None:
        """Dispatch the next stage if none is in flight."""
        if self._active is not None and self._stage_outstanding > 0:
            return
        while self._stage_queue or self._active:
            if self._active is None:
                self._active = self._stage_queue.popleft()
            run, stages, returns_rev = self._active
            if not stages:
                self._active = None
                continue
            _name, tasks = stages.popleft()
            if not stages:
                run.open = False  # last stage: completion may close the run
            for task, params in tasks:
                worker = self._assign_worker(run.ctx, task.read, task.write)
                self.charge(self.costs.central_schedule_per_task)
                self._schedule_task_centrally(
                    run, task.function, task.read, task.write, worker,
                    params, returns_rev)
            self.metrics.incr("tasks_scheduled", len(tasks))
            # prior stages fully drained at the barrier, so everything
            # outstanding belongs to the stage just dispatched
            self._stage_outstanding = run.outstanding
            return

    def _complete_command(self, worker_id, cid, block_seq, duration, value):
        super()._complete_command(worker_id, cid, block_seq, duration, value)
        if self._active is not None:
            run = self._active[0]
            if block_seq == run.seq:
                self._stage_outstanding -= 1
                if self._stage_outstanding <= 0:
                    if not self._active[1]:  # all stages dispatched and done
                        self._active = None
                    self._pump()

    def _on_instantiate_block(self, ctx, msg: P.InstantiateBlock) -> None:
        raise RuntimeError("Spark has no templates to instantiate")


class SparkCluster(NimbusCluster):
    """A Spark-like deployment: centralized BSP scheduling, no templates."""

    def __init__(
        self,
        num_workers: int,
        program: Callable,
        registry: Optional[FunctionRegistry] = None,
        costs: Optional[CostModel] = None,
        **kwargs,
    ):
        super().__init__(
            num_workers,
            program,
            registry=registry,
            costs=costs or make_spark_costs(),
            use_templates=False,
            **kwargs,
        )
        spark = SparkController(
            self.sim, self.costs, self.metrics,
            slots_per_worker=self.controller.slots_per_worker,
        )
        self.network.attach(spark)
        spark.attach_workers(self.workers)
        spark.driver = self.driver
        self.driver.controller = spark
        for worker in self.workers.values():
            worker.controller = spark
        self.controller = spark
