"""Comparison control planes: Spark-like, Naiad-like, and MPI-like."""

from .mpi import MPICluster, make_mpi_costs
from .naiad import NaiadCluster, NaiadController
from .spark import SparkCluster, make_spark_costs

__all__ = [
    "MPICluster",
    "NaiadCluster",
    "NaiadController",
    "SparkCluster",
    "make_mpi_costs",
    "make_spark_costs",
]
