"""Naiad-like baseline: static distributed data flow (§5.1, §5.3).

Naiad (and TensorFlow, whose control plane the paper calls "very similar")
compiles the job into a data flow graph installed on every worker once, at
job start; workers then generate and schedule tasks locally and exchange
data directly. Strong points and weaknesses both follow:

* per-epoch central work is ~zero — iterations run at full distributed
  speed, with a small per-task progress-tracking callback overhead at each
  worker (the paper's §5.3 note about "many callbacks for the small data
  partitions");
* *any* scheduling change — even migrating one task — requires stopping the
  job, recompiling the flow graph, and reinstalling it everywhere, a fixed
  ~230 ms for the 8,000-task logistic regression (Table 3).

The implementation reuses the worker-template machinery as the installed
data flow (the paper notes Naiad's graphs "can be thought of as an extreme
case of execution templates": one very large, long-running basic block) but
charges no validation/instantiation costs and performs no patching or
edits — the graph is static.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.validation import full_validate
from ..core.worker_template import generate_worker_templates
from ..nimbus.cluster import NimbusCluster
from ..nimbus.controller import Controller
from ..nimbus.costs import CostModel, PAPER_COSTS
from ..nimbus.runtime import FunctionRegistry
from ..nimbus import protocol as P
from ..core.controller_template import ControllerTemplate
from ..core.patching import build_patch


class NaiadController(Controller):
    """Controller variant modeling Naiad's static-dataflow control plane."""

    def _on_submit_block(self, ctx, msg: P.SubmitBlock) -> None:
        """First submission of a block: compile + install the data flow.

        Charged at the paper's measured rate (~28.75 µs/task, i.e. 230 ms
        for 8,000 tasks, Table 3). The initial data distribution is loaded
        into the flow at install time (no patching exists afterwards).
        """
        block = msg.block
        if block.block_id in self.templates:
            # a re-submission without templates enabled cannot happen: the
            # Naiad driver always instantiates after the first install
            raise RuntimeError("Naiad data flow already installed")
        self.charge(self.costs.naiad_install_per_task * block.num_tasks)
        assignment = [
            self._assign_worker(ctx, task.read, task.write)
            for _stage, task in block.all_tasks()
        ]
        template = ControllerTemplate.from_block(block, assignment)
        self.templates[block.block_id] = template
        self.phase[block.block_id] = self.PHASE_WT_INSTALLED
        self.current_version[block.block_id] = 0
        self.assignments[(block.block_id, 0)] = assignment
        wts = generate_worker_templates(template, self.object_sizes(), 0)
        self.worker_templates[wts.key] = wts
        self._install_worker_halves(ctx, wts)
        self.metrics.incr("naiad_installs")

        # initial data distribution: part of graph installation, not a
        # runtime patch (Naiad has none)
        violations = full_validate(wts, self.directory)
        if violations:
            patch = build_patch(violations, self.directory,
                                self.object_sizes(),
                                patch_id=self.patch_cache.allocate_id())
            instance_id = self._next_instance
            self._next_instance += 1
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send(self.workers[worker], P.InstallPatch(
                    patch.patch_id, patch.entries[worker], cid_base,
                    instance_id))
            patch.apply_to_directory(self.directory)

        instance = template.instantiate(0, msg.params)
        self._instantiate_worker_templates(ctx, wts, instance, msg.params,
                                           msg.request_id)

    def _on_instantiate_block(self, ctx, msg: P.InstantiateBlock) -> None:
        """Epochs run with no central validation, patching, or edits."""
        template = self.templates[msg.block_id]
        version = self.current_version[msg.block_id]
        wts = self.worker_templates[(msg.block_id, version)]
        instance = template.instantiate(msg.task_id_base, msg.params)
        self._instantiate_worker_templates(ctx, wts, instance, msg.params,
                                           msg.request_id)
        self.metrics.incr("tasks_scheduled", 0)  # already counted inside

    def reinstall(self, block_id: str) -> None:
        """Any scheduling change: stop, recompile, reinstall (Table 3)."""
        template = self.templates[block_id]
        self.charge(self.costs.naiad_install_per_task * template.num_tasks)
        template.assignment_version += 1
        version = template.assignment_version
        self.current_version[block_id] = version
        wts = generate_worker_templates(
            template, self.object_sizes(), version)
        self.worker_templates[wts.key] = wts
        self._install_worker_halves(self._job0, wts)
        self.assignments[(block_id, version)] = [
            e.worker for e in template.entries
        ]
        # data redistribution to the new placement, also at install time
        violations = full_validate(wts, self.directory)
        if violations:
            patch = build_patch(violations, self.directory,
                                self.object_sizes(),
                                patch_id=self.patch_cache.allocate_id())
            instance_id = self._next_instance
            self._next_instance += 1
            for worker in patch.workers():
                cid_base = self._alloc_cids(patch.entry_count(worker))
                self.send(self.workers[worker], P.InstallPatch(
                    patch.patch_id, patch.entries[worker], cid_base,
                    instance_id))
            patch.apply_to_directory(self.directory)
        self.metrics.incr("naiad_installs")

    def migrate_tasks(self, block_id: str, moves, job_id: int = 0) -> str:
        """Naiad cannot edit an installed graph: every change reinstalls."""
        template = self.templates[block_id]
        for ct_index, dst in moves:
            template.reassign(ct_index, dst)
        self.reinstall(block_id)
        return "reinstall"


class NaiadCluster(NimbusCluster):
    """A Naiad-like deployment built on the shared worker substrate."""

    def __init__(
        self,
        num_workers: int,
        program: Callable,
        registry: Optional[FunctionRegistry] = None,
        costs: Optional[CostModel] = None,
        **kwargs,
    ):
        super().__init__(
            num_workers,
            program,
            registry=registry,
            costs=costs or PAPER_COSTS,
            use_templates=True,  # the driver instantiates after install
            **kwargs,
        )
        # swap the controller for the Naiad variant, rewiring everyone
        naiad = NaiadController(
            self.sim, self.costs, self.metrics,
            slots_per_worker=self.controller.slots_per_worker,
        )
        self.network.attach(naiad)
        naiad.attach_workers(self.workers)
        naiad.driver = self.driver
        self.driver.controller = naiad
        for worker in self.workers.values():
            worker.controller = naiad
            worker.callback_overhead = self.costs.naiad_callback_per_task
        self.controller = naiad
