"""Scheduling policies: how block instantiations become worker work.

The controller owns shared mechanism — id allocation, run bookkeeping,
the directory, validation, patching — and delegates the *dispatch
decision path* to a per-job :class:`SchedulingPolicy` (the seam ROADMAP
item 2 names, extending the rebalancer's pluggable-policy pattern):

* :class:`CentralizedPolicy` — the paper's control plane. Every
  instantiation is a driver→controller round-trip; the controller
  validates, patches, and ships one ``InstantiateWorkerTemplate`` per
  worker per instance (§2.2's n+1 messages).

* :class:`DecentralizedPolicy` — Canary-style self-scheduling
  (DESIGN.md §14). The driver submits *windows* of iterations; once a
  window entry reaches the installed/auto-validating steady state the
  controller validates the window once, allocates every instance's ids
  up front, and grants each worker the full schedule in one
  ``SelfScheduleWindow``. Workers advance instance to instance locally
  and report one ``WindowSummary`` back. The controller retains
  exclusive ownership of partition-map changes: windows are granted one
  at a time per job, so every window boundary is a quiesce point, and a
  partition-map epoch bump stalls any straggling grant at its next
  block boundary (the worker-side barrier).

* :class:`ShardedPolicy` — the sharded control plane (DESIGN.md §16).
  Same decisions as decentralized, but the window fan-out/fan-in is
  relayed through per-worker-range controller shards: the coordinator
  pays O(shards) messages per window instead of O(workers), which is
  what lets partition-map-owning control scale past one node.

Entries that do not auto-validate — the install staircase, blocks
needing full validation or patches — fall back to the centralized
per-entry path inside the window, so all modes produce bit-identical
computed values by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..nimbus import protocol as P


class SchedulingPolicy:
    """How one job's block instantiations turn into worker work."""

    mode = "abstract"

    def __init__(self, controller, ctx):
        self.controller = controller
        self.ctx = ctx

    def instantiate(self, msg: P.InstantiateBlock) -> None:
        """Process one (already de-duplicated, un-gated) instantiation."""
        raise NotImplementedError

    def instantiate_window(self, msg: P.InstantiateWindow) -> None:
        """Process a driver-submitted window of instantiations."""
        raise NotImplementedError

    def on_window_summary(self, msg: P.WindowSummary) -> None:
        raise NotImplementedError

    def submit_central(self, block, params, template_start: bool,
                       request_id: int) -> None:
        """Process a SubmitBlock (central/capture path)."""
        self.controller._run_block_centrally(
            self.ctx, block, params, capture=template_start,
            receive_cost=True, request_id=request_id)

    def outstanding_grants(self) -> int:
        """Self-schedule grants in flight (0 = quiesced, map may change)."""
        return 0

    def drop_worker(self, worker: int) -> None:
        """Reclaim a dead worker's share of any outstanding grant.

        No-op for policies that hold no worker-resident granted state
        (the centralized path tracks completions per command, and a dead
        worker's loss surfaces through recovery, not through grants)."""

    def reset(self) -> None:
        """Drop in-flight policy state (recovery or job release)."""


class CentralizedPolicy(SchedulingPolicy):
    """The paper's centralized control plane: one decision per instance."""

    mode = "centralized"

    def instantiate(self, msg: P.InstantiateBlock) -> None:
        self.controller._process_instantiate(self.ctx, msg)

    def instantiate_window(self, msg: P.InstantiateWindow) -> None:
        # a centralized driver never sends windows; degrade gracefully to
        # per-entry processing (value-identical) if one ever arrives
        for request_id, task_id_base, params in msg.entries:
            if self.controller._duplicate_request(self.ctx, request_id):
                continue
            self.controller._process_instantiate(self.ctx, P.InstantiateBlock(
                msg.block_id, msg.num_tasks, task_id_base, params,
                request_id, job_id=msg.job_id))

    def on_window_summary(self, msg: P.WindowSummary) -> None:
        raise TypeError(
            f"job {self.ctx.job_id} is centralized but worker "
            f"{msg.worker_id} sent a WindowSummary (window {msg.window_id})")


class _WindowGrant:
    """Controller-side state of one granted self-schedule window."""

    __slots__ = ("window_id", "block_id", "version", "seqs", "per_worker",
                 "expected", "progress", "ends")

    def __init__(self, window_id: int, block_id: str, version: int):
        self.window_id = window_id
        self.block_id = block_id
        self.version = version
        #: run seqs of the window's instances, in grant order
        self.seqs: List[int] = []
        #: worker -> [(instance_id, cid_base, block_seq, params)], the
        #: full per-worker schedule (kept for epoch-stall re-grants)
        self.per_worker: Dict[int, List[Tuple]] = {}
        self.expected: Set[int] = set()
        #: worker -> instances already started there (re-grant offset)
        self.progress: Dict[int, int] = {}
        #: seq -> latest worker-local finish time (the block's honest end)
        self.ends: Dict[int, float] = {}


class DecentralizedPolicy(SchedulingPolicy):
    """Worker self-scheduling: the controller grants, workers advance.

    Windows are granted one at a time per job; later submissions (windows
    *and* any interleaved central/instantiate traffic) queue in FIFO
    order behind the outstanding grant so cross-block submission order is
    preserved exactly as the centralized driver's backlog preserves it.
    """

    mode = "decentralized"

    def __init__(self, controller, ctx):
        super().__init__(controller, ctx)
        self._queue: List[Tuple] = []
        self._grant: Optional[_WindowGrant] = None

    # -- queue management ----------------------------------------------
    def outstanding_grants(self) -> int:
        return 0 if self._grant is None else 1

    def reset(self) -> None:
        self._queue.clear()
        self._grant = None

    def instantiate(self, msg: P.InstantiateBlock) -> None:
        self._queue.append(("instantiate", msg))
        self._pump()

    def instantiate_window(self, msg: P.InstantiateWindow) -> None:
        self._queue.append(("window", msg))
        self._pump()

    def submit_central(self, block, params, template_start: bool,
                       request_id: int) -> None:
        self._queue.append(("submit", block, params, template_start,
                            request_id))
        self._pump()

    def _pump(self) -> None:
        """Process queued submissions until a grant is outstanding."""
        c = self.controller
        while self._queue and self._grant is None:
            item = self._queue.pop(0)
            kind = item[0]
            if kind == "submit":
                _k, block, params, template_start, request_id = item
                c._run_block_centrally(
                    self.ctx, block, params, capture=template_start,
                    receive_cost=True, request_id=request_id)
            elif kind == "instantiate":
                c._process_instantiate(self.ctx, item[1])
            else:
                self._process_window(item[1])

    # -- the grant path ------------------------------------------------
    def _grantable_wts(self, block_id: str):
        """The window's WorkerTemplateSet iff it auto-validates (no side
        effects — fallback entries must reach ``_process_instantiate``
        with pristine state)."""
        ctx = self.ctx
        if ctx.phase.get(block_id) != self.controller.PHASE_WT_INSTALLED:
            return None
        wts = ctx.worker_templates.get(
            (block_id, ctx.current_version[block_id]))
        if wts is None or not ctx.validation_state.auto_validates(wts.key):
            return None
        return wts

    def _process_window(self, msg: P.InstantiateWindow) -> None:
        """Fallback-or-grant each entry, in submission order.

        Entries before the steady state (install staircase, migrations
        pending full validation) go through the exact centralized path;
        from the first auto-validating entry on, the rest of the window
        becomes one grant. A same-key entry keeps auto-validating after a
        granted predecessor, so the grant is always a contiguous tail.
        """
        c = self.controller
        ctx = self.ctx
        grant: Optional[_WindowGrant] = None
        wts = None
        n = msg.num_tasks
        for request_id, task_id_base, params in msg.entries:
            if c._duplicate_request(ctx, request_id):
                continue
            if grant is None:
                wts = self._grantable_wts(msg.block_id)
                if wts is None:
                    c._process_instantiate(ctx, P.InstantiateBlock(
                        msg.block_id, n, task_id_base, params,
                        request_id, job_id=msg.job_id))
                    continue
                # one validation covers the whole window: the grant is
                # the controller's *last* per-instance decision
                c._install_worker_halves(ctx, wts)
                c.charge(
                    c.costs.instantiate_worker_template_auto_per_task * n)
                ctx.metrics.incr("auto_validations")
                grant = _WindowGrant(c._alloc_window_id(), msg.block_id,
                                     wts.version)
            # extend the grant by one instance, allocating ids exactly as
            # a centralized instantiation would (instance-major,
            # worker-minor — the id streams are bit-identical)
            c.charge(c.costs.self_schedule_grant_per_task * n)
            run = c._new_run(ctx, msg.block_id, n, "self",
                             request_id=request_id)
            run.instance_id = c._next_instance
            c._next_instance += 1
            for worker in wts.workers():
                cid_base = c._alloc_cids(len(wts.entries[worker]))
                grant.per_worker.setdefault(worker, []).append(
                    (run.instance_id, cid_base, run.seq, params))
            run.expected_workers = set(wts.workers())
            run.outstanding = len(run.expected_workers)
            for name, oid in wts.returns.items():
                run.return_cids[oid] = (name, oid)
            wts.delta.apply(ctx.directory)
            ctx.validation_state.note_instantiation(wts.key)
            ctx.prev_block_key = wts.key
            ctx.metrics.incr("tasks_scheduled", n)
            ctx.metrics.incr("self_schedule_instances")
            grant.seqs.append(run.seq)
            if c._trace is not None:
                c._trace_decided(run)
        if grant is None:
            return
        ctx.metrics.incr("self_schedule_grants")
        edits_by_worker = ctx.pending_edits.pop(wts.key, {})
        self._dispatch_grant(grant, wts, edits_by_worker)
        self._grant = grant

    def _build_window(self, grant: _WindowGrant, worker: int, instances,
                      entries: int, edits=None) -> P.SelfScheduleWindow:
        """One worker's granted schedule, with the honest wire size: the
        sum of the per-instance InstantiateWorkerTemplate messages the
        grant replaces."""
        c = self.controller
        out = P.SelfScheduleWindow(
            grant.window_id, grant.block_id, grant.version,
            c.pm_epoch, instances, job_id=self.ctx.job_id, edits=edits)
        out.size_bytes = ((P.TASK_ID_BYTES * entries + P.PARAM_BLOCK_BYTES)
                          * max(1, len(instances)))
        return out

    def _dispatch_grant(self, grant: _WindowGrant, wts,
                        edits_by_worker) -> None:
        """Ship the granted windows — one message straight to each
        worker. The sharded policy overrides this single seam (and the
        regrant/abort relays below) to route via shards instead."""
        c = self.controller
        for worker in sorted(grant.per_worker):
            instances = grant.per_worker[worker]
            out = self._build_window(grant, worker, instances,
                                     len(wts.entries[worker]),
                                     edits=edits_by_worker.get(worker))
            c.send_reliable(c.workers[worker], out)
            grant.expected.add(worker)
            grant.progress[worker] = 0

    # -- summaries ------------------------------------------------------
    def on_window_summary(self, msg: P.WindowSummary) -> None:
        c = self.controller
        ctx = self.ctx
        grant = self._grant
        if grant is None or grant.window_id != msg.window_id:
            c.metrics.incr("self_schedule.orphan_summaries")
            return
        if msg.worker_id not in grant.expected:
            # a summary from a worker already folded out of this window
            # (finished, or reclaimed by drop_worker after its death) —
            # refolding its rows would double-decrement run accounting
            c.metrics.incr("self_schedule.orphan_summaries")
            return
        # one coarse completion per summary plus the per-row folds — the
        # same rates the centralized completion path charges
        c.charge(c.costs.controller_block_completion)
        for (instance_id, block_seq, compute_time, values, task_times,
             finished_at) in msg.rows:
            c.charge(c.costs.controller_completion_per_task)
            run = c.runs.get(block_seq)
            if run is None:
                continue
            run.outstanding -= 1
            run.expected_workers.discard(msg.worker_id)
            if finished_at > grant.ends.get(block_seq, 0.0):
                grant.ends[block_seq] = finished_at
            run.compute_by_worker[msg.worker_id] = (
                run.compute_by_worker.get(msg.worker_id, 0.0) + compute_time)
            if c.rebalancer is not None and msg.worker_id in c.live_workers:
                c.rebalancer.observe_instance(
                    ctx, grant.block_id, grant.version, msg.worker_id,
                    compute_time, task_times)
            for oid, value in values.items():
                if oid in run.return_cids:
                    name, _oid = run.return_cids[oid]
                    run.results[name] = value
        grant.progress[msg.worker_id] = (
            grant.progress.get(msg.worker_id, 0) + msg.next_index)
        if msg.stalled:
            self._regrant(msg.worker_id)
            return
        grant.expected.discard(msg.worker_id)
        if not grant.expected:
            self._finish_window(grant)

    def drop_worker(self, worker: int) -> None:
        """Abort the outstanding grant after a participant died.

        A ``SelfScheduleWindow`` is granted state the dead worker can no
        longer act on — and the *survivors* cannot finish it either:
        their in-flight instances wait on data the dead worker will
        never produce, so the window's natural boundary is unreachable.
        Before this fix, ``grant.expected`` retained the dead worker
        forever: the window never closed, its runs' command ids were
        orphaned, and :meth:`Controller._require_quiesced` wedged every
        future partition-map change (evict, migrate, autoscaler drain)
        behind a quiesce that could not arrive.

        The abort reclaims every granted-but-unreported instance
        participation and drops the window's runs *without* completing
        them to the driver: this restores schedulability — it does not
        fabricate results for work that was lost. With checkpointing on,
        recovery replays the window; without, the driver honestly never
        hears those iterations finish. Late summaries from survivors hit
        the orphan guard in :meth:`on_window_summary`.
        """
        grant = self._grant
        if grant is None or worker not in grant.expected:
            return
        c = self.controller
        reclaimed = 0
        for seq in grant.seqs:
            run = c.runs.pop(seq, None)
            if run is None:
                continue
            reclaimed += len(run.expected_workers)
        self._grant = None
        self._abort_granted(grant)
        c.metrics.incr("self_schedule.reclaimed_instances", reclaimed)
        c.metrics.incr("self_schedule.aborted_windows")
        # do NOT pump the queue: later windows read this one's lost
        # outputs; recovery (or job teardown) decides what runs next

    def _abort_granted(self, grant: _WindowGrant) -> None:
        """Hook for relayed-dispatch policies to tear down relay state."""

    def _regrant(self, worker: int) -> None:
        """Re-issue a stalled worker's remaining instances under the
        current epoch. Ids are unchanged, so the protocol is idempotent:
        data already exchanged for granted instances still tag-matches."""
        c = self.controller
        grant = self._grant
        remaining = grant.per_worker[worker][grant.progress[worker]:]
        wts = self.ctx.worker_templates.get((grant.block_id, grant.version))
        entries = len(wts.entries[worker]) if wts is not None else 1
        out = self._build_window(grant, worker, remaining, entries)
        self._deliver_regrant(worker, out)
        c.metrics.incr("self_schedule.regrants")

    def _deliver_regrant(self, worker: int, out: P.SelfScheduleWindow) -> None:
        c = self.controller
        c.send_reliable(c.workers[worker], out)

    def _finish_window(self, grant: _WindowGrant) -> None:
        """Close every run of the window (in seq order) and notify the
        driver once. Mirrors ``Controller._finish_block`` per run, with
        the per-run driver message batched into one."""
        c = self.controller
        ctx = self.ctx
        items = []
        for seq in grant.seqs:
            run = c.runs.pop(seq, None)
            if run is None:
                continue
            if c._trace is not None:
                c._trace.run_finish(run.seq)
            compute = 0.0
            if run.compute_by_worker:
                compute = (max(run.compute_by_worker.values())
                           / c.slots_per_worker)
            # end each block at its last worker's local finish time, not
            # at the fold: iteration-time statistics stay meaningful even
            # when a whole steady-state run fits in one window
            ctx.metrics.end("block", grant.ends.get(seq, c.sim.now),
                            key=run.seq, compute=compute,
                            results=dict(run.results))
            ctx.results_history.append((run.block_id, dict(run.results)))
            for worker, compute_time in run.compute_by_worker.items():
                if worker in c.live_workers:
                    c.load_tracker.observe(worker, compute_time, {})
            items.append((run.block_id, run.seq, dict(run.results),
                          run.request_id, grant.ends.get(seq, c.sim.now)))
        self._grant = None
        c.send_reliable(ctx.driver, P.BlockCompleteBatch(items))
        # the window boundary is the quiesce point: no grant is
        # outstanding for this job, so the partition map may change now
        if (c.rebalancer is not None and not c._recovering
                and not c._checkpointing):
            c.rebalancer.maybe_rebalance(ctx, grant.block_id)
        # ... and the checkpoint boundary: mirror _finish_block's
        # per-block accounting, which this batched completion path used
        # to skip entirely — a decentralized job-0 run never accumulated
        # _blocks_since_checkpoint, so checkpointing silently never
        # engaged and any worker crash was unrecoverable
        if ctx is c._job0 and len(items):
            c._blocks_since_checkpoint += len(items)
            if (c.checkpoint_every is not None
                    and c._blocks_since_checkpoint >= c.checkpoint_every
                    and not c.runs and not c._checkpointing
                    and not c._recovering):
                c._start_checkpoint()
        self._pump()
        c._drain_dispatch_queue()


class ShardedPolicy(DecentralizedPolicy):
    """Sharded control plane (DESIGN.md §16): decentralized decisions,
    relayed dispatch.

    Every *decision* — validation, id allocation, run bookkeeping,
    summary folding — is inherited unchanged from
    :class:`DecentralizedPolicy`, which is what makes computed values
    bit-identical across all three modes by construction. What changes
    is the *fan-out and fan-in path*: instead of one coordinator message
    per worker per window, the per-worker grants pack into one
    :class:`~repro.nimbus.protocol.ShardWindow` per controller shard;
    shards relay to their workers in parallel and return one aggregated
    :class:`~repro.nimbus.protocol.ShardWindowSummary` each. Coordinator
    traffic per window drops from O(workers) to O(shards).

    Workers reply to their owning shard (``SelfScheduleWindow.reply_to``),
    never the coordinator. Stalls are the exception that proves the
    ownership rule: a stalled summary is forwarded by the shard
    immediately, because the re-grant needs the coordinator's
    ``pm_epoch`` — partition-map ownership never shards.
    """

    mode = "sharded"

    def _build_window(self, grant, worker, instances, entries, edits=None):
        out = super()._build_window(grant, worker, instances, entries,
                                    edits=edits)
        c = self.controller
        out.reply_to = c.shards[c.shard_of(worker)].name
        # causal barrier: the relayed window travels shard channels, so
        # it could overtake the coordinator's own (possibly
        # retransmitting) dispatch stream to this worker. Stamp the
        # coordinator→worker sequence the worker must have handled
        # before opening the window — restoring exactly the ordering the
        # decentralized single channel gives for free.
        out.barrier_seq = c.channel_seq(c.workers[worker].name)
        return out

    def _dispatch_grant(self, grant, wts, edits_by_worker) -> None:
        c = self.controller
        per_shard: Dict[int, List] = {}
        for worker in sorted(grant.per_worker):
            instances = grant.per_worker[worker]
            out = self._build_window(grant, worker, instances,
                                     len(wts.entries[worker]),
                                     edits=edits_by_worker.get(worker))
            per_shard.setdefault(c.shard_of(worker), []).append(
                (worker, out))
            grant.expected.add(worker)
            grant.progress[worker] = 0
        for shard_id in sorted(per_shard):
            c.send_reliable(c.shards[shard_id], P.ShardWindow(
                grant.window_id, per_shard[shard_id],
                job_id=self.ctx.job_id))

    def _deliver_regrant(self, worker: int, out: P.SelfScheduleWindow) -> None:
        c = self.controller
        c.send_reliable(c.shards[c.shard_of(worker)], P.ShardRegrant(
            worker, out, job_id=self.ctx.job_id))

    def _abort_granted(self, grant) -> None:
        # every shard drops its fan-in state for the aborted window; the
        # unconditional broadcast is O(shards) and saves tracking which
        # shards the window actually touched
        c = self.controller
        for shard_id in sorted(c.shards):
            c.send_reliable(c.shards[shard_id], P.ShardAbort(
                self.ctx.job_id, grant.window_id))


def make_policy(mode: str, controller, ctx) -> SchedulingPolicy:
    if mode == "centralized":
        return CentralizedPolicy(controller, ctx)
    if mode == "decentralized":
        return DecentralizedPolicy(controller, ctx)
    if mode == "sharded":
        return ShardedPolicy(controller, ctx)
    raise ValueError(
        f"unknown scheduling mode {mode!r}; "
        f"choose 'centralized', 'decentralized', or 'sharded'")
