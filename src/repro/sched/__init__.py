"""Adaptive scheduling: rebalancing loop and scheduling policies."""

from .policy import (
    CentralizedPolicy,
    DecentralizedPolicy,
    SchedulingPolicy,
    make_policy,
)
from .rebalance import (
    GreedyLeastLoaded,
    LoadTracker,
    RebalancePolicy,
    Rebalancer,
)

__all__ = [
    "CentralizedPolicy",
    "DecentralizedPolicy",
    "GreedyLeastLoaded",
    "LoadTracker",
    "RebalancePolicy",
    "Rebalancer",
    "SchedulingPolicy",
    "make_policy",
]
