"""Adaptive scheduling: the measurement-driven rebalancing loop."""

from .rebalance import (
    GreedyLeastLoaded,
    LoadTracker,
    RebalancePolicy,
    Rebalancer,
)

__all__ = [
    "GreedyLeastLoaded",
    "LoadTracker",
    "RebalancePolicy",
    "Rebalancer",
]
