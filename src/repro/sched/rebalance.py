"""Adaptive rebalancing: closing the observe→decide→edit loop (§2.3).

The paper's dynamic-scheduling argument (Figures 9/10, Table 3) is that
template *edits* make scheduling changes cheap enough to react to
stragglers at runtime. This module supplies the missing control loop:

* **observe** — workers piggyback per-task execution timings on their
  per-instance completion messages; :class:`LoadTracker` folds them into
  an EWMA of per-worker load and per-task duration.
* **decide** — a pluggable :class:`RebalancePolicy` (default
  :class:`GreedyLeastLoaded`: straggler threshold + greedy least-loaded
  placement with deterministic, seeded tie-breaks) proposes a move list
  sized to stay under the controller's ``edit_threshold``.
* **edit** — :class:`Rebalancer` applies the moves through the existing
  :meth:`Controller.migrate_tasks` edit/patch path between instances.

Determinism contract: the observe path performs **pure observation** — no
cost charges, no metrics, no RNG draws, no message-size changes — so a run
with the rebalancer enabled but no load skew is bit-identical to a
rebalancer-off run. Randomness (tie-breaks) and metrics are only touched
once the straggler threshold actually trips.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..core.edits import migration_conflict
from ..core.worker_template import WorkerTemplateSet

#: signature of the feasibility callback handed to policies
ConflictFn = Callable[[int, int], Optional[str]]


class LoadTracker:
    """EWMA load estimates for one basic block.

    ``load[w]`` tracks the per-instance compute time each worker reported
    (the sum of its task durations for one instance); ``task_time[i]``
    tracks the duration of the task with controller-template index ``i``.
    Observed durations conflate task weight with worker speed — a 2×
    straggler reports 2× durations for ordinary tasks — which is exactly
    the signal a straggler policy wants, as long as placement projections
    re-scale by destination speed (see :class:`GreedyLeastLoaded`).
    """

    def __init__(self, alpha: float = 0.5):
        self.alpha = alpha
        self.load: Dict[int, float] = {}
        self.samples: Dict[int, int] = {}
        self.task_time: Dict[int, float] = {}

    def observe(self, worker: int, compute_time: float,
                task_durations: Dict[int, float]) -> None:
        a = self.alpha
        prev = self.load.get(worker)
        self.load[worker] = (compute_time if prev is None
                             else prev + a * (compute_time - prev))
        self.samples[worker] = self.samples.get(worker, 0) + 1
        for ct_index, duration in task_durations.items():
            prev = self.task_time.get(ct_index)
            self.task_time[ct_index] = (duration if prev is None
                                        else prev + a * (duration - prev))

    def min_samples(self, workers) -> int:
        """Fewest instances observed across ``workers`` (0 if any unseen)."""
        return min((self.samples.get(w, 0) for w in workers), default=0)

    def drop_worker(self, worker: int) -> None:
        """Forget a departed worker's EWMA state (eviction, crash, drain).

        Worker-set churn is explicit: departed workers are dropped here so
        no policy ever books load onto a dead worker, and arrivals are
        warmup-gated naturally — an unseen worker keeps
        :meth:`min_samples` at 0 until it has reported real instances.
        Per-task durations (``task_time``) are keyed by controller-template
        index, not worker, so they survive the churn.
        """
        self.load.pop(worker, None)
        self.samples.pop(worker, None)

    def reset(self) -> None:
        self.load.clear()
        self.samples.clear()
        self.task_time.clear()


class RebalancePolicy:
    """Interface: map load observations to a ``migrate_tasks`` move list."""

    def propose(self, tracker: LoadTracker, wts: WorkerTemplateSet,
                live_workers, max_moves: int, conflict: ConflictFn,
                slots: int = 8) -> List[Tuple[int, int]]:
        raise NotImplementedError


class GreedyLeastLoaded(RebalancePolicy):
    """Straggler threshold + greedy least-loaded placement.

    Each worker gets an *elapsed estimate* ``e_w = max(heaviest task on w,
    load_w / slots)`` — the lower bound on how long its share of one
    instance takes. With fewer tasks than slots the heaviest-task term
    dominates (a 2× straggler gates the block until its *last* slow task
    leaves); with more tasks than slots the summed-load term dominates
    (throughput). A worker is a straggler when its estimate exceeds
    ``threshold`` times the live-worker mean. While one exists (and the
    move budget holds), the policy peels the straggler's heaviest task
    onto the least loaded destination, projecting the task's cost there by
    re-scaling its observed duration with the destination/source per-task
    speed ratio — a task that ran slow *because its worker is slow* is not
    projected to stay slow elsewhere. A move is accepted when the
    destination's projected estimate stays below the straggler's current
    one (so work is never merely shifted onto a new straggler). Ties
    between equally loaded destinations break through a seeded RNG so
    results are reproducible; the RNG is only consumed once the threshold
    has tripped, preserving the no-skew bit-identity guarantee.
    """

    def __init__(self, threshold: float = 1.4,
                 rng: Optional[random.Random] = None):
        self.threshold = threshold
        self.rng = rng or random.Random(0)

    def propose(self, tracker: LoadTracker, wts: WorkerTemplateSet,
                live_workers, max_moves: int, conflict: ConflictFn,
                slots: int = 8) -> List[Tuple[int, int]]:
        live = sorted(live_workers)
        if len(live) < 2 or slots <= 0:
            return []
        loads = {w: tracker.load.get(w, 0.0) for w in live}
        if sum(loads.values()) <= 0.0:
            return []

        # task inventory and per-task speed per worker, from the current
        # template layout and this round's (pre-move) observations
        tasks_on: Dict[int, List[int]] = {w: [] for w in live}
        for ct_index in sorted(wts.task_locations):
            worker = wts.task_locations[ct_index][0]
            if worker in loads:
                tasks_on[worker].append(ct_index)
        speed = {
            w: (loads[w] / len(tasks_on[w])) if tasks_on[w] else 0.0
            for w in live
        }
        # per-task costs as placed *by this proposal*: once a move is
        # accepted the task is booked at its speed-scaled destination cost,
        # not the straggler-inflated duration it was observed at — else the
        # destination looks like a new straggler and the loop stalls
        projected = dict(tracker.task_time)

        def estimate(w: int) -> float:
            heaviest = max(
                (projected.get(c, 0.0) for c in tasks_on[w]),
                default=0.0)
            return max(heaviest, loads[w] / slots)

        moves: List[Tuple[int, int]] = []
        while len(moves) < max_moves:
            est = {w: estimate(w) for w in live}
            mean_est = sum(est.values()) / len(live)
            src = max(live, key=lambda w: (est[w], -w))
            if mean_est <= 0.0 or est[src] < self.threshold * mean_est:
                break
            candidates = [c for c in tasks_on[src]
                          if projected.get(c, 0.0) > 0.0]
            candidates.sort(key=lambda c: (-projected[c], c))
            moved = False
            for ct_index in candidates:
                cost_src = projected[ct_index]
                order = sorted((w for w in live if w != src),
                               key=lambda w: (loads[w], w))
                if len(order) > 1 and loads[order[0]] == loads[order[1]]:
                    ties = [w for w in order if loads[w] == loads[order[0]]]
                    pick = self.rng.choice(ties)
                    order.remove(pick)
                    order.insert(0, pick)
                for dst in order:
                    cost_dst = (cost_src * speed[dst] / speed[src]
                                if speed[src] > 0 and speed[dst] > 0
                                else cost_src)
                    new_dst_est = max(est[dst], cost_dst,
                                      (loads[dst] + cost_dst) / slots)
                    if new_dst_est >= est[src]:
                        break  # would merely shift the straggle
                    if conflict(ct_index, dst) is not None:
                        continue
                    moves.append((ct_index, dst))
                    tasks_on[src].remove(ct_index)
                    tasks_on[dst].append(ct_index)
                    loads[src] -= cost_src
                    loads[dst] += cost_dst
                    projected[ct_index] = cost_dst
                    moved = True
                    break
                if moved:
                    break
            if not moved:
                break
        return moves


class Rebalancer:
    """Glue between the controller and a :class:`RebalancePolicy`.

    Attached to a :class:`~repro.nimbus.controller.Controller` by the
    cluster when ``rebalance=True``. ``observe_instance`` runs on every
    template-path instance completion (pure observation);
    ``maybe_rebalance`` runs when a block finishes and, after ``warmup``
    instances of fresh data per live worker, may commit migrations.
    After a decision the block enters a ``cooldown`` (sized to outlast the
    driver's in-flight pipeline, whose instances still run the old
    placement) and the tracker restarts from scratch, so the next decision
    only sees post-edit timings.
    """

    def __init__(self, policy: Optional[RebalancePolicy] = None,
                 alpha: float = 0.5, warmup: int = 3, cooldown: int = 5):
        self.policy = policy or GreedyLeastLoaded()
        self.alpha = alpha
        self.warmup = warmup
        self.cooldown = cooldown
        self.controller = None
        # multi-tenant: trackers and cooldowns are keyed (job_id, block_id)
        # so concurrent jobs reusing a block id observe independently
        self.trackers: Dict[Tuple[int, str], LoadTracker] = {}
        self._cooldown_left: Dict[Tuple[int, str], int] = {}
        # (job_id, block_id, version) -> {(worker, local_index): ct_index}
        self._locations_rev: Dict[Tuple[int, str, int], Dict] = {}
        #: decision log: (sim time, block_id, applied moves, mechanism)
        self.decisions: List[Tuple[float, str, List[Tuple[int, int]], str]] = []

    def attach(self, controller) -> None:
        self.controller = controller
        controller.rebalancer = self

    def drop_worker(self, worker: int) -> None:
        """Forget a departed worker across every per-block tracker.

        Mirrors :meth:`LoadTracker.drop_worker` for the rebalancer's own
        per-``(job, block)`` trackers, so a proposal computed after an
        eviction can never pick a dead worker as a migration source."""
        for tracker in self.trackers.values():
            tracker.drop_worker(worker)

    # -- observe -------------------------------------------------------
    def observe_instance(self, ctx, block_id: str, version: int, worker: int,
                         compute_time: float,
                         task_times: Optional[Dict[int, float]]) -> None:
        if ctx.current_version.get(block_id) != version:
            return  # stale instance from before a regeneration
        wts = ctx.worker_templates.get((block_id, version))
        if wts is None:
            return
        tkey = (ctx.job_id, block_id)
        tracker = self.trackers.get(tkey)
        if tracker is None:
            tracker = self.trackers[tkey] = LoadTracker(self.alpha)
        durations: Dict[int, float] = {}
        if task_times:
            rev = self._reverse_locations(ctx.job_id, block_id, version, wts)
            for local_index, duration in task_times.items():
                ct_index = rev.get((worker, local_index))
                if ct_index is not None:
                    durations[ct_index] = duration
        tracker.observe(worker, compute_time, durations)

    def _reverse_locations(self, job_id: int, block_id: str, version: int,
                           wts: WorkerTemplateSet) -> Dict:
        key = (job_id, block_id, version)
        rev = self._locations_rev.get(key)
        if rev is None:
            for stale in [k for k in self._locations_rev
                          if k[0] == job_id and k[1] == block_id]:
                del self._locations_rev[stale]
            rev = {loc: ct for ct, loc in wts.task_locations.items()}
            self._locations_rev[key] = rev
        return rev

    # -- decide + edit -------------------------------------------------
    def maybe_rebalance(self, ctx, block_id: str) -> List[Tuple[int, int]]:
        """Run the policy for ``ctx``'s ``block_id``; returns applied moves."""
        ctrl = self.controller
        tkey = (ctx.job_id, block_id)
        tracker = self.trackers.get(tkey)
        if tracker is None:
            return []
        left = self._cooldown_left.get(tkey, 0)
        if left > 0:
            self._cooldown_left[tkey] = left - 1
            if left == 1:
                # everything observed during cooldown mixes pre- and
                # post-edit placements; start the next window clean
                tracker.reset()
            return []
        if ctx.phase.get(block_id, 0) != ctrl.PHASE_WT_INSTALLED:
            return []
        version = ctx.current_version.get(block_id)
        wts = ctx.worker_templates.get((block_id, version))
        if wts is None:
            return []
        live = ctrl.live_workers
        if len(live) < 2 or tracker.min_samples(live) < self.warmup:
            return []
        template = ctx.templates[block_id]
        max_moves = int(ctrl.edit_threshold * template.num_tasks)
        if max_moves <= 0:
            return []

        def conflict(ct_index: int, dst: int) -> Optional[str]:
            return migration_conflict(wts, ct_index, dst)

        moves = self.policy.propose(tracker, wts, live, max_moves, conflict,
                                    slots=ctrl.slots_per_worker)
        if not moves:
            return []

        c0 = ctrl._charged
        applied: List[Tuple[int, int]] = []
        mechanism = "edits"
        for ct_index, dst in moves:
            # re-check against the *current* halves: each migrate_tasks
            # call mutates the controller half, shifting what later moves
            # may conflict with
            if migration_conflict(wts, ct_index, dst) is not None:
                continue
            mechanism = ctrl.migrate_tasks(block_id, [(ct_index, dst)],
                                           job_id=ctx.job_id)
            applied.append((ct_index, dst))
        if not applied:
            return []
        ctx.metrics.incr("rebalance_decisions")
        ctx.metrics.incr("rebalance_moves", len(applied))
        self.decisions.append(
            (ctrl.sim.now, block_id, list(applied), mechanism))
        self._cooldown_left[tkey] = self.cooldown
        tracker.reset()
        self._locations_rev.pop((ctx.job_id, block_id, version), None)
        if ctrl._trace is not None:
            ctrl._trace.span(
                ctrl.name, "rebalance", "rebalance.decision",
                ctrl._handler_start + c0, ctrl._charged - c0,
                block_id=block_id, moves=len(applied), mechanism=mechanism)
        return applied
