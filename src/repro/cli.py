"""Command-line interface: run the paper's experiments without writing code.

Examples::

    python -m repro lr --workers 50 --iterations 12
    python -m repro lr --workers 50 --system spark
    python -m repro kmeans --workers 20 --real
    python -m repro water --workers 16 --scale 0.1
    python -m repro regression --workers 4
    python -m repro --profile lr.prof lr --workers 100
    python -m repro sweep --workload lr --seeds 8 --parallel 4
    python -m repro perf --scale small
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Optional, Tuple

from .analysis import (
    critical_path,
    iteration_breakdowns,
    mean_iteration_time,
    render_critical_path,
    render_table,
    task_throughput,
)
from .apps import (
    KMeansApp,
    KMeansSpec,
    LRApp,
    LRSpec,
    RegressionApp,
    RegressionSpec,
    RotationApp,
    RotationSpec,
    WaterApp,
    WaterSpec,
)
from .baselines import MPICluster, NaiadCluster, SparkCluster
from .chaos import PROFILES, FaultPlan
from .nimbus import NimbusCluster
from .perf import SCALES
from .perf.harness import WORKLOADS

SYSTEMS = {
    "nimbus": NimbusCluster,
    "spark": SparkCluster,
    "naiad": NaiadCluster,
    "mpi": MPICluster,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=20,
                        help="number of worker nodes")
    parser.add_argument("--system", choices=sorted(SYSTEMS), default="nimbus",
                        help="control plane to run under")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode",
                        choices=("centralized", "decentralized", "sharded"),
                        default="centralized",
                        help="scheduling mode: 'centralized' is the "
                             "paper's per-instance control plane; "
                             "'decentralized' grants windows that workers "
                             "self-schedule (DESIGN.md §14); 'sharded' "
                             "relays those windows through controller "
                             "shards so the coordinator leaves the "
                             "steady-state path (§16); nimbus only")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="controller shard count for --mode sharded "
                             "(default: min(16, max(2, sqrt(workers))))")
    parser.add_argument("--chaos-profile", choices=sorted(PROFILES),
                        default=None, metavar="PROFILE",
                        help="inject network faults from a stock plan "
                             f"({', '.join(sorted(PROFILES))}); nimbus only")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the chaos fault schedule "
                             "(same seed => identical faults)")
    parser.add_argument("--patch-cache-cap", type=int, default=256,
                        metavar="N",
                        help="LRU capacity of the controller patch cache "
                             "(default 256); nimbus only")
    parser.add_argument("--rebalance", action="store_true",
                        help="enable the adaptive rebalancer (workers "
                             "report per-task timings; the controller "
                             "migrates tasks off stragglers via template "
                             "edits); nimbus only")
    parser.add_argument("--rebalance-threshold", type=float, default=1.4,
                        metavar="X",
                        help="straggler threshold: rebalance when a "
                             "worker's load estimate exceeds X times the "
                             "live-worker mean (default 1.4)")
    parser.add_argument("--autoscale", action="store_true",
                        help="enable the elastic autoscaler (desired-state "
                             "reconciliation against the load EWMA; scales "
                             "up via provision+spread, down via the "
                             "DRAINING drain); nimbus only")
    parser.add_argument("--autoscale-interval", type=float, default=None,
                        metavar="S",
                        help="reconciliation tick period in virtual "
                             "seconds (default 0.25)")
    parser.add_argument("--autoscale-cold-start", type=float, default=None,
                        metavar="S",
                        help="provisioning delay before a new worker "
                             "joins the live set (default 1.0)")
    parser.add_argument("--autoscale-max-workers", type=int, default=None,
                        metavar="N",
                        help="upper bound on the live worker count "
                             "(default 4x the initial size)")
    parser.add_argument("--trace", action="store_true",
                        help="record a command-lifecycle trace (also "
                             "enabled by REPRO_TRACE=1); nimbus only")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write the Chrome/Perfetto trace JSON here "
                             "(default: trace_<command>.json)")


def _cluster_kwargs(args) -> dict:
    kwargs = {"seed": args.seed}
    if args.system == "nimbus" and getattr(args, "no_templates", False):
        kwargs["use_templates"] = False
    if args.system == "nimbus":
        kwargs["patch_cache_cap"] = args.patch_cache_cap
    if getattr(args, "mode", "centralized") != "centralized":
        if args.system != "nimbus":
            raise SystemExit(f"--mode {args.mode} requires --system nimbus "
                             "(the baselines have no self-scheduling path)")
        kwargs["mode"] = args.mode
    if getattr(args, "shards", None) is not None:
        if getattr(args, "mode", "centralized") != "sharded":
            raise SystemExit("--shards requires --mode sharded")
        kwargs["shards"] = args.shards
    if getattr(args, "chaos_profile", None):
        if args.system != "nimbus":
            raise SystemExit(
                "--chaos-profile requires --system nimbus (the baselines "
                "do not model the hardened control-plane protocol)"
            )
        kwargs["chaos_plan"] = FaultPlan.from_profile(
            args.chaos_profile, seed=args.chaos_seed)
    if getattr(args, "rebalance", False):
        if args.system != "nimbus":
            raise SystemExit("--rebalance requires --system nimbus (the "
                             "baselines cannot edit installed templates)")
        kwargs["rebalance"] = True
        kwargs["rebalance_threshold"] = args.rebalance_threshold
    if getattr(args, "autoscale", False):
        if args.system != "nimbus":
            raise SystemExit("--autoscale requires --system nimbus (the "
                             "baselines cannot re-home installed templates "
                             "onto provisioned workers)")
        kwargs["autoscale"] = True
        if getattr(args, "autoscale_interval", None) is not None:
            kwargs["autoscale_interval"] = args.autoscale_interval
        if getattr(args, "autoscale_cold_start", None) is not None:
            kwargs["autoscale_cold_start"] = args.autoscale_cold_start
        if getattr(args, "autoscale_max_workers", None) is not None:
            kwargs["autoscale_max_workers"] = args.autoscale_max_workers
    if getattr(args, "trace", False):
        if args.system != "nimbus":
            raise SystemExit("--trace requires --system nimbus (the "
                             "baselines carry no trace hooks)")
        kwargs["trace"] = True
    return kwargs


def _finish_trace(cluster, args) -> None:
    """Export the run's trace and print the critical-path report."""
    tracer = getattr(cluster, "tracer", None)
    if tracer is None:
        return
    from .obs import write_chrome_trace

    out = getattr(args, "trace_out", None) or f"trace_{args.command}.json"
    doc = write_chrome_trace(tracer, out)
    print(f"trace: {len(doc['traceEvents'])} events -> {out} "
          f"(load at https://ui.perfetto.dev)")
    print(render_critical_path(critical_path(tracer)))


def _summary(cluster, block_id: str, skip: int) -> None:
    metrics = cluster.metrics
    try:
        iteration = mean_iteration_time(metrics, block_id, skip=skip)
        throughput = task_throughput(metrics, block_id, skip=skip)
        print(f"steady-state iteration time: {iteration * 1000:.2f} ms")
        if math.isnan(throughput):
            # degenerate run: every kept iteration finished at the same
            # virtual instant, so there is no rate to report
            print("task throughput:             n/a (zero-length span)")
        else:
            print(f"task throughput:             {throughput:,.0f} tasks/s")
    except ValueError:
        pass
    print(render_table("control-plane counters", ["counter", "value"], [
        [name, f"{metrics.count(name):.0f}"]
        for name in (
            "tasks_executed", "tasks_scheduled",
            "controller_templates_installed", "template_instantiations",
            "auto_validations", "full_validations",
            "patches_computed", "patch_cache_hits", "edits_applied",
            "chaos.drops", "chaos.delays", "chaos.duplicates",
            "chaos.reorders", "protocol.retries", "protocol.dup_discards",
            "protocol.reorder_holds", "protocol.stale_discards",
            "net.partition_drops",
        ) if metrics.count(name)
    ]))
    print(f"virtual time: {cluster.sim.now:.4f} s; "
          f"events: {cluster.sim.events_run:,}")


def cmd_lr(args) -> None:
    spec = LRSpec(num_workers=args.workers, iterations=args.iterations,
                  data_bytes=args.data_gb * 1e9, real_compute=args.real,
                  seed=args.seed)
    app = LRApp(spec)
    cluster_cls = SYSTEMS[args.system]
    cluster = cluster_cls(args.workers, app.program(blocking=args.blocking),
                          registry=app.registry, **_cluster_kwargs(args))
    cluster.run_until_finished(max_seconds=1e7)
    print(f"logistic regression: {spec.num_partitions} partitions, "
          f"{args.iterations} iterations, system={args.system}")
    _summary(cluster, "lr.iteration", skip=args.iterations // 2)
    _finish_trace(cluster, args)


def cmd_kmeans(args) -> None:
    spec = KMeansSpec(num_workers=args.workers, iterations=args.iterations,
                      data_bytes=args.data_gb * 1e9, real_compute=args.real,
                      seed=args.seed)
    app = KMeansApp(spec)
    cluster_cls = SYSTEMS[args.system]
    cluster = cluster_cls(args.workers, app.program(blocking=args.blocking),
                          registry=app.registry, **_cluster_kwargs(args))
    cluster.run_until_finished(max_seconds=1e7)
    print(f"k-means: {spec.num_partitions} partitions, "
          f"{args.iterations} iterations, system={args.system}")
    _summary(cluster, "km.iteration", skip=args.iterations // 2)
    _finish_trace(cluster, args)


def cmd_water(args) -> None:
    spec = WaterSpec(num_workers=args.workers, scale=args.scale,
                     frame_duration=args.frame_duration, frames=args.frames)
    app = WaterApp(spec)
    cluster_cls = SYSTEMS[args.system]
    frame_log: list = []
    cluster = cluster_cls(args.workers, app.program(frame_log=frame_log),
                          registry=app.registry, **_cluster_kwargs(args))
    cluster.run_until_finished(max_seconds=1e7)
    print(f"water simulation: {app.num_variables} variables, "
          f"{spec.num_partitions} partitions, system={args.system}")
    boundaries = [0.0] + frame_log
    for i, (a, b) in enumerate(zip(boundaries, boundaries[1:])):
        print(f"  frame {i}: {b - a:.3f} s")
    _summary(cluster, "water.cg", skip=0)
    _finish_trace(cluster, args)


def cmd_rotation(args) -> None:
    if args.system != "nimbus":
        raise SystemExit("rotation requires --system nimbus (it measures "
                         "the patch cache, a Nimbus-only mechanism)")
    spec = RotationSpec(num_workers=args.workers,
                        iterations=args.iterations, seed=args.seed)
    app = RotationApp(spec)
    cluster = NimbusCluster(args.workers, app.program(),
                            registry=app.registry, **_cluster_kwargs(args))
    cluster.run_until_finished(max_seconds=1e7)
    print(f"patch rotation: {spec.num_partitions} partitions, "
          f"{args.iterations} rounds, "
          f"patch cache cap {args.patch_cache_cap}")
    _summary(cluster, "rot.consume", skip=args.iterations // 2)
    _finish_trace(cluster, args)


def cmd_regression(args) -> None:
    spec = RegressionSpec(num_workers=args.workers, seed=args.seed)
    app = RegressionApp(spec)
    cluster_cls = SYSTEMS[args.system]
    cluster = cluster_cls(args.workers, app.program(),
                          registry=app.registry, **_cluster_kwargs(args))
    cluster.run_until_finished(max_seconds=1e7)
    errors = [iv.labels["results"].get("error")
              for iv in cluster.metrics.intervals["block"]
              if iv.labels["block_id"] == "reg.estimate"]
    print(f"nested regression (Figure 3): {len(errors)} outer iterations, "
          f"final error {errors[-1]:.4f}" if errors else "no outer iterations")
    _summary(cluster, "reg.optimize", skip=0)
    _finish_trace(cluster, args)


_SWEEP_APPS = {
    "lr": (LRApp, LRSpec, "lr.iteration"),
    "kmeans": (KMeansApp, KMeansSpec, "km.iteration"),
}


def _sweep_one(job: Tuple[str, int, int, int]) -> Tuple[int, float, float]:
    """Run one (workload, workers, iterations, seed) combo.

    Module-level so it pickles for ``multiprocessing.Pool``.
    """
    import time

    workload, workers, iterations, seed = job
    app_cls, spec_cls, block_id = _SWEEP_APPS[workload]
    app = app_cls(spec_cls(num_workers=workers, iterations=iterations,
                           seed=seed))
    cluster = NimbusCluster(workers, app.program(blocking=False),
                            registry=app.registry, seed=seed)
    start = time.perf_counter()
    cluster.run_until_finished(max_seconds=1e7)
    wall = time.perf_counter() - start
    iteration = mean_iteration_time(cluster.metrics, block_id,
                                    skip=iterations // 2)
    return seed, iteration, wall


def cmd_sweep(args) -> None:
    jobs = [(args.workload, args.workers, args.iterations, seed)
            for seed in range(args.seeds)]
    if args.parallel > 1:
        import multiprocessing

        with multiprocessing.Pool(args.parallel) as pool:
            results = pool.map(_sweep_one, jobs)
    else:
        results = [_sweep_one(job) for job in jobs]
    rows = [[str(seed), f"{iteration * 1000:.2f}", f"{wall:.2f}"]
            for seed, iteration, wall in results]
    print(render_table(
        f"{args.workload} sweep: {args.workers} workers, "
        f"{args.seeds} seeds, parallel={args.parallel}",
        ["seed", "iteration (ms)", "wall (s)"], rows))
    iterations = [iteration for _seed, iteration, _wall in results]
    print(f"iteration time over seeds: min {min(iterations) * 1000:.2f} ms, "
          f"mean {sum(iterations) / len(iterations) * 1000:.2f} ms, "
          f"max {max(iterations) * 1000:.2f} ms")


_TRACE_WORKLOADS = {
    # aliases -> (app class, spec class, iteration block, blocking kwarg)
    "fig07": "lr", "fig07_lr": "lr", "lr": "lr",
    "fig08": "kmeans", "fig08_kmeans": "kmeans", "kmeans": "kmeans",
    "rotation": "rotation", "patch_rotation": "rotation",
}


def cmd_trace(args) -> None:
    """Run one workload traced and emit the Perfetto JSON + critical path."""
    from .obs import write_chrome_trace

    workload = _TRACE_WORKLOADS[args.workload]
    if workload == "lr":
        spec = LRSpec(num_workers=args.workers, iterations=args.iterations,
                      seed=args.seed)
        app = LRApp(spec)
        program = app.program(blocking=False)
        block_id = "lr.iteration"
    elif workload == "kmeans":
        spec = KMeansSpec(num_workers=args.workers,
                          iterations=args.iterations, seed=args.seed)
        app = KMeansApp(spec)
        program = app.program(blocking=False)
        block_id = "km.iteration"
    else:
        spec = RotationSpec(num_workers=args.workers,
                            iterations=args.iterations, seed=args.seed)
        app = RotationApp(spec)
        program = app.program()
        block_id = "rot.consume"
    cluster = NimbusCluster(args.workers, program, registry=app.registry,
                            seed=args.seed, trace=True)
    cluster.run_until_finished(max_seconds=1e7)
    out = args.out or f"trace_{args.workload}.json"
    doc = write_chrome_trace(cluster.tracer, out)
    report = critical_path(cluster.tracer)
    print(f"{args.workload}: {args.workers} workers, "
          f"{args.iterations} iterations, "
          f"virtual time {cluster.sim.now:.4f} s")
    _summary(cluster, block_id, skip=args.iterations // 2)
    print(f"trace: {len(doc['traceEvents'])} events -> {out} "
          f"(load at https://ui.perfetto.dev)")
    print(render_critical_path(report))


def cmd_perf(args) -> None:
    from .perf import bench_path, run_harness, write_bench

    report = run_harness(args.scale, microbench=not args.no_micro)
    for workload, rows in report["workloads"].items():
        print(render_table(
            f"{workload} ({args.scale} scale)",
            ["workers", "wall (s)", "events/s", "iteration (ms)"],
            [[str(r["workers"]), f"{r['wall_seconds']:.3f}",
              f"{r['events_per_second']:,}",
              f"{r['mean_iteration_time'] * 1000:.2f}"] for r in rows]))
        speedup = report["speedup_vs_baseline"].get(workload)
        if speedup is not None:
            print(f"speedup vs pre-optimization baseline: {speedup:.2f}x")
        alloc = report["allocations"][workload]
        print(f"allocations @ {alloc['workers']} workers: "
              f"peak {alloc['peak_bytes'] / 1e6:.1f} MB, "
              f"retained {alloc['retained_bytes'] / 1e6:.1f} MB")
    if "microbenchmarks" in report:
        print(render_table("control-plane microbenchmarks",
                           ["hot path", "ops/sec"],
                           [[name, f"{rate:,.0f}"] for name, rate in
                            report["microbenchmarks"].items()]))
        alloc = report["instantiate_allocations"]
        print("per-instantiation allocations: "
              f"interpreted {alloc['interpreted_bytes_per_instantiation']:,} B, "
              f"compiled {alloc['compiled_bytes_per_instantiation']:,} B")
    if not args.no_write:
        path = bench_path()
        write_bench(report, path)
        print(f"wrote {path}")


def cmd_profile(args) -> None:
    """Profile one harness workload; print the top cumulative functions.

    This is attribution for perf work: the same timed run the harness
    makes, under cProfile, with the hottest call paths printed instead of
    buried in a dump file (use ``--out`` to keep the stats for snakeviz
    or pstats digging).
    """
    import cProfile
    import pstats

    from .perf import timed_workload

    if args.workload not in WORKLOADS:
        raise SystemExit(
            f"unknown workload {args.workload!r}; known workloads: "
            f"{', '.join(sorted(WORKLOADS))}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        row = timed_workload(args.workload, args.workers,
                             iterations=args.iterations, mode=args.mode)
    finally:
        profiler.disable()
    print(f"{args.workload}: {row['workers']} workers, "
          f"{args.iterations} iterations ({args.mode}) — "
          f"wall {row['wall_seconds']:.3f} s, "
          f"{row['events']:,} events "
          f"({row['events_per_second']:,} events/s), "
          f"iteration {row['mean_iteration_time'] * 1000:.2f} ms")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        profiler.dump_stats(args.out)
        print(f"profile written to {args.out}")


def cmd_rebalance(args) -> None:
    from .perf.rebalance_bench import run_fig09_auto

    result = run_fig09_auto(
        num_workers=args.workers,
        iterations=args.iterations,
        seed=args.seed,
        scale=args.scale,
        fault_iteration=args.fault_iteration,
        rebalance=not args.off,
    )
    print(f"automated fig09: {result['workers']} workers, "
          f"{result['iterations']} iterations, "
          f"{result['scale']}x straggler (worker {result['straggler']}) "
          f"injected after iteration {result['fault_iteration']}, "
          f"rebalancer {'OFF' if args.off else 'ON'}")
    rows = [
        ["pre-fault iteration (ms)",
         f"{result['pre_fault_iteration_time'] * 1000:.2f}"],
        ["post-fault peak (ms)", f"{result['post_fault_peak'] * 1000:.2f}"],
        ["recovered iteration (ms)",
         f"{result['recovered_iteration_time'] * 1000:.2f}"],
        ["recovery ratio", f"{result['recovery_ratio']:.3f}"],
        ["iterations to recover",
         "never" if result["iterations_to_recover"] is None
         else str(result["iterations_to_recover"])],
        ["decisions", str(result["decisions"])],
        ["moves", str(result["moves"])],
        ["mechanisms", ", ".join(result["mechanisms"]) or "-"],
        ["converged", str(result["converged"])],
    ]
    print(render_table("straggler recovery", ["metric", "value"], rows))


def cmd_autoscale(args) -> None:
    from .perf.scale_bench import run_scale_step

    if args.shards is not None and args.mode != "sharded":
        raise SystemExit("--shards requires --mode sharded")
    result = run_scale_step(
        num_workers=args.workers,
        iterations=args.iterations,
        seed=args.seed,
        step=args.step,
        step_iteration=args.step_iteration,
        interval=args.interval,
        cold_start=args.cold_start,
        mode=args.mode,
        shards=args.shards,
    )
    direction = "up" if result["step"] > 1.0 else "down"
    print(f"scale step: {result['workers']} workers, "
          f"{result['iterations']} iterations ({result['mode']}), "
          f"{result['step']}x demand "
          f"step after iteration {result['step_iteration']} "
          f"(scale {direction})")
    rows = [
        ["reconciliation interval (ms)", f"{result['interval'] * 1000:.2f}"],
        ["cold start (ms)", f"{result['cold_start'] * 1000:.2f}"],
        ["pre-step iteration (ms)",
         f"{result['pre_step_iteration_time'] * 1000:.2f}"],
        ["final iteration (ms)",
         "-" if result["final_iteration_time"] is None
         else f"{result['final_iteration_time'] * 1000:.2f}"],
        ["time to stable (ms)",
         "no decisions" if result["time_to_stable"] is None
         else f"{result['time_to_stable'] * 1000:.2f}"],
        ["ticks to stable",
         "-" if result["ticks_to_stable"] is None
         else str(result["ticks_to_stable"])],
        ["workers final", str(result["workers_final"])],
        ["workers added", str(result["workers_added"])],
        ["workers drained", str(result["workers_drained"])],
        ["spread moves", str(result["spread_moves"])],
        ["decisions", str(result["decisions"])],
        ["mechanisms", ", ".join(result["mechanisms"]) or "-"],
        ["zero loss", str(result.get("zero_loss", "-"))],
        ["converged", str(result["converged"])],
    ]
    print(render_table("demand-step reconciliation", ["metric", "value"],
                       rows))


def cmd_serve(args) -> None:
    from .perf.serve_bench import run_job_arrival

    if args.shards is not None and args.mode != "sharded":
        raise SystemExit("--shards requires --mode sharded")
    result = run_job_arrival(
        num_workers=args.workers,
        num_jobs=args.jobs,
        seed=args.seed,
        mean_interarrival=args.mean_interarrival,
        iterations=args.iterations,
        max_concurrent=args.max_concurrent,
        queue_cap=args.queue_cap,
        dispatch_inflight_cap=args.dispatch_cap,
        mode=args.mode,
        shards=args.shards,
    )
    print(f"job_arrival: {result['jobs']} jobs over {result['workers']} "
          f"workers (concurrency cap {result['max_concurrent']}, queue cap "
          f"{result['queue_cap']}, dispatch cap "
          f"{result['dispatch_inflight_cap']})")
    rows = [
        [str(job["job_id"]), job["workload"], f"{job['submit_time']:.4f}",
         "-" if job["start_time"] is None else f"{job['start_time']:.4f}",
         "-" if job["latency"] is None else f"{job['latency'] * 1000:.2f}"]
        for job in result["per_job"]
    ]
    print(render_table("job arrivals",
                       ["job", "workload", "submit (s)", "start (s)",
                        "latency (ms)"], rows))
    print(render_table("serving metrics", ["metric", "value"], [
        ["jobs finished", str(result["jobs_finished"])],
        ["jobs rejected", str(result["jobs_rejected"])],
        ["tasks executed", f"{result['tasks_executed']:.0f}"],
        ["aggregate task throughput (tasks/s)",
         f"{result['aggregate_task_throughput']:,.0f}"],
        ["p95 job latency (ms)", f"{result['p95_job_latency'] * 1000:.2f}"],
        ["mean job latency (ms)",
         f"{result['mean_job_latency'] * 1000:.2f}"],
    ]))
    print(f"virtual time: {result['virtual_seconds']:.4f} s; "
          f"events: {result['events']:,} "
          f"({result['events_per_second']:,} events/s)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Execution-templates reproduction: run the paper's "
                    "workloads on a simulated cluster.",
    )
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="run the command under cProfile and write "
                             "stats to PATH (inspect with pstats/snakeviz)")
    sub = parser.add_subparsers(dest="command", required=True)

    lr = sub.add_parser("lr", help="logistic regression (Figs. 1/7a/8/9/10)")
    _add_common(lr)
    lr.add_argument("--iterations", type=int, default=12)
    lr.add_argument("--data-gb", type=float, default=100.0)
    lr.add_argument("--real", action="store_true",
                    help="run real numpy task bodies (small scale)")
    lr.add_argument("--blocking", action="store_true",
                    help="driver waits for each iteration")
    lr.add_argument("--no-templates", action="store_true",
                    help="disable execution templates (central scheduling)")
    lr.set_defaults(fn=cmd_lr)

    km = sub.add_parser("kmeans", help="k-means clustering (Fig. 7b)")
    _add_common(km)
    km.add_argument("--iterations", type=int, default=12)
    km.add_argument("--data-gb", type=float, default=100.0)
    km.add_argument("--real", action="store_true")
    km.add_argument("--blocking", action="store_true")
    km.add_argument("--no-templates", action="store_true")
    km.set_defaults(fn=cmd_kmeans)

    water = sub.add_parser("water", help="water-simulation proxy (Fig. 11)")
    _add_common(water)
    water.add_argument("--scale", type=float, default=0.1,
                       help="stage-duration scale factor")
    water.add_argument("--frames", type=int, default=1)
    water.add_argument("--frame-duration", type=float, default=0.004)
    water.add_argument("--no-templates", action="store_true")
    water.set_defaults(fn=cmd_water)

    reg = sub.add_parser("regression",
                         help="the paper's Figure-3 nested training loop")
    _add_common(reg)
    reg.add_argument("--no-templates", action="store_true")
    reg.set_defaults(fn=cmd_regression)

    rot = sub.add_parser(
        "rotation", help="rotating producer/consumer loop (patch-cache "
                         "exerciser; every round validates, patches once, "
                         "then hits the cache)")
    _add_common(rot)
    rot.add_argument("--iterations", type=int, default=14)
    rot.set_defaults(fn=cmd_rotation)

    sweep = sub.add_parser(
        "sweep", help="run one workload across seeds (optionally in "
                      "parallel worker processes)")
    sweep.add_argument("--workload", choices=sorted(_SWEEP_APPS),
                       default="lr")
    sweep.add_argument("--workers", type=int, default=20)
    sweep.add_argument("--iterations", type=int, default=12)
    sweep.add_argument("--seeds", type=int, default=4,
                       help="run seeds 0..N-1")
    sweep.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="number of worker processes (1 = in-process)")
    sweep.set_defaults(fn=cmd_sweep)

    trace = sub.add_parser(
        "trace", help="run a workload with tracing on and export a "
                      "Chrome/Perfetto trace plus critical-path report")
    trace.add_argument("workload", choices=sorted(_TRACE_WORKLOADS),
                       help="workload to trace (fig07=lr, fig08=kmeans, "
                            "rotation=patch exerciser)")
    trace.add_argument("--workers", type=int, default=8)
    trace.add_argument("--iterations", type=int, default=12)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="output JSON path "
                            "(default trace_<workload>.json)")
    trace.set_defaults(fn=cmd_trace)

    reb = sub.add_parser(
        "rebalance", help="automated fig09: inject a straggler mid-run and "
                          "let the adaptive rebalancer route around it")
    reb.add_argument("--workers", type=int, default=16)
    reb.add_argument("--iterations", type=int, default=40)
    reb.add_argument("--seed", type=int, default=0)
    reb.add_argument("--scale", type=float, default=2.0,
                     help="straggler slowdown factor (default 2.0)")
    reb.add_argument("--fault-iteration", type=int, default=12,
                     help="inject the slowdown after this iteration")
    reb.add_argument("--off", action="store_true",
                     help="control run: leave the rebalancer disabled")
    reb.set_defaults(fn=cmd_rebalance)

    autos = sub.add_parser(
        "autoscale", help="demand-step reconciliation: inject a scripted "
                          "demand step mid-run and let the elastic "
                          "autoscaler re-stabilize the cluster")
    autos.add_argument("--workers", type=int, default=16)
    autos.add_argument("--iterations", type=int, default=40)
    autos.add_argument("--seed", type=int, default=0)
    autos.add_argument("--step", type=float, default=2.0,
                       help="demand multiplier (>1 scales up, <1 drains; "
                            "default 2.0)")
    autos.add_argument("--step-iteration", type=int, default=12,
                       help="inject the demand step after this iteration")
    autos.add_argument("--interval", type=float, default=None, metavar="S",
                       help="reconciliation tick period (default: the "
                            "probe run's pre-step mean iteration time)")
    autos.add_argument("--cold-start", type=float, default=None, metavar="S",
                       help="worker provisioning delay "
                            "(default: 4 intervals)")
    autos.add_argument("--mode",
                       choices=("centralized", "decentralized", "sharded"),
                       default="centralized",
                       help="scheduling mode the stepped run uses")
    autos.add_argument("--shards", type=int, default=None, metavar="N",
                       help="controller shard count for --mode sharded")
    autos.set_defaults(fn=cmd_autoscale)

    serve = sub.add_parser(
        "serve", help="multi-tenant serving: seeded Poisson job arrivals "
                      "through admission control and fair-share dispatch")
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument("--jobs", type=int, default=6,
                       help="number of scheduled job arrivals")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--mode",
                       choices=("centralized", "decentralized", "sharded"),
                       default="centralized",
                       help="scheduling mode every admitted job runs under")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="controller shard count for --mode sharded")
    serve.add_argument("--mean-interarrival", type=float, default=0.05,
                       metavar="S",
                       help="mean Poisson interarrival gap in virtual "
                            "seconds (default 0.05)")
    serve.add_argument("--iterations", type=int, default=6,
                       help="iterations per job")
    serve.add_argument("--max-concurrent", type=int, default=3,
                       help="admission cap: jobs running at once")
    serve.add_argument("--queue-cap", type=int, default=8,
                       help="wait-queue length; overflow is rejected")
    serve.add_argument("--dispatch-cap", type=int, default=4,
                       metavar="N",
                       help="controller dispatch cap: concurrent block "
                            "instances before fair-share queueing kicks in")
    serve.set_defaults(fn=cmd_serve)

    perf = sub.add_parser(
        "perf", help="wall-clock benchmark harness "
                     "(updates BENCH_control_plane.json)")
    perf.add_argument("--scale", choices=sorted(SCALES), default="paper")
    perf.add_argument("--no-micro", action="store_true",
                      help="skip the control-plane microbenchmarks")
    perf.add_argument("--no-write", action="store_true",
                      help="print the report without touching the BENCH file")
    perf.set_defaults(fn=cmd_perf)

    profile = sub.add_parser(
        "profile", help="cProfile one harness workload and print the "
                        "top cumulative functions (perf attribution)")
    profile.add_argument("--workload", default="fig07_lr", metavar="NAME",
                         help="harness workload to profile "
                              f"({', '.join(sorted(WORKLOADS))})")
    profile.add_argument("--workers", type=int, default=100)
    profile.add_argument("--iterations", type=int, default=14)
    profile.add_argument("--mode",
                         choices=("centralized", "decentralized", "sharded"),
                         default="centralized",
                         help="scheduling mode to profile under")
    profile.add_argument("--sort", choices=("cumulative", "tottime"),
                         default="cumulative",
                         help="pstats sort order: 'cumulative' finds the "
                              "expensive call paths, 'tottime' the "
                              "expensive functions themselves")
    profile.add_argument("--top", type=int, default=30, metavar="N",
                         help="number of functions to print")
    profile.add_argument("--out", metavar="PATH", default=None,
                         help="also dump raw cProfile stats to PATH")
    profile.set_defaults(fn=cmd_profile)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            args.fn(args)
        finally:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"profile written to {args.profile}")
    else:
        args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
