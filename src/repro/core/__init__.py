"""Execution templates: the paper's core control-plane abstraction.

Exports the template data structures and operations: controller templates
(§2.2/Fig. 5a), worker templates with generation and postcondition closure
(§2.2/§4.1/Fig. 5b), validation with the auto-validation fast path (§4.2),
patches and the patch cache (§2.4/§4.2), and in-place edits including
task-migration planning (§2.3/§4.3/Fig. 6).
"""

from .controller_template import (
    ControllerTemplate,
    ControllerTemplateBuilder,
    ControllerTemplateInstance,
    CTEntry,
)
from .edits import (
    EditOp,
    MigrationError,
    apply_edits,
    plan_migration,
    plan_migrations,
)
from .patching import Patch, PatchCache, build_patch
from .spec import BlockSpec, LogicalTask, StageSpec
from .validation import (
    ValidationResult,
    ValidationState,
    full_validate,
    validate,
)
from .worker_template import (
    DirectoryDelta,
    TemplateEntry,
    WorkerHalf,
    WorkerTemplateSet,
    copy_tag,
    generate_worker_templates,
    instantiate_entries,
)

__all__ = [
    "BlockSpec",
    "CTEntry",
    "ControllerTemplate",
    "ControllerTemplateBuilder",
    "ControllerTemplateInstance",
    "DirectoryDelta",
    "EditOp",
    "LogicalTask",
    "MigrationError",
    "Patch",
    "PatchCache",
    "StageSpec",
    "TemplateEntry",
    "ValidationResult",
    "ValidationState",
    "WorkerHalf",
    "WorkerTemplateSet",
    "apply_edits",
    "build_patch",
    "copy_tag",
    "full_validate",
    "generate_worker_templates",
    "instantiate_entries",
    "plan_migration",
    "plan_migrations",
    "validate",
]
