"""Template validation (§4.2).

Before instantiating a worker template the controller must check that every
precondition holds: each worker listed in the template's precondition map
must hold the *latest* version of each required object.

Two paths exist, mirroring Table 2 of the paper:

* **auto-validation** — when a template is instantiated immediately after a
  completed (or issued) instance of *itself* and no external state change
  (migration, eviction, central execution, recovery) happened in between,
  the postcondition-closure property guarantees the preconditions hold and
  the check is skipped entirely (1.7 µs/task in the paper).
* **full validation** — otherwise every (worker, object) precondition pair
  is checked against the object directory (7.3 µs/task). Violations are
  handed to the patching machinery.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..nimbus.data import ObjectDirectory
from .worker_template import WorkerTemplateSet

Violation = Tuple[int, int]  # (worker, oid)


class ValidationResult:
    """Outcome of validating one worker-template set."""

    __slots__ = ("auto", "violations")

    def __init__(self, auto: bool, violations: List[Violation]):
        self.auto = auto
        self.violations = violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "auto" if self.auto else "full"
        return f"<ValidationResult {mode} violations={self.violations}>"


class ValidationState:
    """Tracks whether auto-validation applies (controller-side).

    ``last_key`` is the (block_id, version) whose directory delta was most
    recently applied; ``clean`` is cleared by anything that mutates system
    state outside the template contract.
    """

    def __init__(self) -> None:
        self.last_key: Optional[Tuple[str, int]] = None
        self.clean: bool = False

    def note_instantiation(self, key: Tuple[str, int]) -> None:
        self.last_key = key
        self.clean = True

    def invalidate(self) -> None:
        """External state change: next instantiation must fully validate."""
        self.last_key = None
        self.clean = False

    def auto_validates(self, key: Tuple[str, int]) -> bool:
        return self.clean and self.last_key == key


def full_validate(template_set: WorkerTemplateSet,
                  directory: ObjectDirectory) -> List[Violation]:
    """Check every precondition pair; return the violations."""
    violations: List[Violation] = []
    for worker, oids in sorted(template_set.preconditions.items()):
        for oid in sorted(oids):
            if not directory.is_fresh(oid, worker):
                violations.append((worker, oid))
    return violations


def validate(
    template_set: WorkerTemplateSet,
    directory: ObjectDirectory,
    state: ValidationState,
) -> ValidationResult:
    """Validate a template set, using auto-validation when it applies."""
    if state.auto_validates(template_set.key):
        return ValidationResult(auto=True, violations=[])
    return ValidationResult(auto=False,
                            violations=full_validate(template_set, directory))
