"""Template validation (§4.2).

Before instantiating a worker template the controller must check that every
precondition holds: each worker listed in the template's precondition map
must hold the *latest* version of each required object.

Two paths exist, mirroring Table 2 of the paper:

* **auto-validation** — when a template is instantiated immediately after a
  completed (or issued) instance of *itself* and no external state change
  (migration, eviction, central execution, recovery) happened in between,
  the postcondition-closure property guarantees the preconditions hold and
  the check is skipped entirely (1.7 µs/task in the paper).
* **full validation** — otherwise every (worker, object) precondition pair
  is checked against the object directory (7.3 µs/task). Violations are
  handed to the patching machinery.

Full validation is itself incremental in wall-clock terms: the directory
stamps every object whose latest version or holder set changes, and each
template set caches the outcome of its previous full validation together
with the directory stamp it was computed at. A revalidation then re-checks
only the *dirty intersection* — precondition objects touched since the
cached pass — and merges with the cached violations. The first validation
of a template (or a validation against a different directory) falls back
to the brute-force scan over the precomputed precondition pairs. Setting
``REPRO_VALIDATE_CROSS_CHECK=1`` (or :data:`CROSS_CHECK`) cross-checks
every incremental result against brute force and raises on divergence.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from ..nimbus.data import ObjectDirectory
from .worker_template import WorkerTemplateSet

Violation = Tuple[int, int]  # (worker, oid)

#: debug flag: verify every incremental validation against brute force
CROSS_CHECK = os.environ.get("REPRO_VALIDATE_CROSS_CHECK", "") not in ("", "0")


class ValidationResult:
    """Outcome of validating one worker-template set."""

    __slots__ = ("auto", "violations")

    def __init__(self, auto: bool, violations: List[Violation]):
        self.auto = auto
        self.violations = violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "auto" if self.auto else "full"
        return f"<ValidationResult {mode} violations={self.violations}>"


class ValidationState:
    """Tracks whether auto-validation applies (controller-side).

    ``last_key`` is the (block_id, version) whose directory delta was most
    recently applied; ``clean`` is cleared by anything that mutates system
    state outside the template contract.
    """

    def __init__(self) -> None:
        self.last_key: Optional[Tuple[str, int]] = None
        self.clean: bool = False

    def note_instantiation(self, key: Tuple[str, int]) -> None:
        self.last_key = key
        self.clean = True

    def invalidate(self) -> None:
        """External state change: next instantiation must fully validate."""
        self.last_key = None
        self.clean = False

    def auto_validates(self, key: Tuple[str, int]) -> bool:
        return self.clean and self.last_key == key


def brute_force_validate(template_set: WorkerTemplateSet,
                         directory: ObjectDirectory) -> List[Violation]:
    """Check every precondition pair; return the violations."""
    is_fresh = directory.is_fresh
    return [(worker, oid)
            for worker, oid in template_set.precondition_pairs
            if not is_fresh(oid, worker)]


def full_validate(template_set: WorkerTemplateSet,
                  directory: ObjectDirectory) -> List[Violation]:
    """Check the template set's preconditions; return the violations.

    Semantically identical to :func:`brute_force_validate`, but re-checks
    only precondition objects the directory has marked dirty since this
    template set's previous full validation (see module docstring).
    """
    cache = template_set.validation_cache
    stamp = directory.stamp
    if cache is None or cache[0] != directory.token:
        violations = brute_force_validate(template_set, directory)
        template_set.validation_cache = (
            directory.token, stamp, frozenset(violations))
        return violations

    _token, last_stamp, cached = cache
    stamp_of = directory.stamp_of
    by_oid = template_set.precondition_workers
    dirty = [oid for oid in by_oid if stamp_of(oid) > last_stamp]
    if not dirty:
        violations = sorted(cached)
    else:
        dirty_set = set(dirty)
        merged = {pair for pair in cached if pair[1] not in dirty_set}
        is_fresh = directory.is_fresh
        for oid in dirty:
            for worker in by_oid[oid]:
                if not is_fresh(oid, worker):
                    merged.add((worker, oid))
        violations = sorted(merged)
    template_set.validation_cache = (
        directory.token, stamp, frozenset(violations))
    if CROSS_CHECK:
        reference = brute_force_validate(template_set, directory)
        if violations != reference:
            raise AssertionError(
                f"incremental validation diverged for template "
                f"{template_set.key}: incremental={violations} "
                f"brute-force={reference}")
    return violations


def validate(
    template_set: WorkerTemplateSet,
    directory: ObjectDirectory,
    state: ValidationState,
) -> ValidationResult:
    """Validate a template set, using auto-validation when it applies."""
    if state.auto_validates(template_set.key):
        return ValidationResult(auto=True, violations=[])
    return ValidationResult(auto=False,
                            violations=full_validate(template_set, directory))
