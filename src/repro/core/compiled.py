"""Compiled execution plans for worker-template halves.

The paper's thesis is that repeated control-plane decisions should be made
once and replayed cheaply. The interpreted replay path still pays full
object churn per instantiation: one fresh :class:`Command` per entry, dict
registration, and per-edge dependency resolution. This module extends the
caching one level down, from *decisions* to the *dispatch data structures*:

* :func:`compile_plan` turns a worker half's entry array into a
  struct-of-arrays :class:`CompiledPlan` — flat arrays of initial
  dependency counts, a CSR successor adjacency (offsets + targets),
  precomputed send/recv tag ingredients, parameter slots, and the *net*
  effect of the batch on the worker's object-conflict tracker;
* :class:`CommandArena` is a pooled array of :class:`Command` objects
  matching the plan. Instantiating a template rewrites only the
  per-instance fields (cid, tag, params, scheduling state) in place; the
  static fields (kind, read/write sets, function, destination) are written
  once when the arena is built. Arenas are pooled per plan because the
  driver pipelines instances, so several instances of the same block can
  be in flight on a worker at once.

The compiled path is semantics-preserving by construction: the worker's
resolution sweep over a plan visits entries in the same order, counts the
same dependencies, and triggers the same synchronous completions as the
interpreted two-pass ``_enqueue_batch``, so virtual results (iteration
times, decision counters, chaos snapshots) are bit-identical either way.
Escape hatches: ``REPRO_COMPILED_TEMPLATES=0`` disables the compiled path
entirely; ``REPRO_COMPILED_CROSS_CHECK=1`` re-derives every instantiation
through the interpreted ``instantiate_entries`` and compares field by
field (and recompiles the plan to catch stale-plan-after-edit bugs).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..nimbus.commands import Command, CommandKind


def enabled_default() -> bool:
    """Compiled path on unless ``REPRO_COMPILED_TEMPLATES`` disables it."""
    return os.environ.get("REPRO_COMPILED_TEMPLATES", "1") not in (
        "", "0", "false", "no")


def cross_check_enabled() -> bool:
    return os.environ.get("REPRO_COMPILED_CROSS_CHECK", "") not in ("", "0")


class CommandArena:
    """A reusable array of Command objects for one compiled plan.

    ``sweep_pos`` is the index the owning worker's resolution sweep has
    reached for the instance currently occupying the arena; successors at
    positions not yet swept must not be decremented directly (their
    dependency counts are not initialized yet) — completions during the
    sweep park adjustments in ``early`` instead, and the sweep subtracts
    them when it reaches the position. ``outstanding`` counts commands not
    yet completed; the arena returns to its plan's pool at zero.
    """

    __slots__ = ("plan", "cmds", "sweep_pos", "early", "outstanding")

    def __init__(self, plan: "CompiledPlan", cmds: List[Command]):
        self.plan = plan
        self.cmds = cmds
        self.sweep_pos = -1
        self.early: Dict[int, int] = {}
        self.outstanding = 0

    def release(self) -> None:
        self.early.clear()
        self.outstanding = 0
        self.plan.pool.append(self)


class CompiledPlan:
    """Struct-of-arrays execution plan for one worker half's entry array.

    All arrays are indexed by *batch position* (live entries in entry
    order); ``index[pos]`` maps back to the original entry index, which is
    what command ids are based on (tombstoned indices stay reserved).
    """

    __slots__ = (
        "live", "reports", "m", "index", "kinds", "recv_flags",
        "init_before", "before_pos", "succ_offsets", "succ_targets",
        "sends", "recvs", "param_slots", "report_flags", "report_positions",
        "ext_checks", "writes_final", "readers_reset", "readers_append",
        "rows", "pool",
    )

    def __init__(self) -> None:
        self.pool: List[CommandArena] = []

    # ------------------------------------------------------------------
    # Arena pooling
    # ------------------------------------------------------------------
    def acquire(self, worker_id: int, registry=None) -> CommandArena:
        pool = self.pool
        if pool:
            arena = pool.pop()
        else:
            arena = self._build_arena(worker_id, registry)
        arena.sweep_pos = -1
        arena.outstanding = self.m
        return arena

    def _build_arena(self, worker_id: int, registry) -> CommandArena:
        cmds: List[Command] = []
        for e in self.live:
            cmd = Command(
                -1, e.kind, worker_id, read=e.read, write=e.write,
                function=e.function, dst_worker=e.dst_worker,
                src_worker=e.src_worker, size_bytes=e.size_bytes,
            )
            cmds.append(cmd)
        arena = CommandArena(self, cmds)
        offsets, targets = self.succ_offsets, self.succ_targets
        for pos, cmd in enumerate(cmds):
            cmd._cpos = pos
            cmd._carena = arena
            cmd._csucc = [cmds[t] for t in targets[offsets[pos]:offsets[pos + 1]]]
            if registry is not None and cmd.kind == CommandKind.TASK:
                try:
                    cmd._cfn = registry.get(cmd.function)
                except KeyError:
                    pass
        return arena

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Small summary dict (trace labels, debugging) — no entry data."""
        return {
            "commands": self.m,
            "sends": len(self.sends),
            "recvs": len(self.recvs),
            "reports": len(self.report_positions),
            "param_slots": len(self.param_slots),
            "ext_checks": len(self.ext_checks),
        }

    # ------------------------------------------------------------------
    # Cross-check support
    # ------------------------------------------------------------------
    def signature(self) -> Tuple:
        """Everything derived from the entry array, as plain values —
        equal signatures mean the plan matches the (possibly re-edited)
        entries it claims to represent."""
        return (
            self.m, tuple(self.index), tuple(self.kinds),
            tuple(self.recv_flags), tuple(self.init_before),
            tuple(self.before_pos), tuple(self.succ_offsets),
            tuple(self.succ_targets), tuple(self.sends), tuple(self.recvs),
            tuple(self.param_slots), tuple(self.report_flags),
            tuple(self.report_positions), tuple(self.ext_checks),
            tuple(self.writes_final), tuple(self.readers_reset),
            tuple(self.readers_append),
        )


def compile_plan(entries: List[Optional[Any]], reports) -> CompiledPlan:
    """Compile a worker half's entry array into a :class:`CompiledPlan`.

    The compilation simulates the interpreted resolution sweep
    symbolically: which before-set edges survive tombstoning, which
    read/write accesses face *pre-batch* state (and therefore need the
    runtime conflict tracker consulted), and what net update the batch
    applies to the tracker (intra-batch churn collapses to the final
    writer plus the trailing readers of each object).
    """
    plan = CompiledPlan()
    live = [e for e in entries if e is not None]
    m = len(live)
    plan.live = live
    plan.reports = frozenset(reports)
    plan.m = m
    pos_of: Dict[int, int] = {}
    for pos, e in enumerate(live):
        pos_of[e.index] = pos
    plan.index = [e.index for e in live]
    plan.kinds = [e.kind for e in live]
    plan.recv_flags = [e.kind == CommandKind.RECV for e in live]

    # --- before-set edges (intra-batch dependency graph, CSR) ---------
    before_pos: List[Tuple[int, ...]] = []
    for pos, e in enumerate(live):
        deps: List[int] = []
        seen = set()
        for j in e.before:
            p = pos_of.get(j)
            if p is not None and p != pos and p not in seen:
                seen.add(p)
                deps.append(p)
        before_pos.append(tuple(deps))
    plan.before_pos = before_pos
    plan.init_before = [len(d) for d in before_pos]
    counts = [0] * m
    for deps in before_pos:
        for p in deps:
            counts[p] += 1
    offsets = [0] * (m + 1)
    for p in range(m):
        offsets[p + 1] = offsets[p] + counts[p]
    targets = [0] * offsets[m]
    fill = offsets[:m]
    # dependents are appended in resolution (position) order, matching the
    # order the interpreted path builds its _dependents lists in
    for pos, deps in enumerate(before_pos):
        for p in deps:
            targets[fill[p]] = pos
            fill[p] += 1
    plan.succ_offsets = offsets
    plan.succ_targets = targets

    # --- per-kind instantiation data ----------------------------------
    plan.sends = [
        (pos, e.dst_worker, e.dst_index)
        for pos, e in enumerate(live) if e.kind == CommandKind.SEND
    ]
    plan.recvs = [
        (pos, e.index)
        for pos, e in enumerate(live) if e.kind == CommandKind.RECV
    ]
    plan.param_slots = [
        (pos, e.param_slot)
        for pos, e in enumerate(live)
        if e.kind == CommandKind.TASK and e.param_slot
    ]
    plan.report_flags = [e.index in plan.reports for e in live]
    plan.report_positions = [
        pos for pos, flag in enumerate(plan.report_flags) if flag
    ]

    # --- external (cross-batch) conflict checks -----------------------
    # Only accesses that face pre-batch tracker state need runtime checks:
    # reads before the first in-batch write of their object, and the first
    # in-batch write of each object (later writes see in-batch state,
    # which the batch's own before sets already order completely).
    ext_checks: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
    written: set = set()
    readers: Dict[int, List[int]] = {}
    final_writer_pos: Dict[int, int] = {}
    for pos, e in enumerate(live):
        roids: List[int] = []
        woids: List[int] = []
        for oid in e.read:
            if oid not in written and oid not in roids:
                roids.append(oid)
        for oid in e.write:
            if oid not in written and oid not in woids:
                woids.append(oid)
        if roids or woids:
            ext_checks.append((pos, tuple(roids), tuple(woids)))
        for oid in e.read:
            lst = readers.get(oid)
            if lst is None:
                readers[oid] = [pos]
            else:
                lst.append(pos)
        for oid in e.write:
            written.add(oid)
            final_writer_pos[oid] = pos
            readers[oid] = []
    plan.ext_checks = ext_checks

    # --- net conflict-tracker update ----------------------------------
    plan.writes_final = list(final_writer_pos.items())
    plan.readers_reset = [
        (oid, tuple(readers[oid])) for oid in final_writer_pos
    ]
    plan.readers_append = [
        (oid, tuple(lst)) for oid, lst in readers.items()
        if oid not in written and lst
    ]
    # fused per-position row for the runtime sweep: one list index + unpack
    # instead of four parallel-array loads per command
    plan.rows = list(zip(plan.index, plan.report_flags, plan.init_before,
                         plan.recv_flags))
    return plan
