"""Driver-level program structures: logical tasks, stages, basic blocks.

A driver program is a sequence of **basic blocks** (§2.1): straight-line
code sequences with one entry point and no internal branches. Each block is
a list of **stages**; a stage is a parallel computation that expands into
one logical task per partition. Blocks are the unit of template
installation and instantiation.

Block structure must be identical across executions of the same
``block_id`` — only the parameter values (and the fresh task identifiers)
change. That is the template contract.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple


class LogicalTask:
    """One task of a stage: a function applied to read/write object sets.

    ``param_slot`` names the entry of the block's parameter dictionary
    passed to the task at instantiation (the template caches the slot name,
    not the value).
    """

    __slots__ = ("function", "read", "write", "param_slot")

    def __init__(
        self,
        function: str,
        read: Iterable[int] = (),
        write: Iterable[int] = (),
        param_slot: Optional[str] = None,
    ):
        self.function = function
        self.read = tuple(read)
        self.write = tuple(write)
        self.param_slot = param_slot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LTask {self.function} r={self.read} w={self.write}>"


class StageSpec:
    """A named parallel stage: many tasks, typically one per partition."""

    __slots__ = ("name", "tasks")

    def __init__(self, name: str, tasks: List[LogicalTask]):
        self.name = name
        self.tasks = tasks

    def __len__(self) -> int:
        return len(self.tasks)


class BlockSpec:
    """A basic block: stages plus declared returns.

    ``returns`` maps result names to object ids whose post-block value is
    reported back to the driver (this is how data-dependent loop conditions
    such as ``error > threshold`` are fed to the driver program).
    """

    def __init__(
        self,
        block_id: str,
        stages: List[StageSpec],
        returns: Optional[Dict[str, int]] = None,
    ):
        self.block_id = block_id
        self.stages = stages
        self.returns = dict(returns or {})
        self.num_tasks = sum(len(stage) for stage in stages)

    def all_tasks(self) -> List[Tuple[str, LogicalTask]]:
        """Flatten to (stage_name, task) pairs in program order."""
        out = []
        for stage in self.stages:
            for task in stage.tasks:
                out.append((stage.name, task))
        return out

    def structure_signature(self) -> Tuple:
        """A hashable signature of the block structure (ignores params).

        Used by tests and the driver to assert that repeated submissions of
        the same ``block_id`` really are the same basic block.
        """
        return tuple(
            (stage.name, tuple((t.function, t.read, t.write, t.param_slot)
                               for t in stage.tasks))
            for stage in self.stages
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.block_id}: {len(self.stages)} stages, {self.num_tasks} tasks>"
