"""Edits: in-place modification of installed worker templates (§2.3, §4.3).

An edit adds or removes tasks in an existing worker template. Edits ride as
metadata on the next instantiation message and mutate the cached template
*persistently* on both halves, so the cost of a scheduling change scales
with the size of the change rather than the size of the template.

Task migration (Figure 6) is the canonical edit: the task's slot on the
source worker is replaced by the RECV of its result — keeping the same
index inside the command-identifier array, so no other entry's before set
changes — and the task plus its input RECVs and result SEND are appended to
the destination worker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..nimbus.commands import CommandKind
from .worker_template import TemplateEntry, WorkerTemplateSet


class MigrationError(ValueError):
    """Raised when a task cannot be migrated with a template edit."""


class EditOp:
    """One edit primitive applied to a worker half's entry array."""

    REPLACE = "replace"
    APPEND = "append"
    REMOVE = "remove"

    __slots__ = ("op", "index", "entry")

    def __init__(self, op: str, index: int,
                 entry: Optional[TemplateEntry] = None):
        self.op = op
        self.index = index
        self.entry = entry

    def clone(self) -> "EditOp":
        """Deep-enough copy for applying the op to a second entry array
        (the worker half) without sharing TemplateEntry objects with the
        first (the controller half)."""
        entry = self.entry.clone() if self.entry is not None else None
        return EditOp(self.op, self.index, entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EditOp {self.op} @{self.index}>"


def apply_edits(entries: List[Optional[TemplateEntry]],
                ops: List[EditOp]) -> None:
    """Apply edit ops to an entry array, in order. Mutates ``entries``."""
    for op in ops:
        if op.op == EditOp.REPLACE:
            if entries[op.index] is None:
                raise ValueError(f"replacing tombstoned entry {op.index}")
            op.entry.index = op.index
            entries[op.index] = op.entry
        elif op.op == EditOp.APPEND:
            if op.entry.index != len(entries):
                raise ValueError(
                    f"append index {op.entry.index} != array length {len(entries)}"
                )
            entries.append(op.entry)
        elif op.op == EditOp.REMOVE:
            entries[op.index] = None
        else:
            raise ValueError(f"unknown edit op {op.op!r}")


def _provider_of(entries: List[Optional[TemplateEntry]], upto: int,
                 oid: int) -> Optional[int]:
    """Local index of the entry providing the current version of ``oid``
    at position ``upto`` (None = precondition-fresh)."""
    for i in range(upto - 1, -1, -1):
        entry = entries[i]
        if entry is not None and oid in entry.write:
            return i
    return None


def _sole_reader(entries: List[Optional[TemplateEntry]], reader_idx: int,
                 oid: int) -> bool:
    """True when no entry other than ``reader_idx`` reads or writes ``oid``."""
    for i, entry in enumerate(entries):
        if i == reader_idx or entry is None:
            continue
        if oid in entry.read or oid in entry.write:
            return False
    return True


def migration_conflict(
    template_set: WorkerTemplateSet,
    ct_index: int,
    dst: int,
) -> Optional[str]:
    """Non-mutating feasibility check for migrating ``ct_index`` to ``dst``.

    Mirrors the validation :func:`plan_migration` performs without touching
    the template set. ``plan_migration`` mutates the controller half
    immediately, so callers batching speculative moves (the adaptive
    rebalancer) must filter candidates *before* committing — a mid-batch
    :class:`MigrationError` would leave the halves inconsistent. Returns
    ``None`` when the move is safe, else a human-readable reason.
    """
    location = template_set.task_locations.get(ct_index)
    if location is None:
        return f"no task with controller index {ct_index}"
    src, src_idx = location
    if src == dst:
        return "task already on destination"
    src_entries = template_set.entries[src]
    task = src_entries[src_idx]
    if task is None or task.kind != CommandKind.TASK:
        return f"entry {src_idx} on worker {src} is not a task"
    if len(task.write) != 1:
        return f"task writes {task.write}; only single-write tasks migrate"
    dst_preconds = template_set.preconditions.get(dst, frozenset())
    touched = set(task.write)
    for oid in task.read:
        pre_block = _provider_of(src_entries, src_idx, oid) is None
        if pre_block and oid in dst_preconds:
            continue  # shared read: no copy, no conflict surface
        touched.add(oid)
    for entry in template_set.entries.get(dst, []):
        if entry is not None and touched & (set(entry.read) | set(entry.write)):
            return (f"destination worker {dst} already touches objects "
                    f"{sorted(touched & (set(entry.read) | set(entry.write)))}")
    return None


def plan_migration(
    template_set: WorkerTemplateSet,
    ct_index: int,
    dst: int,
    object_sizes: Dict[int, int],
) -> Dict[int, List[EditOp]]:
    """Plan the edits migrating the task with controller-template index
    ``ct_index`` to worker ``dst`` (Figure 6).

    Mutates the controller half (``template_set``) immediately and returns
    the per-worker edit ops to attach to the next instantiation messages.
    The template's external contract — preconditions and directory delta —
    is preserved: inputs are shipped from their original location each
    instantiation and the result is shipped back, so validation state stays
    clean and downstream templates are unaffected.
    """
    location = template_set.task_locations.get(ct_index)
    if location is None:
        raise MigrationError(f"no task with controller index {ct_index}")
    src, src_idx = location
    if src == dst:
        return {}
    src_entries = template_set.entries[src]
    task = src_entries[src_idx]
    if task is None or task.kind != CommandKind.TASK:
        raise MigrationError(f"entry {src_idx} on worker {src} is not a task")
    if len(task.write) != 1:
        raise MigrationError(
            "edit-based migration supports single-write tasks; "
            f"task writes {task.write}"
        )
    result_oid = task.write[0]
    dst_entries = template_set.entries.setdefault(dst, [])

    # Classify the task's inputs:
    # * shared reads — preconditions on the destination too (e.g. the model
    #   coefficients every gradient task reads): no copy needed, the
    #   destination already holds the pre-block version;
    # * relocatable reads — pre-block objects this task is the *sole*
    #   reader of (its training-data partition): the object's home moves
    #   with the task, a one-time data transfer the caller performs,
    #   instead of re-shipping the input every instantiation;
    # * copied reads — everything else ships per instantiation (Fig. 6 S1).
    dst_preconds = template_set.preconditions.get(dst, frozenset())
    shared_reads = []
    relocated_reads = []
    copy_reads = []
    for oid in task.read:
        pre_block = _provider_of(src_entries, src_idx, oid) is None
        if pre_block and oid in dst_preconds:
            shared_reads.append(oid)
        elif pre_block and _sole_reader(src_entries, src_idx, oid):
            relocated_reads.append(oid)
        else:
            copy_reads.append(oid)

    touched = set(copy_reads) | set(relocated_reads) | set(task.write)
    for entry in dst_entries:
        if entry is not None and touched & (set(entry.read) | set(entry.write)):
            raise MigrationError(
                f"destination worker {dst} already touches objects {touched}"
            )

    ops: Dict[int, List[EditOp]] = {src: [], dst: []}

    # Is the migrated task the *final* writer of its result on the source?
    # Only then does the copied-back result leave the destination holding
    # the block's final version (checked before the entry array mutates).
    final_local_provider = _provider_of(src_entries, len(src_entries),
                                        result_oid)
    task_writes_final = final_local_provider == src_idx

    # Input copies: S1 on src (appended), R1 on dst (appended).
    input_recv_indices: List[int] = []
    input_send_indices: List[int] = []
    next_dst = len(dst_entries)
    next_src = len(src_entries)
    for oid in copy_reads:
        provider = _provider_of(src_entries, src_idx, oid)
        size = object_sizes.get(oid, 0)
        recv_index = next_dst
        send = TemplateEntry(
            index=next_src, kind=CommandKind.SEND, read=(oid,),
            before=(provider,) if provider is not None else (),
            dst_worker=dst, dst_index=recv_index, size_bytes=size,
        )
        ops[src].append(EditOp(EditOp.APPEND, next_src, send))
        input_send_indices.append(next_src)
        next_src += 1
        recv = TemplateEntry(
            index=recv_index, kind=CommandKind.RECV, write=(oid,),
            src_worker=src, size_bytes=size,
        )
        ops[dst].append(EditOp(EditOp.APPEND, recv_index, recv))
        input_recv_indices.append(recv_index)
        next_dst += 1

    # The task itself, on the destination. Relocated inputs are read
    # locally (they become preconditions of the destination).
    task_index = next_dst
    migrated = task.clone()
    migrated.index = task_index
    migrated.before = tuple(input_recv_indices)
    migrated.report = False
    ops[dst].append(EditOp(EditOp.APPEND, task_index, migrated))
    next_dst += 1

    # Anti-dependencies for the shared (uncopied) inputs: any destination
    # entry that overwrites such an object — e.g. the postcondition-closure
    # RECV of the model coefficients — must now wait until the migrated
    # task has read the pre-block version. The reference points *forward*
    # in the index array (two-pass batch resolution handles it).
    for shared_oid in shared_reads:
        for k, entry in enumerate(dst_entries):
            if entry is not None and shared_oid in entry.write:
                guarded = entry.clone()
                guarded.before = tuple(entry.before) + (task_index,)
                ops[dst].append(EditOp(EditOp.REPLACE, k, guarded))

    # Result copy back: S2 on dst, R2 replacing the task's slot on src so
    # the task's dependents (which name this index in their before sets)
    # transparently depend on the received result instead.
    result_size = object_sizes.get(result_oid, 0)
    send_back = TemplateEntry(
        index=next_dst, kind=CommandKind.SEND, read=(result_oid,),
        before=(task_index,), dst_worker=src, dst_index=src_idx,
        size_bytes=result_size,
    )
    ops[dst].append(EditOp(EditOp.APPEND, next_dst, send_back))
    # the result RECV overwrites the task's slot; it must not land before
    # the input SENDs have read the old values (a read-modify-write task's
    # input and result are the same object). These before references point
    # *forward* in the index array — workers resolve instantiation batches
    # in two passes to support exactly this.
    recv_back = TemplateEntry(
        index=src_idx, kind=CommandKind.RECV, write=(result_oid,),
        before=tuple(task.before) + tuple(input_send_indices),
        src_worker=dst, size_bytes=result_size,
        report=task.report,
    )
    ops[src].append(EditOp(EditOp.REPLACE, src_idx, recv_back))

    # Mirror onto the controller half.
    apply_edits(src_entries, ops[src])
    apply_edits(dst_entries, ops[dst])
    template_set.task_locations[ct_index] = (dst, task_index)

    # The result also resides on the destination after the block — but
    # only if no later entry overwrites it on the source (otherwise the
    # destination's copy is an intermediate version, not the final one).
    holders = template_set.delta.final_holders.get(result_oid)
    if holders is not None and src in holders and task_writes_final:
        template_set.delta.final_holders[result_oid] = holders | {dst}

    # Precondition updates for relocated inputs: required at the
    # destination from now on, and no longer at the source (the task was
    # the sole reader there). The caller must move the data itself.
    if relocated_reads:
        template_set.preconditions[src] = (
            template_set.preconditions.get(src, frozenset())
            - frozenset(relocated_reads))
        template_set.preconditions[dst] = (
            template_set.preconditions.get(dst, frozenset())
            | frozenset(relocated_reads))
    template_set.last_relocations = list(relocated_reads)
    return ops


def plan_migrations(
    template_set: WorkerTemplateSet,
    moves: List[Tuple[int, int]],
    object_sizes: Dict[int, int],
) -> Tuple[Dict[int, List[EditOp]], int, List[Tuple[int, int]]]:
    """Plan a batch of (ct_index, dst) migrations.

    Returns the merged per-worker edit lists, the total number of edit
    operations (the unit Table 3 prices at 41 µs each), and the list of
    (oid, dst) input relocations the caller must perform (one-time data
    moves for sole-reader inputs).
    """
    merged: Dict[int, List[EditOp]] = {}
    total_ops = 0
    relocations: List[Tuple[int, int]] = []
    for ct_index, dst in moves:
        ops = plan_migration(template_set, ct_index, dst, object_sizes)
        for worker, lst in ops.items():
            merged.setdefault(worker, []).extend(lst)
            total_ops += len(lst)
        relocations.extend(
            (oid, dst) for oid in template_set.last_relocations)
    return merged, total_ops, relocations
