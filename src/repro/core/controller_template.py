"""Controller templates (§2.2, §4.1, Figure 5a).

A controller template caches the complete task-graph metadata of a basic
block across all workers: the list of tasks, their functions, read/write
sets, task-level dependencies, and the assignment of tasks to workers.

The structure is the paper's "optimized, table-based data structure":
entries live in a flat array; dependencies are arrays of *indices* into
that array (not pointers); instantiation fills a parallel array of fresh
task identifiers and a parameter block, touching O(1) state per task.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from .spec import BlockSpec


class CTEntry:
    """One task's fixed structure inside a controller template."""

    __slots__ = ("index", "function", "read", "write", "before", "worker",
                 "param_slot", "stage")

    def __init__(self, index, function, read, write, before, worker,
                 param_slot, stage):
        self.index = index
        self.function = function
        self.read = tuple(read)
        self.write = tuple(write)
        self.before = tuple(before)  # indices of earlier entries
        self.worker = worker
        self.param_slot = param_slot
        self.stage = stage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CTEntry {self.index} {self.function} w{self.worker} "
                f"before={self.before}>")


class ControllerTemplate:
    """The cached, parameterizable task graph of one basic block.

    Built either directly from a :class:`BlockSpec` plus a task→worker
    assignment (:meth:`from_block`) or incrementally as the controller
    schedules a marked block (:class:`ControllerTemplateBuilder`).
    """

    def __init__(self, block_id: str, entries: List[CTEntry],
                 returns: Dict[str, int], signature: Tuple):
        self.block_id = block_id
        self.entries = entries
        self.returns = dict(returns)
        self.signature = signature
        #: bumped every time the assignment is edited (worker-template keys)
        self.assignment_version = 0
        #: reusable instance for :meth:`instantiate_pooled`
        self._pooled_instance: Optional["ControllerTemplateInstance"] = None

    @property
    def num_tasks(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_block(cls, block: BlockSpec,
                   assignment: List[int]) -> "ControllerTemplate":
        """Build from a block spec and a per-task worker assignment.

        Task-level before sets are derived from read/write conflicts in
        program order: a task depends on the most recent writer of each
        object it reads, and on the most recent writer plus all subsequent
        readers of each object it writes.
        """
        entries: List[CTEntry] = []
        last_writer: Dict[int, int] = {}
        readers_since: Dict[int, List[int]] = {}
        index = 0
        for stage in block.stages:
            for task in stage.tasks:
                before = set()
                for oid in task.read:
                    writer = last_writer.get(oid)
                    if writer is not None:
                        before.add(writer)
                for oid in task.write:
                    writer = last_writer.get(oid)
                    if writer is not None:
                        before.add(writer)
                    before.update(readers_since.get(oid, ()))
                entry = CTEntry(
                    index=index,
                    function=task.function,
                    read=task.read,
                    write=task.write,
                    before=tuple(sorted(before)),
                    worker=assignment[index],
                    param_slot=task.param_slot,
                    stage=stage.name,
                )
                entries.append(entry)
                for oid in task.read:
                    readers_since.setdefault(oid, []).append(index)
                for oid in task.write:
                    last_writer[oid] = index
                    readers_since[oid] = []
                index += 1
        return cls(block.block_id, entries, block.returns,
                   block.structure_signature())

    # ------------------------------------------------------------------
    # Instantiation (Figure 5a)
    # ------------------------------------------------------------------
    def instantiate(self, task_id_base: int,
                    params: Dict[str, Any]) -> "ControllerTemplateInstance":
        """Fill in fresh task identifiers and the parameter block.

        Task identifiers are ``task_id_base + index`` — the index-array
        filling the paper describes, with the array contents implied by the
        base. Parameter values are resolved lazily through slot names, so
        this is O(1) per task.
        """
        return ControllerTemplateInstance(self, task_id_base, params)

    def instantiate_pooled(self, task_id_base: int,
                           params: Dict[str, Any]) -> "ControllerTemplateInstance":
        """Pooled variant of :meth:`instantiate` for the controller's hot
        path: one cached instance per template has its two per-
        instantiation fields rewritten in place. Callers must not retain
        the result across handler invocations — use :meth:`instantiate`
        when the instance outlives the current block."""
        inst = self._pooled_instance
        if inst is None:
            self._pooled_instance = inst = ControllerTemplateInstance(
                self, task_id_base, params)
        else:
            inst.task_id_base = task_id_base
            inst.params = params
        return inst

    # ------------------------------------------------------------------
    # Assignment edits (used by migration / eviction planning)
    # ------------------------------------------------------------------
    def reassign(self, entry_index: int, worker: int) -> None:
        """Move one task's cached assignment to another worker."""
        self.entries[entry_index].worker = worker

    def workers_used(self) -> List[int]:
        return sorted({e.worker for e in self.entries})

    def entries_on(self, worker: int) -> List[CTEntry]:
        return [e for e in self.entries if e.worker == worker]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ControllerTemplate {self.block_id}: {self.num_tasks} tasks>"


class ControllerTemplateInstance:
    """A controller template with parameters filled in (cheap view object)."""

    __slots__ = ("template", "task_id_base", "params")

    def __init__(self, template: ControllerTemplate, task_id_base: int,
                 params: Dict[str, Any]):
        self.template = template
        self.task_id_base = task_id_base
        self.params = params

    def task_id(self, index: int) -> int:
        return self.task_id_base + index

    def param_of(self, entry: CTEntry) -> Any:
        if entry.param_slot is None:
            return None
        return self.params.get(entry.param_slot)


class ControllerTemplateBuilder:
    """Accumulates a marked block's task stream into a controller template.

    The controller uses this while it simultaneously schedules the block
    normally (§4.1): between the driver's *start template* and *finish
    template* messages every scheduled task is appended here, and
    :meth:`finish` post-processes the temporary structure into the
    table-based :class:`ControllerTemplate`.
    """

    def __init__(self, block: BlockSpec):
        self.block = block
        self._assignment: List[int] = []

    def record(self, worker: int) -> None:
        """Record the assignment of the next task (in program order)."""
        self._assignment.append(worker)

    def finish(self) -> ControllerTemplate:
        if len(self._assignment) != self.block.num_tasks:
            raise ValueError(
                f"recorded {len(self._assignment)} assignments for a block "
                f"of {self.block.num_tasks} tasks"
            )
        return ControllerTemplate.from_block(self.block, self._assignment)
