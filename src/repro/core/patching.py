"""Patching: fixing system state to meet template preconditions (§2.4, §4.2).

When full validation finds violations — a worker about to instantiate a
template does not hold the latest version of some required object — the
controller *patches* system state by issuing copies that move data to where
the template expects it (Figure 4b).

A patch is itself a small template: a set of SEND/RECV entries per worker,
instantiated with fresh command ids. Workers cache patches by id, and the
controller keeps a **patch cache** indexed by what executed before the
failing template (§4.2 optimization 2). On a hit, invoking the patch is a
single message per involved worker; only on a miss does the controller
compute a new patch and ship its full command list.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..nimbus.commands import CommandKind
from ..nimbus.data import ObjectDirectory
from .worker_template import TemplateEntry

CopySpec = Tuple[int, int, int]  # (oid, src_worker, dst_worker)


class Patch:
    """A cached set of precondition-restoring copies.

    ``entries`` holds per-worker SEND/RECV template entries (the same
    structure worker templates use, so workers instantiate patches through
    the identical fast path). ``copies`` is the logical copy list used for
    cache-validity checks and directory updates.
    """

    def __init__(self, copies: List[CopySpec],
                 entries: Dict[int, List[TemplateEntry]],
                 patch_id: int = 0):
        # ids are allocated by the owning controller's PatchCache so
        # independent controllers (and test fixtures) never share a
        # process-global sequence
        self.patch_id = patch_id
        self.copies = list(copies)
        self.entries = entries
        self.installed_on: set = set()

    @property
    def violation_set(self) -> FrozenSet[Tuple[int, int]]:
        """The (worker, oid) violations this patch repairs."""
        return frozenset((dst, oid) for oid, _src, dst in self.copies)

    def workers(self) -> List[int]:
        return sorted(self.entries.keys())

    def entry_count(self, worker: int) -> int:
        return len(self.entries.get(worker, ()))

    def num_copies(self) -> int:
        return len(self.copies)

    def apply_to_directory(self, directory: ObjectDirectory) -> None:
        for oid, _src, dst in self.copies:
            directory.record_copy(oid, dst)

    def sources_still_valid(self, directory: ObjectDirectory) -> bool:
        """True if each cached source still holds the latest version."""
        return all(directory.is_fresh(oid, src) for oid, src, _dst in self.copies)


def build_patch(
    violations: List[Tuple[int, int]],
    directory: ObjectDirectory,
    object_sizes: Dict[int, int],
    patch_id: int = 0,
) -> Patch:
    """Compute a patch that repairs ``violations``.

    For each violated (worker, oid) pair, pick a holder of the latest
    version as the source and emit a SEND/RECV pair. Sources are chosen
    deterministically (lowest worker id) so patches are reproducible and
    cache-comparable.
    """
    copies: List[CopySpec] = []
    entries: Dict[int, List[TemplateEntry]] = {}

    def wlist(w: int) -> List[TemplateEntry]:
        return entries.setdefault(w, [])

    for worker, oid in sorted(violations):
        holders = directory.holders_of_latest(oid)
        if not holders:
            raise RuntimeError(
                f"object {oid} has no holder of its latest version; "
                f"cannot patch (lost data?)"
            )
        src = min(holders)
        copies.append((oid, src, worker))
        size = object_sizes.get(oid, 0)
        dst_list = wlist(worker)
        recv_index = len(dst_list)
        src_list = wlist(src)
        src_list.append(TemplateEntry(
            index=len(src_list), kind=CommandKind.SEND, read=(oid,),
            dst_worker=worker, dst_index=recv_index, size_bytes=size,
        ))
        dst_list.append(TemplateEntry(
            index=recv_index, kind=CommandKind.RECV, write=(oid,),
            src_worker=src, size_bytes=size,
        ))
    return Patch(copies, entries, patch_id)


class PatchCache:
    """Controller-side patch cache (§4.2 optimization 2).

    Indexed by (what executed before, target template key). "We have found
    that the patch cache has a very high hit rate in practice because
    control flow, while dynamic, is typically quite narrow."

    The cache is bounded: entries evict least-recently-used once
    ``capacity`` is exceeded (a hit refreshes recency), and evictions are
    reported to ``metrics`` under ``patch_cache.evictions``. The cache
    also allocates patch ids for its owning controller — ids survive
    :meth:`invalidate_all` because workers keep their installed-patch
    caches across a controller-side invalidation, and a reused id would
    collide with a patch a worker already ran.
    """

    def __init__(self, capacity: int = 256, metrics=None) -> None:
        self._cache: "OrderedDict[Tuple[Hashable, Tuple[str, int]], Patch]" = (
            OrderedDict())
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics
        self._next_patch_id = 1

    def allocate_id(self) -> int:
        """Allocate a patch id unique within this controller's lifetime."""
        pid = self._next_patch_id
        self._next_patch_id += 1
        return pid

    def lookup(
        self,
        prev_key: Hashable,
        target_key: Tuple[str, int],
        violations: List[Tuple[int, int]],
        directory: ObjectDirectory,
    ) -> Optional[Patch]:
        """Return the cached patch if it exactly repairs ``violations``."""
        key = (prev_key, target_key)
        patch = self._cache.get(key)
        if (
            patch is not None
            and patch.violation_set == frozenset(violations)
            and patch.sources_still_valid(directory)
        ):
            self._cache.move_to_end(key)
            self.hits += 1
            return patch
        self.misses += 1
        return None

    def store(self, prev_key: Hashable, target_key: Tuple[str, int],
              patch: Patch) -> None:
        key = (prev_key, target_key)
        self._cache[key] = patch
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
            if self._metrics is not None:
                self._metrics.incr("patch_cache.evictions")

    def invalidate_all(self) -> None:
        """Drop every cached patch; the id sequence keeps advancing."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
