"""Worker templates (§2.2, §4.1, Figure 5b).

A worker template describes the portion of a basic block that runs on one
worker: its task commands plus the data copies exchanged with other
workers. It has two halves:

* the **controller half** (:class:`WorkerTemplateSet`) represents the whole
  execution across all workers. It caches how tasks are distributed, each
  worker's **preconditions** (data objects that must hold their latest
  version locally when the template starts), and the **directory delta**
  the block applies to the controller's object-version map.
* the **worker half** (:class:`WorkerHalf`) is the per-worker command graph
  cached at the worker, instantiated by filling in a command-id base and a
  parameter block (Figure 5b), optionally after applying in-place edits.

Generation implements the paper's first validation optimization (§4.2):
copies are appended at the end of the template so that its *postconditions
imply its own preconditions* — tight inner loops then validate
automatically with no per-object checks.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..nimbus.commands import Command, CommandKind
from .controller_template import ControllerTemplate


class TemplateEntry:
    """Fixed structure of one command in a worker template."""

    __slots__ = ("index", "kind", "function", "read", "write", "before",
                 "param_slot", "dst_worker", "dst_index", "src_worker",
                 "size_bytes", "report", "ct_index")

    def __init__(
        self,
        index: int,
        kind: CommandKind,
        read: Tuple[int, ...] = (),
        write: Tuple[int, ...] = (),
        before: Tuple[int, ...] = (),
        function: Optional[str] = None,
        param_slot: Optional[str] = None,
        dst_worker: Optional[int] = None,
        dst_index: Optional[int] = None,
        src_worker: Optional[int] = None,
        size_bytes: int = 0,
        report: bool = False,
        ct_index: Optional[int] = None,
    ):
        self.index = index
        self.kind = kind
        self.read = tuple(read)
        self.write = tuple(write)
        self.before = tuple(before)
        self.function = function
        self.param_slot = param_slot
        self.dst_worker = dst_worker
        self.dst_index = dst_index
        self.src_worker = src_worker
        self.size_bytes = size_bytes
        self.report = report
        self.ct_index = ct_index  # originating controller-template entry

    def clone(self) -> "TemplateEntry":
        return TemplateEntry(
            self.index, self.kind, self.read, self.write, self.before,
            self.function, self.param_slot, self.dst_worker, self.dst_index,
            self.src_worker, self.size_bytes, self.report, self.ct_index,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TEntry {self.index} {self.kind.name} "
                f"fn={self.function} before={self.before}>")


class DirectoryDelta:
    """Cached effect of one block instance on the object directory.

    ``write_counts[oid]`` is how many version bumps the block applies;
    ``final_holders[oid]`` is the set of workers holding the final version
    when the block (including its postcondition-closure copies) completes.
    """

    def __init__(self, write_counts: Dict[int, int],
                 final_holders: Dict[int, FrozenSet[int]]):
        self.write_counts = dict(write_counts)
        self.final_holders = {k: frozenset(v) for k, v in final_holders.items()}

    def apply(self, directory) -> None:
        directory.apply_block_deltas(self.write_counts, self.final_holders)


class WorkerTemplateSet:
    """Controller half of the worker templates for one (block, assignment).

    Holds per-worker entry lists, preconditions, the directory delta, and
    bookkeeping for which workers have the worker half installed.
    """

    def __init__(
        self,
        block_id: str,
        version: int,
        entries: Dict[int, List[TemplateEntry]],
        preconditions: Dict[int, FrozenSet[int]],
        delta: DirectoryDelta,
        returns: Dict[str, int],
        report_entries: Dict[int, List[int]],
    ):
        self.block_id = block_id
        self.version = version
        self.entries = entries  # worker -> [TemplateEntry]
        self.preconditions = preconditions  # worker -> frozenset(oid)
        self.delta = delta
        self.returns = returns  # result name -> oid
        self.report_entries = report_entries  # worker -> [entry indices]
        self.installed_on: Set[int] = set()
        #: input objects relocated by the most recent plan_migration call
        self.last_relocations: List[int] = []
        # validation fast-path structures, precomputed once at generation
        # time so full validation never re-sorts the precondition map:
        #: every (worker, oid) precondition pair, in check order
        self.precondition_pairs: Tuple[Tuple[int, int], ...] = tuple(
            (worker, oid)
            for worker in sorted(preconditions)
            for oid in sorted(preconditions[worker])
        )
        #: reverse index: oid -> workers that require it fresh locally
        by_oid: Dict[int, List[int]] = {}
        for worker, oid in self.precondition_pairs:
            by_oid.setdefault(oid, []).append(worker)
        self.precondition_workers: Dict[int, Tuple[int, ...]] = {
            oid: tuple(workers) for oid, workers in by_oid.items()
        }
        #: incremental-validation cache managed by repro.core.validation:
        #: (directory token, directory stamp, frozenset of violations)
        self.validation_cache: Optional[Tuple[int, int, FrozenSet]] = None
        #: controller-template entry index -> (worker, local index)
        self.task_locations: Dict[int, Tuple[int, int]] = {
            entry.ct_index: (worker, entry.index)
            for worker, lst in entries.items()
            for entry in lst
            if entry is not None and entry.ct_index is not None
        }

    @property
    def key(self) -> Tuple[str, int]:
        return (self.block_id, self.version)

    def workers(self) -> List[int]:
        return [w for w, lst in self.entries.items() if lst]

    def num_commands(self) -> int:
        return sum(len(lst) for lst in self.entries.values())

    def entry_count(self, worker: int) -> int:
        return len(self.entries.get(worker, ()))

    def stats(self) -> dict:
        """Summary for trace labels: sizes only, no entry contents."""
        per_kind: Dict[str, int] = {}
        for lst in self.entries.values():
            for entry in lst:
                if entry is None:
                    continue
                kind = entry.kind.name
                per_kind[kind] = per_kind.get(kind, 0) + 1
        return {
            "workers": len([w for w, lst in self.entries.items() if lst]),
            "entries": self.num_commands(),
            "preconditions": len(self.precondition_pairs),
            **{f"kind_{k}": v for k, v in sorted(per_kind.items())},
        }


def generate_worker_templates(
    template: ControllerTemplate,
    object_sizes: Dict[int, int],
    version: int = 0,
) -> WorkerTemplateSet:
    """Generate worker templates from a controller template.

    Walks the controller template in program order assuming every
    precondition holds, inserting only *structural* copies (producer and
    consumer on different workers). State-dependent copies are never baked
    in — they are the province of patches (§2.4). Finally the template is
    closed under its own preconditions (§4.2 optimization 1).
    """
    per_worker: Dict[int, List[TemplateEntry]] = {}
    # oid -> {worker: providing local index or None (precondition-fresh)}
    avail: Dict[int, Dict[int, Optional[int]]] = {}
    written_in_block: Set[int] = set()
    final_writer: Dict[int, int] = {}
    write_counts: Dict[int, int] = {}
    # (oid, worker) -> local indices reading the current local version
    local_readers: Dict[Tuple[int, int], List[int]] = {}
    preconds: Dict[int, Set[int]] = {}

    def wlist(w: int) -> List[TemplateEntry]:
        return per_worker.setdefault(w, [])

    def add_copy(oid: int, src: int, src_idx: Optional[int], dst: int) -> int:
        """Insert a SEND on src and a RECV on dst; returns the recv index."""
        src_list, dst_list = wlist(src), wlist(dst)
        recv_index = len(dst_list)
        send_before = (src_idx,) if src_idx is not None else ()
        send = TemplateEntry(
            index=len(src_list), kind=CommandKind.SEND, read=(oid,),
            before=send_before, dst_worker=dst, dst_index=recv_index,
            size_bytes=object_sizes.get(oid, 0),
        )
        src_list.append(send)
        local_readers.setdefault((oid, src), []).append(send.index)
        recv_before = tuple(local_readers.get((oid, dst), ()))
        recv = TemplateEntry(
            index=recv_index, kind=CommandKind.RECV, write=(oid,),
            before=recv_before, src_worker=src,
            size_bytes=object_sizes.get(oid, 0),
        )
        dst_list.append(recv)
        avail.setdefault(oid, {})[dst] = recv_index
        local_readers[(oid, dst)] = []
        return recv_index

    for ct_entry in template.entries:
        w = ct_entry.worker
        lst = wlist(w)
        before: Set[int] = set()
        for oid in ct_entry.read:
            if oid not in written_in_block:
                # Read of pre-block state: precondition on this worker.
                preconds.setdefault(w, set()).add(oid)
                avail.setdefault(oid, {}).setdefault(w, None)
            else:
                holders = avail[oid]
                if w in holders:
                    if holders[w] is not None:
                        before.add(holders[w])
                else:
                    src = final_writer[oid]
                    recv_index = add_copy(oid, src, holders[src], w)
                    before.add(recv_index)
        for oid in ct_entry.write:
            holders = avail.get(oid, {})
            local = holders.get(w)
            if local is not None:
                before.add(local)
            before.update(local_readers.get((oid, w), ()))
        my_index = len(lst)
        entry = TemplateEntry(
            index=my_index, kind=CommandKind.TASK,
            read=ct_entry.read, write=ct_entry.write,
            before=tuple(sorted(before)),
            function=ct_entry.function, param_slot=ct_entry.param_slot,
            ct_index=ct_entry.index,
        )
        lst.append(entry)
        for oid in ct_entry.read:
            local_readers.setdefault((oid, w), []).append(my_index)
        for oid in ct_entry.write:
            written_in_block.add(oid)
            final_writer[oid] = w
            write_counts[oid] = write_counts.get(oid, 0) + 1
            avail[oid] = {w: my_index}
            local_readers[(oid, w)] = []

    # Postcondition closure (§4.2 opt. 1): every precondition object that
    # the block overwrote is copied back to the workers that require it, so
    # repeated instantiation of this template auto-validates.
    for w, oids in sorted(preconds.items()):
        for oid in sorted(oids):
            if oid in written_in_block and w not in avail[oid]:
                src = final_writer[oid]
                add_copy(oid, src, avail[oid][src], w)

    # Report flags: the final writer entry of each returned object reports
    # its value to the controller with its completion.
    report_entries: Dict[int, List[int]] = {}
    for oid in template.returns.values():
        if oid in final_writer:
            w = final_writer[oid]
            idx = None
            # final local version provider on the final writer
            holders = avail[oid]
            idx = holders[w]
            if idx is not None:
                per_worker[w][idx].report = True
                report_entries.setdefault(w, []).append(idx)

    final_holders = {
        oid: frozenset(avail[oid].keys()) for oid in written_in_block
    }
    delta = DirectoryDelta(write_counts, final_holders)
    preconditions = {w: frozenset(oids) for w, oids in preconds.items()}
    return WorkerTemplateSet(
        template.block_id, version, per_worker, preconditions, delta,
        template.returns, report_entries,
    )


def copy_tag(instance_id: Hashable, dst_worker: int, dst_index: int) -> Tuple:
    """Matching tag for a templated SEND/RECV pair.

    Globally unique because instance ids are; computable independently by
    sender and receiver from cached structure plus the instantiation
    message — no controller lookups at runtime (requirement 2 of §3.1).
    """
    return (instance_id, dst_worker, dst_index)


def instantiate_entries(
    entries: List[TemplateEntry],
    worker_id: int,
    instance_id: Hashable,
    cid_base: int,
    params: Dict[str, Any],
) -> List[Command]:
    """Fill a worker half's entries into concrete commands (Figure 5b).

    ``cid = cid_base + index``; before sets are rebased the same way.
    Entries removed by edits are tombstoned (``None``) and skipped, but
    their indices remain reserved so cached before sets stay valid.
    """
    commands: List[Command] = []
    for entry in entries:
        if entry is None:  # tombstoned by an edit
            continue
        cid = cid_base + entry.index
        before = [cid_base + j for j in entry.before]
        if entry.kind == CommandKind.TASK:
            cmd = Command(
                cid, CommandKind.TASK, worker_id,
                read=entry.read, write=entry.write, before=before,
                params=params.get(entry.param_slot)
                if entry.param_slot else None,
                function=entry.function,
            )
        elif entry.kind == CommandKind.SEND:
            cmd = Command(
                cid, CommandKind.SEND, worker_id,
                read=entry.read, before=before,
                dst_worker=entry.dst_worker,
                tag=copy_tag(instance_id, entry.dst_worker, entry.dst_index),
                size_bytes=entry.size_bytes,
            )
        elif entry.kind == CommandKind.RECV:
            cmd = Command(
                cid, CommandKind.RECV, worker_id,
                write=entry.write, before=before,
                src_worker=entry.src_worker,
                tag=copy_tag(instance_id, worker_id, entry.index),
                size_bytes=entry.size_bytes,
            )
        else:
            raise ValueError(f"unexpected template entry kind {entry.kind}")
        commands.append(cmd)
    return commands


class WorkerHalf:
    """The worker-resident half of a worker template (§4.1).

    The worker caches multiple halves keyed by (block_id, version) so the
    controller can move between several schedules by invoking different
    sets of templates (§2.3).
    """

    def __init__(self, block_id: str, version: int,
                 entries: List[TemplateEntry], reports: List[int]):
        self.block_id = block_id
        self.version = version
        self.entries: List[Optional[TemplateEntry]] = list(entries)
        self.reports = set(reports)
        #: lazily compiled execution plan (repro.core.compiled); dropped
        #: whenever the entry array is edited
        self._plan = None

    @property
    def key(self) -> Tuple[str, int]:
        return (self.block_id, self.version)

    def live_entries(self) -> List[TemplateEntry]:
        return [e for e in self.entries if e is not None]

    def num_commands(self) -> int:
        return sum(1 for e in self.entries if e is not None)

    def instantiate(self, worker_id: int, instance_id: Hashable,
                    cid_base: int, params: Dict[str, Any]) -> List[Command]:
        return instantiate_entries(
            self.entries, worker_id, instance_id, cid_base, params,
        )

    # ------------------------------------------------------------------
    # Compiled execution plan (repro.core.compiled)
    # ------------------------------------------------------------------
    def compiled_plan(self):
        """The compiled plan for the current entry array, built on first
        use and cached until :meth:`apply_edit_ops` invalidates it."""
        plan = self._plan
        if plan is None:
            from .compiled import compile_plan
            self._plan = plan = compile_plan(self.entries, self.reports)
        return plan

    def invalidate_plan(self) -> None:
        self._plan = None

    def apply_edit_ops(self, ops) -> None:
        """Apply edit ops to this half and invalidate the compiled plan.

        Op entries are cloned before insertion: the controller half applied
        the same op objects to *its* entry arrays, and a shared
        TemplateEntry mutated by a later edit on one half must not silently
        alias state cached on the other.
        """
        from .edits import apply_edits
        apply_edits(self.entries, [op.clone() for op in ops])
        self.reports = {
            e.index for e in self.entries if e is not None and e.report
        }
        self._plan = None
