"""Wall-clock performance harness for the control-plane reproduction.

Everything else in this repository measures *virtual* time — what the
simulated cluster would do. This package measures what the simulator
itself costs in real seconds, so control-plane optimizations can claim
wall-clock speedups with receipts (`BENCH_control_plane.json`) and CI can
catch regressions.
"""

from .harness import (  # noqa: F401
    BENCH_FILENAME,
    MODE_MODES,
    MODE_SCALES,
    SCALES,
    SCHEMA_VERSION,
    bench_instantiate,
    bench_instantiate_compiled,
    bench_path,
    instantiate_allocations,
    mode_row,
    rebalance_section,
    results_digest,
    scheduling_modes_section,
    serve_section,
    strong_scaling_section,
    load_bench,
    run_harness,
    run_microbenchmarks,
    timed_workload,
    workload_allocations,
    write_bench,
)
from .rebalance_bench import build_fig09_auto, run_fig09_auto  # noqa: F401
from .serve_bench import build_job_arrival, run_job_arrival  # noqa: F401
