"""Automated Fig. 9/10: a chaos-injected straggler the system routes
around on its own.

The scripted Fig. 9 benchmark (``benchmarks/test_fig09_dynamic.py``)
drives eviction/restore from a hand-written test timeline. This workload
closes the loop instead: a scripted ``slow_worker`` chaos event degrades
one worker 2× mid-run, the adaptive rebalancer (``repro.sched``) detects
the skew from piggybacked per-task timings, and template *edits* move the
straggler's gradient tasks to the least loaded survivors — the first
workload where iteration time recovers without a test script calling
``migrate_tasks``. Results are recorded in ``BENCH_control_plane.json``
under the schema-v4 ``rebalance`` key.

The run is deterministic: a fault-free probe run fixes the virtual time
at which iteration ``fault_iteration`` completes, and the measured run
injects the slowdown exactly there. Because rebalancer observation is
pure, the measured run's pre-fault prefix is bit-identical to the probe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps.lr import LRApp, LRSpec
from ..chaos import FaultPlan
from ..nimbus.cluster import NimbusCluster

BLOCK_ID = "lr.iteration"

#: tdata partition size: small enough that the one-time relocation copies
#: (~26 ms each at 1.25 GB/s) cost well under one iteration, large enough
#: that the 10.5 ms gradient dominates the 0.3–2 ms reduction tasks
BYTES_PER_PARTITION = 32e6


def build_fig09_auto(
    num_workers: int,
    iterations: int,
    seed: int = 0,
    partitions_per_worker: int = 4,
    straggler: Optional[int] = None,
    scale: float = 2.0,
    fault_at: Optional[float] = None,
    rebalance: bool = True,
    rebalance_threshold: float = 1.4,
    trace: Optional[bool] = False,
) -> Tuple[LRApp, NimbusCluster]:
    """Wire the automated-fig09 LR cluster (no fault when ``fault_at`` is
    None). Shared by the perf harness, the CLI ``rebalance`` subcommand,
    and the benchmark/regression tests."""
    spec = LRSpec(
        num_workers=num_workers,
        data_bytes=BYTES_PER_PARTITION * num_workers * partitions_per_worker,
        partitions_per_worker=partitions_per_worker,
        iterations=iterations,
    )
    app = LRApp(spec)
    plan = None
    if fault_at is not None:
        if straggler is None:
            straggler = num_workers - 1
        plan = FaultPlan(seed).slow_worker(fault_at, straggler, scale)
    cluster = NimbusCluster(
        num_workers, app.program(blocking=False), registry=app.registry,
        seed=seed, chaos_plan=plan, rebalance=rebalance,
        rebalance_threshold=rebalance_threshold, trace=trace,
    )
    return app, cluster


def _iteration_ends(metrics, block_id: str = BLOCK_ID) -> List[float]:
    ivs = [iv for iv in metrics.intervals.get("driver_block", ())
           if iv.labels.get("block_id") == block_id
           and not iv.labels.get("aborted")]
    return sorted(iv.end for iv in ivs)


def run_fig09_auto(
    num_workers: int = 16,
    iterations: int = 40,
    seed: int = 0,
    partitions_per_worker: int = 4,
    scale: float = 2.0,
    fault_iteration: int = 12,
    skip: int = 4,
    window: int = 4,
    rebalance: bool = True,
    recovery_slack: float = 1.15,
) -> Dict:
    """Run the automated-fig09 workload and report recovery statistics.

    ``iterations_to_recover`` counts iterations from the fault until every
    later iteration's completion spacing stays within ``recovery_slack`` ×
    the pre-fault mean (None if the run never settles — e.g. with
    ``rebalance=False``, the control experiment). ``recovered_iteration_
    time`` is the mean spacing of the final ``window`` iterations.
    """
    # fault-free probe: fixes where iteration `fault_iteration` completes
    _, probe = build_fig09_auto(
        num_workers, iterations, seed=seed,
        partitions_per_worker=partitions_per_worker, rebalance=False)
    probe.run_until_finished()
    probe_ends = _iteration_ends(probe.metrics)
    if len(probe_ends) < iterations or fault_iteration >= iterations - window:
        raise ValueError("fault_iteration leaves no room to measure recovery")
    fault_at = probe_ends[fault_iteration - 1]
    straggler = num_workers - 1

    _, cluster = build_fig09_auto(
        num_workers, iterations, seed=seed,
        partitions_per_worker=partitions_per_worker, straggler=straggler,
        scale=scale, fault_at=fault_at, rebalance=rebalance)
    cluster.run_until_finished()
    metrics = cluster.metrics
    ends = _iteration_ends(metrics)
    spacing = [b - a for a, b in zip(ends, ends[1:])]  # spacing[k]: iter k+2

    pre = (ends[fault_iteration - 1] - ends[skip - 1]) / (fault_iteration - skip)
    post = spacing[fault_iteration - 1:]
    peak = max(post)
    recovered = sum(spacing[-window:]) / window
    threshold = recovery_slack * pre
    last_bad = None
    for k in range(fault_iteration - 1, len(spacing)):
        if spacing[k] > threshold:
            last_bad = k
    if last_bad is None:
        iterations_to_recover = 0
    elif last_bad >= len(spacing) - window:
        iterations_to_recover = None  # still unstable at the end of the run
    else:
        # spacing[k] measures iteration k+2; the first clean one is k+3
        iterations_to_recover = (last_bad + 3) - fault_iteration

    counters = metrics.counters_snapshot()
    rebalancer = cluster.rebalancer
    decisions = list(rebalancer.decisions) if rebalancer is not None else []
    moves = sum(len(applied) for (_t, _b, applied, _m) in decisions)
    mechanisms = sorted({mech for (_t, _b, _a, mech) in decisions})
    converged = (iterations_to_recover is not None
                 and iterations_to_recover <= 10
                 and recovered <= threshold)
    return {
        "workers": num_workers,
        "iterations": iterations,
        "partitions_per_worker": partitions_per_worker,
        "seed": seed,
        "straggler": straggler,
        "scale": scale,
        "fault_iteration": fault_iteration,
        "fault_at": fault_at,
        "skip": skip,
        "window": window,
        "rebalance": rebalance,
        "recovery_slack": recovery_slack,
        "pre_fault_iteration_time": pre,
        "post_fault_peak": peak,
        "recovered_iteration_time": recovered,
        "recovery_ratio": recovered / pre if pre > 0 else float("inf"),
        "iterations_to_recover": iterations_to_recover,
        "decisions": len(decisions),
        "moves": moves,
        "mechanisms": mechanisms,
        "edits_applied": counters.get("edits_applied", 0.0),
        "rebalance_moves": counters.get("rebalance_moves", 0.0),
        "worker_template_regenerations": counters.get(
            "worker_template_regenerations", 0.0),
        "converged": converged,
    }
