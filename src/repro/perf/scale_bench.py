"""Scale-step benchmark: time-to-stable after a scripted demand step.

The elastic autoscaler (DESIGN.md §15) is a reconciliation loop: desired
worker count from the load EWMA vs the actual live set, every interval.
This workload measures the loop end to end: a fault-free probe run fixes
the virtual time at which iteration ``step_iteration`` completes, the
measured run injects a scripted ``demand_step`` (every worker's task
durations scale by ``step``) exactly there with the autoscaler on, and
the report records how long reconciliation took to go quiet — provision,
cold start, spread through the template machinery (edits or reinstall,
never a job restart), and for downward steps the DRAINING drain.

A fixed-size control run with the same step pins correctness: the
autoscaled run must execute exactly the same task count and produce
bit-identical computed values (no lost or duplicated completions).
Results land in ``BENCH_control_plane.json`` under the schema-v8
``scale_step`` key.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps.lr import LRApp, LRSpec
from ..chaos import FaultPlan
from ..nimbus.cluster import NimbusCluster
from .rebalance_bench import BLOCK_ID, BYTES_PER_PARTITION, _iteration_ends


def build_scale_step(
    num_workers: int,
    iterations: int,
    seed: int = 0,
    partitions_per_worker: int = 4,
    step: float = 2.0,
    step_at: Optional[float] = None,
    autoscale: bool = False,
    interval: float = 0.25,
    cold_start: float = 1.0,
    trace: Optional[bool] = False,
    mode: str = "centralized",
    shards: Optional[int] = None,
):
    """Wire the scale-step LR cluster (no step when ``step_at`` is None).
    Shared by the perf harness, the CLI ``autoscale`` subcommand, and the
    benchmark tests."""
    spec = LRSpec(
        num_workers=num_workers,
        data_bytes=BYTES_PER_PARTITION * num_workers * partitions_per_worker,
        partitions_per_worker=partitions_per_worker,
        iterations=iterations,
    )
    app = LRApp(spec)
    plan = None
    if step_at is not None:
        plan = FaultPlan(seed).demand_step(step_at, step)
    cluster = NimbusCluster(
        num_workers, app.program(blocking=False), registry=app.registry,
        seed=seed, chaos_plan=plan, autoscale=autoscale,
        autoscale_interval=interval, autoscale_cold_start=cold_start,
        trace=trace, mode=mode, shards=shards,
    )
    return app, cluster


def _values_digest(cluster) -> str:
    """sha256 over the job-0 results history — placement-independent."""
    import hashlib

    ctx = cluster.controller.jobs[0]
    h = hashlib.sha256()
    for block_id, results in ctx.results_history:
        h.update(repr((block_id, sorted(results.items()))).encode())
    return h.hexdigest()


def run_scale_step(
    num_workers: int = 16,
    iterations: int = 40,
    seed: int = 0,
    partitions_per_worker: int = 4,
    step: float = 2.0,
    step_iteration: int = 12,
    skip: int = 4,
    window: int = 4,
    interval: Optional[float] = None,
    cold_start: Optional[float] = None,
    stable_ticks_bound: int = 120,
    control: bool = True,
    mode: str = "centralized",
    shards: Optional[int] = None,
) -> Dict:
    """Run the scale-step workload and report reconciliation statistics.

    ``interval`` defaults to the probe run's pre-step mean iteration
    time — reconciliation paced to the workload's own cadence, exactly
    as an operator would tune it — and ``cold_start`` to four intervals.
    Both come from the deterministic probe, so the measured run stays
    reproducible per seed.

    ``time_to_stable`` is the virtual time from the demand step to the
    autoscaler's *last* decision — after it, the loop observed only
    in-band utilization for the rest of the run. ``converged`` requires
    the loop to go quiet within ``stable_ticks_bound`` reconciliation
    intervals of the step and the driver program to finish. With
    ``control=True`` a fixed-size run with the identical step pins
    zero-loss: equal executed-task counts and an identical results
    digest.
    """
    # fault-free probe: fixes where iteration `step_iteration` completes
    _, probe = build_scale_step(
        num_workers, iterations, seed=seed,
        partitions_per_worker=partitions_per_worker)
    probe.run_until_finished()
    probe_ends = _iteration_ends(probe.metrics)
    if len(probe_ends) < iterations or step_iteration >= iterations - window:
        raise ValueError("step_iteration leaves no room to measure recovery")
    step_at = probe_ends[step_iteration - 1]
    pre = ((probe_ends[step_iteration - 1] - probe_ends[skip - 1])
           / (step_iteration - skip))
    if interval is None:
        interval = pre
    if cold_start is None:
        cold_start = 4 * interval

    _, cluster = build_scale_step(
        num_workers, iterations, seed=seed,
        partitions_per_worker=partitions_per_worker, step=step,
        step_at=step_at, autoscale=True, interval=interval,
        cold_start=cold_start, mode=mode, shards=shards)
    cluster.run_until_finished()
    ends = _iteration_ends(cluster.metrics)
    spacing = [b - a for a, b in zip(ends, ends[1:])]
    final = sum(spacing[-window:]) / window if len(spacing) >= window else None

    decisions = list(cluster.autoscaler.decisions)
    actions = [d["action"] for d in decisions]
    mechanisms = sorted({m for d in decisions if d["action"] == "spread"
                         for m in d["mechanisms"]})
    time_to_stable = (max(d["t"] for d in decisions) - step_at
                      if decisions else None)
    ticks_to_stable = (int(round(time_to_stable / interval))
                       if time_to_stable is not None else None)
    counters = cluster.metrics.counters_snapshot()
    converged = (cluster.job.finished
                 and (time_to_stable is None
                      or ticks_to_stable <= stable_ticks_bound))

    report = {
        "workers": num_workers,
        "iterations": iterations,
        "partitions_per_worker": partitions_per_worker,
        "seed": seed,
        "mode": mode,
        "step": step,
        "step_iteration": step_iteration,
        "step_at": step_at,
        "interval": interval,
        "cold_start": cold_start,
        "pre_step_iteration_time": pre,
        "final_iteration_time": final,
        "time_to_stable": time_to_stable,
        "ticks_to_stable": ticks_to_stable,
        "stable_ticks_bound": stable_ticks_bound,
        "workers_final": len(cluster.controller.live_workers),
        "workers_added": int(counters.get("scale.workers_added", 0.0)),
        "workers_drained": int(counters.get("scale.workers_drained", 0.0)),
        "spread_moves": int(counters.get("scale.spread_moves", 0.0)),
        "decisions": len(decisions),
        "actions": actions,
        "mechanisms": mechanisms,
        "tasks_executed": int(counters.get("tasks_executed", 0.0)),
        "converged": converged,
    }
    if control:
        _, fixed = build_scale_step(
            num_workers, iterations, seed=seed,
            partitions_per_worker=partitions_per_worker, step=step,
            step_at=step_at, mode=mode, shards=shards)
        fixed.run_until_finished()
        report["control_tasks_executed"] = int(
            fixed.metrics.count("tasks_executed"))
        report["zero_loss"] = (
            report["tasks_executed"] == report["control_tasks_executed"]
            and _values_digest(cluster) == _values_digest(fixed))
        report["converged"] = converged and report["zero_loss"]
    return report
