"""Timed fig07/fig08 runs and controller microbenchmarks.

The harness does two things:

* **workload timing** — runs the Figure 7/8 Nimbus configurations and
  records wall-clock seconds, simulator events/second, and the virtual
  results (steady-state iteration time plus the control-plane decision
  counters). The virtual results double as a fidelity check: a wall-clock
  optimization must not change what the simulation computes.
* **microbenchmarks** — isolates the control-plane hot paths the paper
  cares about (template validation, patch computation, worker-template
  instantiation) plus the raw event loop, reporting ops/second for each.

`run_harness` returns one report dict; `write_bench` merges it into the
repo-root ``BENCH_control_plane.json`` (schema documented in
EXPERIMENTS.md) so the numbers travel with the code.
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Tuple

from ..analysis import mean_iteration_time, task_throughput
from ..apps import (
    KMeansApp,
    KMeansSpec,
    LRApp,
    LRSpec,
    RotationApp,
    RotationSpec,
)
from ..core.compiled import compile_plan
from ..core.controller_template import ControllerTemplate
from ..core.patching import build_patch
from ..core.validation import full_validate
from ..core.worker_template import generate_worker_templates, instantiate_entries
from ..nimbus import NimbusCluster
from ..nimbus.data import LogicalObject, ObjectDirectory
from ..obs import snapshot_metrics
from ..sim.engine import Simulator

#: v2 adds the ``patch_rotation`` workload (patch-cache coverage), the
#: per-workload ``allocations`` section, and the compiled-vs-interpreted
#: instantiation microbenchmark.
#: v3 adds the per-workload ``metrics_snapshot`` (the obs registry's
#: versioned dump of every Metrics counter/series/interval, taken at the
#: scale's largest worker count) and pins tracing off in every timed run
#: so the wall-clock gate proves the trace-off overhead budget even when
#: REPRO_TRACE is set in the environment.
#: v4 adds the ``rebalance`` section: the automated-fig09 straggler
#: recovery run (adaptive rebalancer on vs the off control), recording
#: pre/post-fault iteration times, iterations-to-recover, and the
#: mechanism used (template edits, never reinstalls, in the shipped
#: configuration).
#: v5 adds the ``serve`` section: the multi-tenant ``job_arrival``
#: workload (seeded Poisson arrivals of fig07/fig08/rotation jobs through
#: the admission queue and weighted fair-share dispatcher), recording
#: aggregate task throughput and p95 job latency — both virtual-time
#: quantities, so CI gates them exactly.
#: v6 adds the ``strong_scaling`` section — fig07 at 1000 workers, 10x the
#: paper's largest configuration, with the same fidelity fields as the
#: fig07/fig08 sweeps so CI gates its virtual results exactly — and
#: isolates ``bench_engine_events`` on a fresh simulator per chunk so
#: prior events can never inflate the reported rate. Workload rows are
#: measured with event-loop cohort batching and completion fusion on
#: (the default; REPRO_FUSED_CHAINS=0 restores the one-event-per-hop
#: loop with bit-identical virtual results).
#: v7 adds the ``scheduling_modes`` section (DESIGN.md §14): fig07/fig08
#: at the scale's mode worker counts, centralized vs decentralized, 30
#: iterations, recording wall clock (min over interleaved repetitions —
#: host noise on a shared machine exceeds the effect otherwise),
#: events/second, total and steady-state controller messages per task,
#: and a results digest (sha256 over the per-block results history) that
#: must be bit-identical across modes. The crossover acceptance — fewer
#: controller messages per task and strictly better wall clock for the
#: decentralized mode at 1000 workers — gates on these rows.
#: v8 adds the ``scale_step`` section (DESIGN.md §15): the elastic
#: autoscaler driven by a scripted 2x demand step at 10/100/1000 workers
#: (8 at small scale), recording time-to-stable (virtual seconds from
#: the step to the reconciliation loop's last decision), the
#: ticks-to-stable bound it must beat, workers added/drained, the spread
#: mechanisms used (template edits/reinstalls — never a job restart),
#: and a zero-loss check against a fixed-size control run with the same
#: step (equal executed-task counts, identical results digest).
#: v9 adds the third scheduling mode (DESIGN.md §16) to the
#: ``scheduling_modes`` rows: ``sharded`` — N controller shards own the
#: steady-state window fan-out/fan-in by worker range while the thin
#: coordinator keeps admission, capture, edits and epoch ownership.
#: Sharded rows record the shard count, and the acceptance gates extend
#: the v7 crossover: at the largest scale the sharded mode must move
#: strictly fewer coordinator messages per task than centralized and its
#: wall clock must be no worse than decentralized within 10%, with the
#: same bit-identical results digest across all three modes.
SCHEMA_VERSION = 9
BENCH_FILENAME = "BENCH_control_plane.json"

#: worker counts per scale (mirrors benchmarks/: paper-scale figures vs a
#: CI-friendly smoke pass)
SCALES = {"paper": [20, 50, 100], "small": [10, 20]}
ITERATIONS = 14

#: strong-scaling stress counts per scale: fig07 at 10x the paper's max.
#: Empty at small scale — the 1000-worker run builds an 80k-partition
#: program and takes tens of wall seconds, too heavy for the CI smoke.
STRONG_SCALING = {"paper": [1000], "small": []}

#: scheduling-mode comparison (schema v7): worker counts per scale, the
#: workloads compared, the longer iteration count (the mode difference is
#: a steady-state property — at 14 iterations ramp-up still dominates),
#: and how many interleaved repetitions the wall-clock min is taken over.
MODE_SCALES = {"paper": [100, 1000], "small": [20]}
MODE_WORKLOADS = ("fig07_lr", "fig08_kmeans")
MODE_MODES = ("centralized", "decentralized", "sharded")
MODE_ITERATIONS = 30
MODE_REPS = 3

#: counters that define the control plane's decisions; the harness asserts
#: these are untouched by wall-clock optimizations
DECISION_COUNTERS = (
    "auto_validations", "full_validations", "template_instantiations",
    "tasks_executed", "tasks_scheduled", "patches_computed",
    "patch_cache_hits",
)

#: pre-optimization wall-clock seconds, measured on this repository at the
#: seed commit (before the control-plane fast path landed), same machine
#: methodology as `timed_workload`. Kept so the speedup trajectory in
#: BENCH_control_plane.json survives the optimization that motivated it.
BASELINE_WALL = {
    "paper": {
        "fig07_lr": {20: 0.672, 50: 2.1093, 100: 5.321},
        "fig08_kmeans": {20: 0.7399, 50: 2.262, 100: 5.9418},
    },
    "small": {
        "fig07_lr": {10: 0.4217, 20: 0.8357},
        "fig08_kmeans": {10: 0.4029, 20: 0.8631},
    },
}

#: workload -> (app class, spec class, blocking driver?). The rotation
#: loop must block (round k+1 overwrites what round k reads; there is no
#: dataflow edge ordering them) — it exists to give the patch cache real
#: steady-state coverage, which fig07/fig08 never produce.
WORKLOADS = {
    "fig07_lr": (LRApp, LRSpec, False),
    "fig08_kmeans": (KMeansApp, KMeansSpec, False),
    "patch_rotation": (RotationApp, RotationSpec, True),
}


def _build_cluster(workload: str, num_workers: int, iterations: int,
                   mode: str = "centralized") -> Tuple[NimbusCluster, Any]:
    app_cls, spec_cls, blocking = WORKLOADS[workload]
    app = app_cls(spec_cls(num_workers=num_workers, iterations=iterations))
    # trace=False (not None): the harness measures the trace-off overhead
    # budget, so a REPRO_TRACE=1 environment must not turn tracing on here
    cluster = NimbusCluster(num_workers, app.program(blocking=blocking),
                            registry=app.registry, trace=False, mode=mode)
    return cluster, app


def timed_workload(workload: str, num_workers: int,
                   iterations: int = ITERATIONS,
                   capture_metrics: bool = False,
                   mode: str = "centralized") -> Dict[str, Any]:
    """Run one harness Nimbus configuration and time it.

    With ``capture_metrics`` the row also carries a ``metrics_snapshot``:
    the obs registry's versioned dump of every counter/series/interval
    (taken after the run, so it costs no timed wall clock).
    """
    cluster, app = _build_cluster(workload, num_workers, iterations,
                                  mode=mode)
    start = time.perf_counter()
    cluster.run_until_finished(max_seconds=1e6)
    wall = time.perf_counter() - start
    block_id = app.iteration_block.block_id
    skip = iterations // 2
    row = {
        "workers": num_workers,
        "wall_seconds": round(wall, 4),
        "events": cluster.sim.events_run,
        "events_per_second": round(cluster.sim.events_run / wall),
        "virtual_seconds": cluster.sim.now,
        "mean_iteration_time": mean_iteration_time(
            cluster.metrics, block_id, skip=skip),
        "task_throughput": task_throughput(
            cluster.metrics, block_id, skip=skip),
        "counters": {name: cluster.metrics.count(name)
                     for name in DECISION_COUNTERS},
    }
    if capture_metrics:
        row["metrics_snapshot"] = snapshot_metrics(cluster.metrics)
    return row


def _canon(value):
    """JSON-serializable bit-exact form of a task result."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a test-env dep
        np = None
    if np is not None and isinstance(value, np.ndarray):
        return {"__ndarray__": [value.dtype.str, list(value.shape),
                                value.tobytes().hex()]}
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in
                sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    return value


def results_digest(cluster, job_id: int = 0) -> str:
    """sha256 (truncated) over the job's ordered per-block results history.

    The scheduling-mode fidelity gate: both modes must produce the same
    digest, which pins every returned value of every block, bit for bit,
    in completion order.
    """
    import hashlib

    history = cluster.controller.jobs[job_id].results_history
    payload = json.dumps([_canon([block_id, results])
                          for block_id, results in history], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def mode_row(workload: str, num_workers: int, mode: str,
             iterations: int = MODE_ITERATIONS) -> Dict[str, Any]:
    """One scheduling-mode comparison run (schema v7 row)."""
    gc.collect()  # each timed run starts from the same collector state
    cluster, app = _build_cluster(workload, num_workers, iterations,
                                  mode=mode)
    start = time.perf_counter()
    cluster.run_until_finished(max_seconds=1e6)
    wall = time.perf_counter() - start
    m = cluster.metrics
    tasks = m.count("tasks_executed")
    msgs = (m.count("controller.messages_in"),
            m.count("controller.messages_out"))
    steady = (m.count("controller.steady_messages_in"),
              m.count("controller.steady_messages_out"))
    block_id = app.iteration_block.block_id
    return {
        "workers": num_workers,
        "mode": mode,
        "shards": cluster.num_shards if mode == "sharded" else None,
        "iterations": iterations,
        "wall_seconds": round(wall, 4),
        "events": cluster.sim.events_run,
        "events_per_second": round(cluster.sim.events_run / wall),
        "virtual_seconds": cluster.sim.now,
        "mean_iteration_time": mean_iteration_time(
            m, block_id, skip=iterations // 2),
        "tasks": tasks,
        "controller_messages_in": msgs[0],
        "controller_messages_out": msgs[1],
        "controller_messages_per_task": round(sum(msgs) / tasks, 6),
        "steady_controller_messages_in": steady[0],
        "steady_controller_messages_out": steady[1],
        "steady_controller_messages_per_task": round(
            sum(steady) / tasks, 6),
        "results_digest": results_digest(cluster),
    }


def scheduling_modes_section(scale: str) -> Dict[str, Any]:
    """All three scheduling modes, interleaved min-of-N (schema v9).

    Repetitions alternate modes back to back so allocator/collector drift
    over the section biases no mode; the wall clock and events/sec
    of each row are the fastest repetition's, while the virtual fields
    (iteration time, message counts, digest) are deterministic and
    identical across repetitions by construction.
    """
    section: Dict[str, Any] = {}
    for workload in MODE_WORKLOADS:
        best: Dict[Tuple[int, str], Dict[str, Any]] = {}
        for n in MODE_SCALES[scale]:
            for _rep in range(MODE_REPS):
                for mode in MODE_MODES:
                    row = mode_row(workload, n, mode)
                    key = (n, mode)
                    if (key not in best
                            or row["wall_seconds"]
                            < best[key]["wall_seconds"]):
                        best[key] = row
        section[workload] = [best[key] for key in sorted(best)]
    return section


def workload_allocations(workload: str, num_workers: int,
                         iterations: int = ITERATIONS) -> Dict[str, int]:
    """Traced allocation footprint of one run (tracemalloc; untimed).

    ``peak_bytes`` is the high-water mark of bytes allocated during the
    run, ``retained_bytes`` what is still live at the end — both relative
    to the pre-run baseline. Tracing multiplies the wall clock several
    times over, so this runs separately from :func:`timed_workload` and
    only at the scale's smallest worker count.
    """
    cluster, _app = _build_cluster(workload, num_workers, iterations)
    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    cluster.run_until_finished(max_seconds=1e6)
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "workers": num_workers,
        "peak_bytes": max(0, peak - base),
        "retained_bytes": max(0, current - base),
    }


# ---------------------------------------------------------------------------
# Microbenchmarks: the control-plane hot paths, isolated
# ---------------------------------------------------------------------------
def _lr_template_fixture(num_workers: int = 50):
    """A worker-template set + populated directory from the LR iteration
    block, built exactly the way the controller builds them."""
    app = LRApp(LRSpec(num_workers=num_workers, iterations=2))
    block = app.iteration_block
    home = {oid: h for oid, _n, _p, _s, h in app.variables.definitions}
    sizes = {oid: s for oid, _n, _p, s, _h in app.variables.definitions}
    assignment = []
    for _stage, task in block.all_tasks():
        anchor = task.write[0] if task.write else task.read[0]
        assignment.append(home[anchor] if home[anchor] is not None else 0)
    template = ControllerTemplate.from_block(block, assignment)
    template_set = generate_worker_templates(template, sizes)
    directory = ObjectDirectory()
    for oid, name, part, size, h in app.variables.definitions:
        directory.register(LogicalObject(oid, name, part, size),
                           h if h is not None else 0)
    return template_set, directory, sizes


def _bench_loop(fn, min_seconds: float = 0.2, min_rounds: int = 5) -> float:
    """Run ``fn`` repeatedly for at least ``min_seconds``; return ops/sec."""
    rounds = 0
    start = time.perf_counter()
    while True:
        fn()
        rounds += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds and rounds >= min_rounds:
            return rounds / elapsed


def bench_validate(num_workers: int = 50) -> float:
    """full_validate ops/sec with a small dirty set per call (the steady
    pattern: each block dirties a handful of objects, then revalidates)."""
    template_set, directory, _sizes = _lr_template_fixture(num_workers)
    oids = sorted(template_set.precondition_workers)
    state = {"i": 0}

    def one():
        oid = oids[state["i"] % len(oids)]
        worker = template_set.precondition_workers[oid][0]
        directory.record_write(oid, worker)
        state["i"] += 1
        full_validate(template_set, directory)

    return _bench_loop(one)


def bench_patch(num_workers: int = 50) -> float:
    """build_patch ops/sec over a recurring violation set."""
    template_set, directory, sizes = _lr_template_fixture(num_workers)
    # dirty a spread of objects so validation reports real violations
    for oid in sorted(template_set.precondition_workers)[::7]:
        worker = template_set.precondition_workers[oid][0]
        directory.record_write(oid, worker)
    violations = full_validate(template_set, directory)
    state = {"i": 0}

    def one():
        state["i"] += 1
        build_patch(violations, directory, sizes, patch_id=state["i"])

    return _bench_loop(one)


def _instantiate_fixture(num_workers: int = 50):
    """The busiest LR worker half: (worker_id, entries, report indices)."""
    template_set, _directory, _sizes = _lr_template_fixture(num_workers)
    worker_id, entries = max(template_set.entries.items(),
                             key=lambda kv: len(kv[1]))
    reports = tuple(e.index for e in entries if e is not None and e.report)
    return worker_id, entries, reports


def _refill_arena(plan, worker_id: int, instance_id: int, cid_base: int,
                  params: Dict[str, Any]) -> None:
    """One compiled-path instantiation: acquire a pooled arena and rewrite
    the per-instance fields (the same writes ``Worker._run_compiled_plan``
    performs, minus the scheduling sweep that needs live worker state)."""
    arena = plan.acquire(worker_id)
    cmds = arena.cmds
    for i, slot in plan.param_slots:
        cmds[i].params = params.get(slot)
    for i, dst_worker, dst_index in plan.sends:
        cmds[i].tag = (instance_id, dst_worker, dst_index)
    for i, entry_index in plan.recvs:
        cmds[i].tag = (instance_id, worker_id, entry_index)
    index = plan.index
    for pos, cmd in enumerate(cmds):
        cmd.cid = cid_base + index[pos]
    arena.release()


def bench_instantiate(num_workers: int = 50) -> float:
    """Interpreted instantiate_entries ops/sec for the busiest worker half."""
    worker_id, entries, _reports = _instantiate_fixture(num_workers)
    state = {"i": 0}

    def one():
        state["i"] += 1
        instantiate_entries(entries, worker_id, state["i"],
                            state["i"] * 10000, {})

    return _bench_loop(one)


def bench_instantiate_compiled(num_workers: int = 50) -> float:
    """Compiled-path instantiation ops/sec (pooled arena refill)."""
    worker_id, entries, reports = _instantiate_fixture(num_workers)
    plan = compile_plan(entries, reports)
    state = {"i": 0}

    def one():
        state["i"] += 1
        _refill_arena(plan, worker_id, state["i"], state["i"] * 10000, {})

    return _bench_loop(one)


def instantiate_allocations(num_workers: int = 50) -> Dict[str, int]:
    """Bytes allocated by one instantiation, interpreted vs compiled.

    Measured with tracemalloc after a warm-up round on each path, so the
    compiled number reflects steady-state arena reuse (the first
    instantiation builds the arena; every later one rewrites it in place).
    """
    worker_id, entries, reports = _instantiate_fixture(num_workers)
    plan = compile_plan(entries, reports)
    out = {}
    for name, one in (
        ("interpreted", lambda i: instantiate_entries(
            entries, worker_id, i, i * 10000, {})),
        ("compiled", lambda i: _refill_arena(
            plan, worker_id, i, i * 10000, {})),
    ):
        one(1)  # warm: arena build / code paths / int caches
        tracemalloc.start()
        base, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        one(2)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out[f"{name}_bytes_per_instantiation"] = max(0, peak - base)
    return out


def _noop() -> None:
    pass


def _engine_bench_chunk(batch: int) -> int:
    """One engine-throughput chunk on a **fresh** simulator.

    Returns the number of events that chunk actually executed — exactly
    ``2 * batch`` (one heap-scheduled and one zero-delay batch). Building
    the simulator inside the chunk is the isolation fix: a shared
    simulator would fold events from earlier chunks (or any warm-up the
    caller ran) into ``events_run`` and inflate the reported rate.
    """
    sim = Simulator()
    # heap-scheduled batch (distinct future time) ...
    sim.schedule_fast_many(1e-6, ((_noop, ()) for _ in range(batch)))
    # ... and a zero-delay batch enqueued at the current virtual time
    sim.schedule_fast_many(0.0, ((_noop, ()) for _ in range(batch)))
    before = sim.events_run
    sim.run()
    return sim.events_run - before


def bench_engine_events(batch: int = 2000, trials: int = 5) -> float:
    """Raw simulator throughput (events/sec), half heap / half zero-delay.

    Best-of-``trials``, with a garbage collection before each: the rate
    feeds a CI regression floor, so transient scheduler noise and the
    leftover heap of whatever workloads ran earlier in the harness (which
    taxes this allocation-heavy loop through collector sweeps) must not
    read as a code regression.
    """
    best = 0.0
    for _ in range(trials):
        gc.collect()
        events = 0
        start = time.perf_counter()
        while time.perf_counter() - start < 0.2:
            events += _engine_bench_chunk(batch)
        best = max(best, events / (time.perf_counter() - start))
    return best


def run_microbenchmarks(num_workers: int = 50) -> Dict[str, float]:
    return {
        "validate_ops_per_sec": round(bench_validate(num_workers), 1),
        "patch_ops_per_sec": round(bench_patch(num_workers), 1),
        "instantiate_ops_per_sec": round(bench_instantiate(num_workers), 1),
        "instantiate_compiled_ops_per_sec": round(
            bench_instantiate_compiled(num_workers), 1),
        "engine_events_per_sec": round(bench_engine_events(), 1),
    }


#: automated-fig09 configuration per scale (workers, iterations)
REBALANCE_SCALES = {"paper": (16, 40), "small": (8, 30)}

#: job_arrival configuration per scale (workers, jobs)
SERVE_SCALES = {"paper": (16, 9), "small": (8, 6)}

#: scale-step configuration per scale: (workers, partitions_per_worker,
#: iterations, step_iteration) rows. Paper scale spans the strong-scaling
#: range 10/100/1000; iteration counts shrink (and partitions thin) as
#: worker counts grow to keep the host time of the tripled run set
#: (probe + autoscaled + control) bounded.
SCALE_STEP_SCALES = {
    "paper": [(10, 4, 40, 12), (100, 4, 24, 8), (1000, 2, 16, 6)],
    "small": [(8, 4, 30, 10)],
}


def rebalance_section(scale: str) -> Dict[str, Any]:
    """Automated-fig09 straggler recovery: rebalancer on vs off control."""
    from .rebalance_bench import run_fig09_auto

    workers, iterations = REBALANCE_SCALES[scale]
    t0 = time.perf_counter()
    auto = run_fig09_auto(num_workers=workers, iterations=iterations)
    control = run_fig09_auto(num_workers=workers, iterations=iterations,
                             rebalance=False)
    return {
        "wall_seconds": round(time.perf_counter() - t0, 3),
        "auto": auto,
        "control": control,
    }


def scale_step_section(scale: str) -> Dict[str, Any]:
    """Elastic autoscaling: 2x demand step at each scale-step row."""
    from .scale_bench import run_scale_step

    t0 = time.perf_counter()
    rows = [run_scale_step(num_workers=workers,
                           partitions_per_worker=ppw,
                           iterations=iterations,
                           step_iteration=step_iteration)
            for workers, ppw, iterations, step_iteration
            in SCALE_STEP_SCALES[scale]]
    return {
        "wall_seconds": round(time.perf_counter() - t0, 3),
        "rows": rows,
    }


def strong_scaling_section(scale: str) -> Dict[str, Any]:
    """fig07 at 10x the paper's max worker count (the §6.2 stress row).

    Same row schema as the fig07/fig08 sweeps, so the virtual fields
    (mean iteration time, decision counters) gate exactly in CI. Small
    scale records an empty sweep — see :data:`STRONG_SCALING`.
    """
    rows = [timed_workload("fig07_lr", n) for n in STRONG_SCALING[scale]]
    return {"fig07_lr": rows}


def serve_section(scale: str) -> Dict[str, Any]:
    """Multi-tenant serving: the seeded job_arrival workload (ROADMAP 1)."""
    from .serve_bench import run_job_arrival

    workers, jobs = SERVE_SCALES[scale]
    t0 = time.perf_counter()
    result = run_job_arrival(num_workers=workers, num_jobs=jobs)
    return {
        "wall_seconds": round(time.perf_counter() - t0, 3),
        "job_arrival": result,
    }


# ---------------------------------------------------------------------------
# The full harness + BENCH json plumbing
# ---------------------------------------------------------------------------
def run_harness(scale: str = "paper",
                microbench: bool = True) -> Dict[str, Any]:
    """Time every workload at ``scale`` and report against the baseline."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}")
    worker_counts = SCALES[scale]
    workloads: Dict[str, List[Dict[str, Any]]] = {}
    speedup: Dict[str, float] = {}
    allocations: Dict[str, Dict[str, int]] = {}
    metrics_snapshots: Dict[str, Dict[str, Any]] = {}
    for workload in WORKLOADS:
        # full metrics snapshot only at the scale's largest count — one
        # representative dump per workload keeps the BENCH file readable
        rows = [timed_workload(workload, n,
                               capture_metrics=(n == worker_counts[-1]))
                for n in worker_counts]
        for row in rows:
            snap = row.pop("metrics_snapshot", None)
            if snap is not None:
                metrics_snapshots[workload] = {
                    "workers": row["workers"], **snap}
        workloads[workload] = rows
        # tracemalloc pass at the scale's smallest count (tracing is slow)
        allocations[workload] = workload_allocations(workload,
                                                     worker_counts[0])
        base = BASELINE_WALL[scale].get(workload)
        if base is None:
            continue  # added after the seed baseline was recorded
        base_total = sum(base[n] for n in worker_counts)
        now_total = sum(row["wall_seconds"] for row in rows)
        speedup[workload] = round(base_total / now_total, 3)
    report = {
        "scale": scale,
        "iterations": ITERATIONS,
        "workloads": workloads,
        "allocations": allocations,
        "metrics_snapshots": metrics_snapshots,
        "baseline_wall_seconds": BASELINE_WALL[scale],
        "speedup_vs_baseline": speedup,
        "strong_scaling": strong_scaling_section(scale),
        "scheduling_modes": scheduling_modes_section(scale),
        "rebalance": rebalance_section(scale),
        "serve": serve_section(scale),
        "scale_step": scale_step_section(scale),
    }
    if microbench:
        report["microbenchmarks"] = run_microbenchmarks()
        report["instantiate_allocations"] = instantiate_allocations()
    return report


def bench_path(root: Optional[str] = None) -> str:
    """Repo-root location of the BENCH file (cwd by default)."""
    return os.path.join(root or os.getcwd(), BENCH_FILENAME)


def load_bench(path: str) -> Optional[Dict[str, Any]]:
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def write_bench(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Merge ``report`` into the BENCH file under its scale key."""
    doc = load_bench(path)
    if not doc or doc.get("schema_version") != SCHEMA_VERSION:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "benchmark": "control_plane_fast_path",
            "unit": "seconds (wall clock) unless suffixed _per_sec",
            "scales": {},
        }
    doc["scales"][report["scale"]] = report
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    return doc
