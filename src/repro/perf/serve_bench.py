"""The ``job_arrival`` workload: multi-tenant serving under Poisson load.

ROADMAP item 1's acceptance workload: a stream of jobs (cycling through
the fig07 logistic regression, the fig08 k-means, and the patch-rotation
loop) arrives at a shared cluster with seeded-Poisson interarrival gaps.
The :class:`~repro.nimbus.multijob.JobManager` admits up to
``max_concurrent`` at a time, queues the overflow, and the controller
multiplexes their blocks through the weighted fair-share dispatcher.

Two serving metrics come out, both pure functions of the seed (virtual
time, no wall clock):

* **aggregate task throughput** — total tasks executed across every job
  divided by the virtual makespan (tasks/virtual-second). This is the
  multi-tenant analogue of Fig. 8's single-job throughput ceiling.
* **p95 job latency** — 95th percentile of submit-to-finish virtual
  latency over the completed jobs, the number a serving deployment would
  put an SLO on. Queueing delay behind the admission cap counts.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Dict, List, Optional

from ..apps import (
    KMeansApp,
    KMeansSpec,
    LRApp,
    LRSpec,
    RotationApp,
    RotationSpec,
)
from ..nimbus import NimbusCluster, merged_registry

#: job mix, cycled in arrival order. Sized well below the harness figure
#: runs: the point is concurrency and queueing, not per-job scale.
JOB_MIX = ("fig07_lr", "fig08_kmeans", "patch_rotation")


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def build_job_arrival(
    num_workers: int = 8,
    num_jobs: int = 6,
    seed: int = 0,
    mean_interarrival: float = 0.05,
    iterations: int = 6,
    max_concurrent: int = 3,
    queue_cap: int = 8,
    dispatch_inflight_cap: int = 4,
    mode: str = "centralized",
    shards: Optional[int] = None,
) -> NimbusCluster:
    """Build a serve-mode cluster with ``num_jobs`` scheduled arrivals.

    One app instance per workload type is shared by every job of that
    type (blocks are translated into each job's oid namespace by its
    :class:`JobContext`, so sharing the spec is safe). Arrival times are
    cumulative ``Expovariate(1/mean_interarrival)`` gaps from a dedicated
    ``random.Random(seed)`` stream — the schedule is reproducible and
    independent of everything else the simulation draws.
    """
    lr = LRApp(LRSpec(num_workers=num_workers, iterations=iterations,
                      partitions_per_worker=4, data_bytes=1e9, seed=seed))
    km = KMeansApp(KMeansSpec(num_workers=num_workers,
                              iterations=iterations,
                              partitions_per_worker=4, data_bytes=1e9,
                              seed=seed))
    rot = RotationApp(RotationSpec(num_workers=num_workers,
                                   iterations=iterations, seed=seed))
    programs = {
        "fig07_lr": lr.program(blocking=False),
        "fig08_kmeans": km.program(blocking=False),
        # the rotation loop must block (round k+1 overwrites what round k
        # reads); it is also what keeps the patch cache busy while the
        # other tenants stream templates
        "patch_rotation": rot.program(),
    }
    cluster = NimbusCluster(
        num_workers, program=None,
        registry=merged_registry([lr.registry, km.registry, rot.registry]),
        trace=False,
        max_concurrent_jobs=max_concurrent,
        job_queue_cap=queue_cap,
        dispatch_inflight_cap=dispatch_inflight_cap,
        mode=mode, shards=shards,
    )
    rng = random.Random(seed)
    arrival = 0.0
    for i in range(num_jobs):
        arrival += rng.expovariate(1.0 / mean_interarrival)
        workload = JOB_MIX[i % len(JOB_MIX)]
        cluster.jobs.submit_at(arrival, programs[workload])
    return cluster


def run_job_arrival(
    num_workers: int = 8,
    num_jobs: int = 6,
    seed: int = 0,
    mean_interarrival: float = 0.05,
    iterations: int = 6,
    max_concurrent: int = 3,
    queue_cap: int = 8,
    dispatch_inflight_cap: int = 4,
    mode: str = "centralized",
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the arrival workload and report the serving metrics."""
    cluster = build_job_arrival(
        num_workers=num_workers, num_jobs=num_jobs, seed=seed,
        mean_interarrival=mean_interarrival, iterations=iterations,
        max_concurrent=max_concurrent, queue_cap=queue_cap,
        dispatch_inflight_cap=dispatch_inflight_cap, mode=mode,
        shards=shards,
    )
    start = time.perf_counter()
    cluster.run_until_jobs_finished(max_seconds=1e6)
    wall = time.perf_counter() - start
    records = sorted(cluster.jobs.records.values(), key=lambda r: r.job_id)
    latencies = [r.latency for r in records if r.latency is not None
                 and r.state == "finished"]
    per_job = [
        {
            "job_id": r.job_id,
            "workload": JOB_MIX[(r.job_id - 1) % len(JOB_MIX)],
            "submit_time": r.submit_time,
            "start_time": r.start_time,
            "finish_time": r.finish_time,
            "latency": r.latency,
            # workers charge tasks_executed to the shared cluster stream;
            # the per-job stream carries the controller-side schedule count
            "tasks_scheduled": r.metrics.count("tasks_scheduled")
            if r.metrics is not None else 0.0,
        }
        for r in records
    ]
    tasks_total = cluster.metrics.count("tasks_executed")
    makespan = cluster.sim.now
    return {
        "workers": num_workers,
        "jobs": num_jobs,
        "seed": seed,
        "mean_interarrival": mean_interarrival,
        "iterations": iterations,
        "max_concurrent": max_concurrent,
        "queue_cap": queue_cap,
        "dispatch_inflight_cap": dispatch_inflight_cap,
        "wall_seconds": round(wall, 4),
        "events": cluster.sim.events_run,
        "events_per_second": round(cluster.sim.events_run / wall)
        if wall > 0 else 0,
        "virtual_seconds": makespan,
        "jobs_finished": sum(1 for r in records if r.state == "finished"),
        "jobs_rejected": len(cluster.jobs.rejections),
        "tasks_executed": tasks_total,
        "aggregate_task_throughput": tasks_total / makespan
        if makespan > 0 else float("nan"),
        "p95_job_latency": _percentile(latencies, 0.95),
        "mean_job_latency": sum(latencies) / len(latencies)
        if latencies else float("nan"),
        "per_job": per_job,
    }
