"""Logistic regression (the paper's primary benchmark, §5.1–§5.4).

Strong-scaling setup matching the paper: a fixed dataset (default 100 GB)
split into 80 partitions per worker, one gradient task per partition, and
an application-level two-level reduction tree folding partial gradients
into a coefficient update. More workers ⇒ more, shorter tasks — task
throughput grows superlinearly with parallelism (Fig. 8).

Two modes:

* ``real_compute=True`` — partitions hold real numpy data; tasks compute a
  genuine logistic-regression gradient and the model converges (used by
  examples and integration tests at laptop scale).
* ``real_compute=False`` — the paper's "-opt" methodology: task bodies are
  virtual-time spin waits whose durations come from the calibrated rate of
  the C++ tasks, so 100 GB runs are simulated faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..nimbus.multijob import OID_STRIDE
from ..nimbus.runtime import FunctionRegistry
from .datasets import Variables, block_home, make_regression_data
from .reductions import ReductionTree

#: calibrated C++ gradient throughput, bytes/second/core (§5.1: Nimbus
#: tasks are memory-bound C++; calibrated to the paper's 20-worker and
#: 100-worker iteration times)
CPP_RATE = 3.05e9
#: Spark MLlib throughput: 8x slower than C++ (4x JVM + 2x immutable copies)
MLLIB_RATE = CPP_RATE / 8.0


@dataclass
class LRSpec:
    """Parameters of one logistic-regression run."""

    num_workers: int
    data_bytes: float = 100e9
    partitions_per_worker: int = 80
    dim: int = 1000
    iterations: int = 30
    compute_rate: float = CPP_RATE
    local_reduce_s: float = 0.3e-3
    group_reduce_s: float = 1.0e-3
    root_update_s: float = 2.0e-3
    step_size: float = 0.5
    real_compute: bool = False
    rows_per_partition: int = 64  # only for real_compute
    seed: int = 0

    @property
    def num_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker

    @property
    def partition_bytes(self) -> float:
        return self.data_bytes / self.num_partitions

    @property
    def gradient_task_s(self) -> float:
        return self.partition_bytes / self.compute_rate

    @property
    def coeff_bytes(self) -> int:
        return 8 * self.dim


class LRApp:
    """Builds the registry, objects, and blocks for a logistic regression job."""

    def __init__(self, spec: LRSpec):
        self.spec = spec
        self.variables = Variables()
        home = block_home(spec.partitions_per_worker)
        self.tdata = self.variables.partitioned(
            "tdata", spec.num_partitions, int(spec.partition_bytes), home)
        self.grad = self.variables.partitioned(
            "grad", spec.num_partitions, spec.coeff_bytes, home)
        self.tree = ReductionTree(
            self.variables, "gsum", self.grad, home, spec.num_workers,
            spec.coeff_bytes)
        self.coeff = self.variables.scalar(
            "coeff", spec.coeff_bytes, home=self.tree.root_worker)
        self.registry = self._build_registry()
        self.init_block = self._build_init_block()
        self.iteration_block = self._build_iteration_block()

    # ------------------------------------------------------------------
    # Task functions
    # ------------------------------------------------------------------
    def _build_registry(self) -> FunctionRegistry:
        spec = self.spec
        registry = FunctionRegistry()
        if spec.real_compute:
            registry.register("lr.load",
                              fn=_load_partition(spec, self.tdata[0]),
                              duration=1e-3)
            registry.register("lr.init_coeff", fn=_init_coeff(spec),
                              duration=1e-4)
            registry.register("lr.gradient", fn=_gradient,
                              duration=spec.gradient_task_s)
            registry.register("lr.sum", fn=_sum_partials,
                              duration=spec.local_reduce_s)
            registry.register("lr.group_sum", fn=_sum_partials,
                              duration=spec.group_reduce_s)
            registry.register("lr.update", fn=_update_coeff(spec),
                              duration=spec.root_update_s)
        else:
            registry.register("lr.load", duration=1e-3)
            registry.register("lr.init_coeff", duration=1e-4)
            registry.register("lr.gradient", duration=spec.gradient_task_s)
            registry.register("lr.sum", duration=spec.local_reduce_s)
            registry.register("lr.group_sum", duration=spec.group_reduce_s)
            registry.register("lr.update", duration=spec.root_update_s)
        return registry

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def _build_init_block(self) -> BlockSpec:
        load_tasks = [
            LogicalTask("lr.load", read=(), write=(oid,))
            for oid in self.tdata
        ]
        init_task = LogicalTask("lr.init_coeff", read=(), write=(self.coeff,))
        return BlockSpec("lr.init", [
            StageSpec("load", load_tasks),
            StageSpec("init_coeff", [init_task]),
        ])

    def _build_iteration_block(self) -> BlockSpec:
        spec = self.spec
        gradient_tasks = [
            LogicalTask("lr.gradient",
                        read=(self.tdata[p], self.coeff),
                        write=(self.grad[p],))
            for p in range(spec.num_partitions)
        ]
        stages = [StageSpec("gradient", gradient_tasks)]
        stages += self.tree.stages(
            "lr.sum", "lr.group_sum", "lr.update",
            extra_root_reads=(self.coeff,),
            extra_root_writes=(self.coeff,),
            root_param_slot="step",
        )
        return BlockSpec("lr.iteration", stages,
                         returns={"grad_norm": self.tree.result_oid})

    # ------------------------------------------------------------------
    # Driver programs
    # ------------------------------------------------------------------
    def program(self, blocking: bool = False,
                iterations: Optional[int] = None):
        """Fixed-iteration program (the Fig. 7/8 measurement loop).

        Non-blocking mode posts all iterations and drains — the driver is
        out of the loop and ordering comes from the dataflow, as in the
        paper's measurement runs.
        """
        spec = self.spec
        iters = iterations if iterations is not None else spec.iterations

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            params = {"step": spec.step_size}
            if blocking:
                for _ in range(iters):
                    yield job.run(self.iteration_block, params)
            else:
                for _ in range(iters):
                    job.post(self.iteration_block, params)
                yield job.drain()

        return _program

    def convergence_program(self, tolerance: float,
                            max_iterations: int = 200):
        """Data-dependent program: iterate until the gradient norm falls
        below ``tolerance`` (requires ``real_compute=True``)."""

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            params = {"step": self.spec.step_size}
            for _ in range(max_iterations):
                res = yield job.run(self.iteration_block, params)
                if res["grad_norm"] is not None and res["grad_norm"] < tolerance:
                    break

        return _program


# ---------------------------------------------------------------------------
# Real task implementations (closures over the spec)
# ---------------------------------------------------------------------------
def _load_partition(spec: LRSpec, tdata_base_oid: int):
    partitions, _truth = make_regression_data(
        spec.num_partitions, spec.rows_per_partition, spec.dim, spec.seed)

    def load(ctx):
        # tdata object ids are consecutive; recover the partition index
        # from the written oid so loading is placement-independent. Under
        # multi-tenant serving the runtime oid is the job-local id plus a
        # per-job stride multiple, which the modulo removes.
        partition = (ctx.write_set[0] - tdata_base_oid) % OID_STRIDE
        ctx.write(ctx.write_set[0], partitions[partition])

    return load


def _init_coeff(spec: LRSpec):
    def init(ctx):
        ctx.write(ctx.write_set[0], np.zeros(spec.dim))

    return init


def _gradient(ctx):
    (x, y) = ctx.read(ctx.read_set[0])
    coeff = ctx.read(ctx.read_set[1])
    logits = x @ coeff
    preds = 1.0 / (1.0 + np.exp(-logits))
    grad = x.T @ (preds - y) / len(y)
    ctx.write(ctx.write_set[0], grad)


def _sum_partials(ctx):
    total = None
    for value in ctx.reads():
        total = value.copy() if total is None else total + value
    ctx.write(ctx.write_set[0], total)


def _update_coeff(spec: LRSpec):
    def update(ctx):
        *partials, coeff = ctx.reads()
        grad = None
        for value in partials:
            grad = value.copy() if grad is None else grad + value
        step = ctx.params if ctx.params is not None else spec.step_size
        new_coeff = coeff - step * grad
        ctx.write(ctx.write_set[1], new_coeff)
        ctx.write(ctx.write_set[0], float(np.linalg.norm(grad)))

    return update
