"""Application-level two-level reduction trees (§5.1).

The Nimbus and Naiad versions of logistic regression and k-means use
two-level reduction trees built from ordinary tasks and data copies: each
worker reduces its local partials, group leaders reduce their group's
per-worker partials, and a root task folds the group partials into the
global value. The cross-worker copies are inserted automatically by the
worker-template generator (or the central scheduler), because the group
and root tasks read objects homed on other workers.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.spec import LogicalTask, StageSpec
from .datasets import Variables


class ReductionTree:
    """Plan of a two-level reduction over per-partition leaf objects."""

    def __init__(
        self,
        variables: Variables,
        name: str,
        leaf_oids: Sequence[int],
        leaf_home: Callable[[int], int],
        num_workers: int,
        partial_size: int,
        group_size: Optional[int] = None,
        root_worker: int = 0,
    ):
        self.name = name
        self.num_workers = num_workers
        self.leaf_oids = list(leaf_oids)
        self.leaf_home = leaf_home
        self.group_size = group_size or max(1, int(math.isqrt(num_workers)))
        self.root_worker = root_worker
        self.groups: List[List[int]] = [
            list(range(g, min(g + self.group_size, num_workers)))
            for g in range(0, num_workers, self.group_size)
        ]
        self.local_oids = variables.partitioned(
            f"{name}.local", num_workers, partial_size, lambda w: w)
        self.group_oids = variables.partitioned(
            f"{name}.group", len(self.groups), partial_size,
            lambda g: self.groups[g][0])
        self.result_oid = variables.scalar(
            f"{name}.result", partial_size, home=root_worker)

    def leaves_on(self, worker: int) -> List[int]:
        return self._leaves_by_worker().get(worker, [])

    def _leaves_by_worker(self) -> Dict[int, List[int]]:
        """Leaf oids grouped by home worker, in partition order.

        One O(partitions) pass, cached: the naive per-worker scan is
        O(workers x partitions), which dominates program construction at
        1000 workers (80k partitions).
        """
        cached = getattr(self, "_leaves_cache", None)
        if cached is None:
            cached = {}
            home = self.leaf_home
            for p, oid in enumerate(self.leaf_oids):
                cached.setdefault(home(p), []).append(oid)
            self._leaves_cache = cached
        return cached

    def stages(
        self,
        local_fn: str,
        group_fn: str,
        root_fn: str,
        extra_root_reads: Sequence[int] = (),
        extra_root_writes: Sequence[int] = (),
        root_param_slot: Optional[str] = None,
    ) -> List[StageSpec]:
        """Build the three reduction stages.

        ``root_fn`` reads the group partials plus ``extra_root_reads`` and
        writes ``result`` plus ``extra_root_writes`` (e.g. the updated model
        coefficients for logistic regression).
        """
        local_tasks = [
            LogicalTask(local_fn,
                        read=tuple(self.leaves_on(w)),
                        write=(self.local_oids[w],))
            for w in range(self.num_workers)
            if self.leaves_on(w)
        ]
        group_tasks = [
            LogicalTask(group_fn,
                        read=tuple(self.local_oids[w] for w in group),
                        write=(self.group_oids[g],))
            for g, group in enumerate(self.groups)
        ]
        root_task = LogicalTask(
            root_fn,
            read=tuple(self.group_oids) + tuple(extra_root_reads),
            write=(self.result_oid,) + tuple(extra_root_writes),
            param_slot=root_param_slot,
        )
        return [
            StageSpec(f"{self.name}.local", local_tasks),
            StageSpec(f"{self.name}.group", group_tasks),
            StageSpec(f"{self.name}.root", [root_task]),
        ]
