"""The training-regression application of Figure 3.

The paper's running example: a nested loop where the inner *optimization*
block runs gradient steps on the training data until the gradient norm is
small, and the outer *estimation* block measures the error on held-out
estimation data and updates the model parameter (here: the step size).

The inner-loop block reads the parameter written by the outer block, so
entering the inner loop fails validation and is patched (the ``param``
broadcast of §2.4); because the same transition recurs on every outer
iteration, the patch cache hits from the second outer iteration on — this
app is the canonical exerciser of patching and the patch cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..nimbus.runtime import FunctionRegistry
from .datasets import Variables, block_home, make_regression_data
from .reductions import ReductionTree


@dataclass
class RegressionSpec:
    """Parameters of the Figure 3 training-regression job."""

    num_workers: int
    partitions_per_worker: int = 4
    dim: int = 10
    rows_per_partition: int = 100
    gradient_task_s: float = 2e-3
    estimate_task_s: float = 1e-3
    reduce_task_s: float = 0.3e-3
    initial_step: float = 0.5
    threshold_g: float = 0.05
    threshold_e: float = 0.05
    max_inner: int = 50
    max_outer: int = 20
    seed: int = 0

    @property
    def num_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker


class RegressionApp:
    """Builds the two basic blocks of Figure 3 with real numerics."""

    def __init__(self, spec: RegressionSpec):
        self.spec = spec
        self.variables = Variables()
        home = block_home(spec.partitions_per_worker)
        self.tdata = self.variables.partitioned(
            "tdata", spec.num_partitions, 1 << 20, home)
        self.edata = self.variables.partitioned(
            "edata", spec.num_partitions, 1 << 20, home)
        self.grad = self.variables.partitioned(
            "grad", spec.num_partitions, 8 * spec.dim, home)
        self.err_part = self.variables.partitioned(
            "err_part", spec.num_partitions, 8, home)
        self.gtree = ReductionTree(
            self.variables, "gsum", self.grad, home, spec.num_workers,
            8 * spec.dim)
        self.etree = ReductionTree(
            self.variables, "esum", self.err_part, home, spec.num_workers, 8)
        self.coeff = self.variables.scalar("coeff", 8 * spec.dim, home=0)
        self.param = self.variables.scalar("param", 8, home=0)
        self.registry = self._build_registry()
        self.init_block = self._build_init_block()
        self.optimize_block = self._build_optimize_block()
        self.estimate_block = self._build_estimate_block()

    # ------------------------------------------------------------------
    def _build_registry(self) -> FunctionRegistry:
        spec = self.spec
        registry = FunctionRegistry()
        tparts, truth = make_regression_data(
            spec.num_partitions, spec.rows_per_partition, spec.dim,
            spec.seed, noise=0.0)
        eparts, _ = make_regression_data(
            spec.num_partitions, spec.rows_per_partition, spec.dim,
            spec.seed + 1, noise=0.0, truth=truth)
        tbase, ebase = self.tdata[0], self.edata[0]

        def load_t(ctx):
            ctx.write(ctx.write_set[0], tparts[ctx.write_set[0] - tbase])

        def load_e(ctx):
            ctx.write(ctx.write_set[0], eparts[ctx.write_set[0] - ebase])

        def init_coeff(ctx):
            ctx.write(ctx.write_set[0], np.zeros(spec.dim))

        def init_param(ctx):
            ctx.write(ctx.write_set[0], spec.initial_step)

        def gradient(ctx):
            (x, y) = ctx.read(ctx.read_set[0])
            coeff = ctx.read(ctx.read_set[1])
            _param = ctx.read(ctx.read_set[2])
            preds = 1.0 / (1.0 + np.exp(-(x @ coeff)))
            ctx.write(ctx.write_set[0], x.T @ (preds - y) / len(y))

        def sum_vec(ctx):
            total = None
            for value in ctx.reads():
                total = value.copy() if total is None else total + value
            ctx.write(ctx.write_set[0], total)

        def update_coeff(ctx):
            *partials, coeff, param = ctx.reads()
            grad = None
            for value in partials:
                grad = value.copy() if grad is None else grad + value
            ctx.write(ctx.write_set[1], coeff - param * grad)
            ctx.write(ctx.write_set[0], float(np.linalg.norm(grad)))

        def estimate(ctx):
            (x, y) = ctx.read(ctx.read_set[0])
            coeff = ctx.read(ctx.read_set[1])
            preds = 1.0 / (1.0 + np.exp(-(x @ coeff)))
            ctx.write(ctx.write_set[0],
                      float(np.mean((preds > 0.5) != (y > 0.5))))

        def sum_scalar(ctx):
            ctx.write(ctx.write_set[0], float(sum(ctx.reads())))

        def update_model(ctx):
            *partials, param = ctx.reads()
            error = sum(partials) / self.spec.num_partitions
            # decay the step size as the error shrinks (the "update_model"
            # of Figure 3a)
            ctx.write(ctx.write_set[1], max(0.05, param * 0.9))
            ctx.write(ctx.write_set[0], error)

        registry.register("reg.load_t", fn=load_t, duration=1e-3)
        registry.register("reg.load_e", fn=load_e, duration=1e-3)
        registry.register("reg.init_coeff", fn=init_coeff, duration=1e-4)
        registry.register("reg.init_param", fn=init_param, duration=1e-4)
        registry.register("reg.gradient", fn=gradient,
                          duration=spec.gradient_task_s)
        registry.register("reg.sum", fn=sum_vec, duration=spec.reduce_task_s)
        registry.register("reg.group_sum", fn=sum_vec,
                          duration=spec.reduce_task_s)
        registry.register("reg.update_coeff", fn=update_coeff,
                          duration=spec.reduce_task_s)
        registry.register("reg.estimate", fn=estimate,
                          duration=spec.estimate_task_s)
        registry.register("reg.err_sum", fn=sum_scalar,
                          duration=spec.reduce_task_s)
        registry.register("reg.err_group", fn=sum_scalar,
                          duration=spec.reduce_task_s)
        registry.register("reg.update_model", fn=update_model,
                          duration=spec.reduce_task_s)
        return registry

    # ------------------------------------------------------------------
    def _build_init_block(self) -> BlockSpec:
        return BlockSpec("reg.init", [
            StageSpec("load_t", [
                LogicalTask("reg.load_t", read=(), write=(oid,))
                for oid in self.tdata
            ]),
            StageSpec("load_e", [
                LogicalTask("reg.load_e", read=(), write=(oid,))
                for oid in self.edata
            ]),
            StageSpec("init", [
                LogicalTask("reg.init_coeff", read=(), write=(self.coeff,)),
                LogicalTask("reg.init_param", read=(), write=(self.param,)),
            ]),
        ])

    def _build_optimize_block(self) -> BlockSpec:
        """The inner-loop basic block: gradient step on the training data."""
        spec = self.spec
        gradient_tasks = [
            LogicalTask("reg.gradient",
                        read=(self.tdata[p], self.coeff, self.param),
                        write=(self.grad[p],))
            for p in range(spec.num_partitions)
        ]
        stages = [StageSpec("gradient", gradient_tasks)]
        stages += self.gtree.stages(
            "reg.sum", "reg.group_sum", "reg.update_coeff",
            extra_root_reads=(self.coeff, self.param),
            extra_root_writes=(self.coeff,),
        )
        return BlockSpec("reg.optimize", stages,
                         returns={"gradient": self.gtree.result_oid})

    def _build_estimate_block(self) -> BlockSpec:
        """The outer-loop basic block: estimation error + model update."""
        spec = self.spec
        estimate_tasks = [
            LogicalTask("reg.estimate",
                        read=(self.edata[p], self.coeff),
                        write=(self.err_part[p],))
            for p in range(spec.num_partitions)
        ]
        stages = [StageSpec("estimate", estimate_tasks)]
        stages += self.etree.stages(
            "reg.err_sum", "reg.err_group", "reg.update_model",
            extra_root_reads=(self.param,),
            extra_root_writes=(self.param,),
        )
        return BlockSpec("reg.estimate", stages,
                         returns={"error": self.etree.result_oid})

    # ------------------------------------------------------------------
    def program(self):
        """The nested driver loop of Figure 3a."""
        spec = self.spec

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            error = float("inf")
            outer = 0
            while error > spec.threshold_e and outer < spec.max_outer:
                gradient = float("inf")
                inner = 0
                while gradient > spec.threshold_g and inner < spec.max_inner:
                    res = yield job.run(self.optimize_block)
                    gradient = res["gradient"]
                    inner += 1
                res = yield job.run(self.estimate_block)
                error = res["error"]
                outer += 1

        return _program
