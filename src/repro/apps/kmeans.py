"""K-means clustering (the paper's second ML benchmark, §5.1, Fig. 7b).

Same strong-scaling structure as logistic regression: one assignment task
per partition plus a two-level reduction tree folding per-partition cluster
statistics into new centroids. Per-byte compute is heavier and the
reduction partials (k × d sums and counts) are larger, so completion time
shrinks slower than the parallelism grows — "reductions do not
parallelize" (§5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..nimbus.multijob import OID_STRIDE
from ..nimbus.runtime import FunctionRegistry
from .datasets import Variables, block_home, make_cluster_data
from .reductions import ReductionTree

#: calibrated C++ k-means assignment throughput, bytes/second/core
#: (calibrated to the paper's 20-worker and 100-worker iteration times)
KMEANS_CPP_RATE = 2.08e9


@dataclass
class KMeansSpec:
    """Parameters of one k-means run."""

    num_workers: int
    data_bytes: float = 100e9
    partitions_per_worker: int = 80
    dim: int = 100
    num_clusters: int = 100
    iterations: int = 30
    compute_rate: float = KMEANS_CPP_RATE
    local_reduce_s: float = 1.0e-3
    group_reduce_s: float = 5.0e-3
    root_update_s: float = 10.0e-3
    real_compute: bool = False
    rows_per_partition: int = 128  # only for real_compute
    seed: int = 0

    @property
    def num_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker

    @property
    def partition_bytes(self) -> float:
        return self.data_bytes / self.num_partitions

    @property
    def assign_task_s(self) -> float:
        return self.partition_bytes / self.compute_rate

    @property
    def stats_bytes(self) -> int:
        # per-cluster coordinate sums plus counts
        return 8 * self.num_clusters * (self.dim + 1)


class KMeansApp:
    """Builds the registry, objects, and blocks for a k-means job."""

    def __init__(self, spec: KMeansSpec):
        self.spec = spec
        self.variables = Variables()
        home = block_home(spec.partitions_per_worker)
        self.kdata = self.variables.partitioned(
            "kdata", spec.num_partitions, int(spec.partition_bytes), home)
        self.stats = self.variables.partitioned(
            "stats", spec.num_partitions, spec.stats_bytes, home)
        self.tree = ReductionTree(
            self.variables, "ksum", self.stats, home, spec.num_workers,
            spec.stats_bytes)
        self.centroids = self.variables.scalar(
            "centroids", spec.stats_bytes, home=self.tree.root_worker)
        self.registry = self._build_registry()
        self.init_block = self._build_init_block()
        self.iteration_block = self._build_iteration_block()

    def _build_registry(self) -> FunctionRegistry:
        spec = self.spec
        registry = FunctionRegistry()
        fns = {
            "km.load": _load_partition(spec, self.kdata[0])
            if spec.real_compute else None,
            "km.init_centroids": _init_centroids(spec)
            if spec.real_compute else None,
            "km.assign": _assign if spec.real_compute else None,
            "km.sum": _sum_stats if spec.real_compute else None,
            "km.group_sum": _sum_stats if spec.real_compute else None,
            "km.update": _update_centroids(spec)
            if spec.real_compute else None,
        }
        registry.register("km.load", fn=fns["km.load"], duration=1e-3)
        registry.register("km.init_centroids", fn=fns["km.init_centroids"],
                          duration=1e-4)
        registry.register("km.assign", fn=fns["km.assign"],
                          duration=spec.assign_task_s)
        registry.register("km.sum", fn=fns["km.sum"],
                          duration=spec.local_reduce_s)
        registry.register("km.group_sum", fn=fns["km.group_sum"],
                          duration=spec.group_reduce_s)
        registry.register("km.update", fn=fns["km.update"],
                          duration=spec.root_update_s)
        return registry

    def _build_init_block(self) -> BlockSpec:
        load_tasks = [
            LogicalTask("km.load", read=(), write=(oid,))
            for oid in self.kdata
        ]
        init_task = LogicalTask("km.init_centroids", read=(),
                                write=(self.centroids,))
        return BlockSpec("km.init", [
            StageSpec("load", load_tasks),
            StageSpec("init_centroids", [init_task]),
        ])

    def _build_iteration_block(self) -> BlockSpec:
        spec = self.spec
        assign_tasks = [
            LogicalTask("km.assign",
                        read=(self.kdata[p], self.centroids),
                        write=(self.stats[p],))
            for p in range(spec.num_partitions)
        ]
        stages = [StageSpec("assign", assign_tasks)]
        stages += self.tree.stages(
            "km.sum", "km.group_sum", "km.update",
            extra_root_writes=(self.centroids,),
        )
        return BlockSpec("km.iteration", stages,
                         returns={"inertia": self.tree.result_oid})

    def program(self, blocking: bool = False,
                iterations: Optional[int] = None):
        """Fixed-iteration measurement program (Fig. 7b)."""
        iters = iterations if iterations is not None else self.spec.iterations

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            if blocking:
                for _ in range(iters):
                    yield job.run(self.iteration_block)
            else:
                for _ in range(iters):
                    job.post(self.iteration_block)
                yield job.drain()

        return _program

    def convergence_program(self, tolerance: float,
                            max_iterations: int = 100):
        """Iterate until the inertia improvement falls below ``tolerance``."""

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            previous = None
            for _ in range(max_iterations):
                res = yield job.run(self.iteration_block)
                inertia = res["inertia"]
                if (previous is not None and inertia is not None
                        and abs(previous - inertia) < tolerance):
                    break
                previous = inertia

        return _program


# ---------------------------------------------------------------------------
# Real task implementations
# ---------------------------------------------------------------------------
def _load_partition(spec: KMeansSpec, kdata_base_oid: int):
    partitions, _centers = make_cluster_data(
        spec.num_partitions, spec.rows_per_partition, spec.dim,
        spec.num_clusters, spec.seed)

    def load(ctx):
        # the runtime oid may carry a per-job stride offset (multi-tenant
        # namespacing); the modulo recovers the job-local partition index
        partition = (ctx.write_set[0] - kdata_base_oid) % OID_STRIDE
        ctx.write(ctx.write_set[0], partitions[partition])

    return load


def _init_centroids(spec: KMeansSpec):
    def init(ctx):
        rng = np.random.default_rng(spec.seed + 1)
        centroids = rng.uniform(-1.0, 1.0, size=(spec.num_clusters, spec.dim))
        ctx.write(ctx.write_set[0], {"centroids": centroids})

    return init


def _assign(ctx):
    points = ctx.read(ctx.read_set[0])
    centroids = ctx.read(ctx.read_set[1])["centroids"]
    dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    labels = dists.argmin(axis=1)
    k, d = centroids.shape
    sums = np.zeros((k, d))
    counts = np.zeros(k)
    np.add.at(sums, labels, points)
    np.add.at(counts, labels, 1.0)
    inertia = float(dists[np.arange(len(points)), labels].sum())
    ctx.write(ctx.write_set[0],
              {"sums": sums, "counts": counts, "inertia": inertia})


def _sum_stats(ctx):
    total = None
    for value in ctx.reads():
        if total is None:
            total = {"sums": value["sums"].copy(),
                     "counts": value["counts"].copy(),
                     "inertia": value["inertia"]}
        else:
            total["sums"] += value["sums"]
            total["counts"] += value["counts"]
            total["inertia"] += value["inertia"]
    ctx.write(ctx.write_set[0], total)


def _update_centroids(spec: KMeansSpec):
    def update(ctx):
        partials = ctx.reads()
        total = None
        for value in partials:
            if total is None:
                total = {"sums": value["sums"].copy(),
                         "counts": value["counts"].copy(),
                         "inertia": value["inertia"]}
            else:
                total["sums"] += value["sums"]
                total["counts"] += value["counts"]
                total["inertia"] += value["inertia"]
        counts = np.maximum(total["counts"], 1.0)
        centroids = total["sums"] / counts[:, None]
        ctx.write(ctx.write_set[1], {"centroids": centroids})
        ctx.write(ctx.write_set[0], total["inertia"])

    return update
