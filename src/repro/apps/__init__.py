"""Application workloads: the paper's evaluation benchmarks.

* :class:`LRApp` — logistic regression with a two-level reduction tree
  (Figures 1, 7a, 8, 9, 10 and the Table 1–3 micro-benchmarks).
* :class:`KMeansApp` — k-means clustering (Figure 7b).
* :class:`WaterApp` — the PhysBAM particle-levelset water-simulation proxy
  (Figure 11): triply nested data-dependent loops, 21 stages, 40+ variables.
* :class:`RegressionApp` — the nested training-regression of Figure 3,
  whose inner/outer loop boundary exercises patching and the patch cache.
* :class:`RotationApp` — rotating producer/consumer loop whose every
  round violates the consume template's preconditions identically: the
  deterministic patch-cache exerciser used by the perf harness.
"""

from .datasets import (
    Variables,
    block_home,
    make_cluster_data,
    make_regression_data,
)
from .kmeans import KMEANS_CPP_RATE, KMeansApp, KMeansSpec
from .lr import CPP_RATE, MLLIB_RATE, LRApp, LRSpec
from .reductions import ReductionTree
from .regression import RegressionApp, RegressionSpec
from .rotation import RotationApp, RotationSpec
from .water import WaterApp, WaterSpec

__all__ = [
    "CPP_RATE",
    "KMEANS_CPP_RATE",
    "KMeansApp",
    "KMeansSpec",
    "LRApp",
    "LRSpec",
    "MLLIB_RATE",
    "ReductionTree",
    "RegressionApp",
    "RegressionSpec",
    "RotationApp",
    "RotationSpec",
    "Variables",
    "WaterApp",
    "WaterSpec",
    "block_home",
    "make_cluster_data",
    "make_regression_data",
]
