"""Rotating producer/consumer loop: the patch-cache exerciser workload.

Fig. 9's dynamic experiments show patching in anger; this is the distilled
steady-state version. Two basic blocks alternate:

* **produce** — one task per partition writes ``data[p]`` on the
  partition's home worker;
* **consume** — one task per partition reads ``data[p]`` but writes its
  output on the *next* worker (``home + 1 mod N``), so the consume
  template's preconditions expect every ``data[p]`` one worker ahead of
  where produce just wrote it.

Worker templates bake in only structural (intra-block) copies, so every
steady-state consume instantiation fails validation with the same
violation set and is repaired by a patch (§2.4). The produce→consume
transition recurs every round, which is exactly the narrow-control-flow
case the patch cache targets (§4.2): the patch is computed once and every
later round is a cache hit. The fig07/fig08 workloads never replay a
patch, so this loop is what gives ``patch_cache_hits`` real coverage in
the perf harness and BENCH file.

The loop is inherently blocking: round k+1's produce overwrites the very
objects round k's consume reads, so the driver must wait for each block
(there is no dataflow edge ordering them). ``program()`` therefore ignores
the non-blocking mode the fig07/fig08 apps offer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..nimbus.runtime import FunctionRegistry
from .datasets import Variables, block_home


@dataclass
class RotationSpec:
    """Parameters of the rotating two-block loop."""

    num_workers: int
    partitions_per_worker: int = 4
    data_bytes: int = 1 << 20
    produce_task_s: float = 1e-3
    consume_task_s: float = 1e-3
    iterations: int = 14
    seed: int = 0

    @property
    def num_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker


class RotationApp:
    """Builds the produce/consume block pair over rotated placements."""

    def __init__(self, spec: RotationSpec):
        self.spec = spec
        self.variables = Variables()
        home = block_home(spec.partitions_per_worker)

        def next_home(p: int) -> int:
            return (home(p) + 1) % spec.num_workers

        self.data = self.variables.partitioned(
            "data", spec.num_partitions, spec.data_bytes, home)
        # outputs live one worker ahead, dragging the consume tasks (and
        # their data preconditions) with them
        self.out = self.variables.partitioned(
            "out", spec.num_partitions, 8, next_home)
        self.registry = self._build_registry()
        self.produce_block = self._build_produce_block()
        self.consume_block = self._build_consume_block()

    @property
    def iteration_block(self) -> BlockSpec:
        """The measured block (harness convention: one entry per round)."""
        return self.consume_block

    def _build_registry(self) -> FunctionRegistry:
        registry = FunctionRegistry()
        registry.register("rot.produce", duration=self.spec.produce_task_s)
        registry.register("rot.consume", duration=self.spec.consume_task_s)
        return registry

    def _build_produce_block(self) -> BlockSpec:
        return BlockSpec("rot.produce", [StageSpec("produce", [
            LogicalTask("rot.produce", read=(), write=(oid,))
            for oid in self.data
        ])])

    def _build_consume_block(self) -> BlockSpec:
        spec = self.spec
        return BlockSpec("rot.consume", [StageSpec("consume", [
            LogicalTask("rot.consume",
                        read=(self.data[p],), write=(self.out[p],))
            for p in range(spec.num_partitions)
        ])])

    def program(self, blocking: bool = True, iterations=None):
        """The alternating driver loop (always blocking, see module doc)."""
        iters = iterations if iterations is not None else self.spec.iterations

        def _program(job):
            yield job.define(self.variables.definitions)
            for _ in range(iters):
                yield job.run(self.produce_block)
                yield job.run(self.consume_block)

        return _program
