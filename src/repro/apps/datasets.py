"""Logical-object bookkeeping and synthetic dataset generators.

:class:`Variables` allocates object ids for an application's partitioned
variables and produces the definition list the driver hands to
``job.define``. Synthetic data generators produce the real numpy payloads
used by the examples and integration tests (the benchmarks run in the
paper's "-opt" spin-wait mode and need no payloads).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class Variables:
    """Allocates object ids for named, partitioned application variables."""

    def __init__(self) -> None:
        self._next_oid = 1
        self.definitions: List[Tuple[int, str, int, int, Optional[int]]] = []
        self._by_name: Dict[str, List[int]] = {}

    def partitioned(
        self,
        name: str,
        partitions: int,
        size_bytes: int,
        home: Optional[Callable[[int], int]] = None,
    ) -> List[int]:
        """Declare a variable with one object per partition; returns oids.

        ``home(p)`` pins partition ``p`` to a worker (otherwise placement is
        the controller's round-robin default).
        """
        oids = []
        for p in range(partitions):
            oid = self._next_oid
            self._next_oid += 1
            worker = home(p) if home is not None else None
            self.definitions.append((oid, name, p, size_bytes, worker))
            oids.append(oid)
        self._by_name[name] = oids
        return oids

    def scalar(self, name: str, size_bytes: int = 8,
               home: Optional[int] = None) -> int:
        """Declare a singleton variable; returns its oid."""
        return self.partitioned(name, 1, size_bytes,
                                (lambda _p: home) if home is not None else None)[0]

    def oids(self, name: str) -> List[int]:
        return list(self._by_name[name])

    @property
    def num_objects(self) -> int:
        return len(self.definitions)


def block_home(partitions_per_worker: int) -> Callable[[int], int]:
    """Contiguous block placement: partition p lives on p // ppw."""

    def home(p: int) -> int:
        return p // partitions_per_worker

    return home


def make_regression_data(
    num_partitions: int,
    rows_per_partition: int,
    dim: int,
    seed: int = 0,
    noise: float = 0.1,
    truth: Optional[np.ndarray] = None,
) -> Tuple[List[Tuple[np.ndarray, np.ndarray]], np.ndarray]:
    """Synthetic logistic-regression data with a known ground truth.

    Returns per-partition ``(X, y)`` pairs and the true coefficient vector.
    Pass ``truth`` to draw fresh samples for an existing model (held-out
    estimation data).
    """
    rng = np.random.default_rng(seed)
    if truth is None:
        truth = rng.normal(size=dim)
        truth /= np.linalg.norm(truth)
    partitions = []
    for _ in range(num_partitions):
        x = rng.normal(size=(rows_per_partition, dim))
        logits = x @ truth + noise * rng.normal(size=rows_per_partition)
        y = (logits > 0).astype(np.float64)
        partitions.append((x, y))
    return partitions, truth


def make_cluster_data(
    num_partitions: int,
    rows_per_partition: int,
    dim: int,
    num_clusters: int,
    seed: int = 0,
    spread: float = 0.15,
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Synthetic k-means data drawn around well-separated centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1.0, 1.0, size=(num_clusters, dim))
    partitions = []
    for _ in range(num_partitions):
        labels = rng.integers(num_clusters, size=rows_per_partition)
        points = centers[labels] + spread * rng.normal(
            size=(rows_per_partition, dim))
        partitions.append(points)
    return partitions, centers
