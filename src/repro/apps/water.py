"""PhysBAM water-simulation proxy (§5.5, Fig. 11).

The paper's hardest workload is a particle-levelset fluid simulation with a
triply nested loop: frames → adaptive time substeps (CFL-bounded, data
dependent) → conjugate-gradient projection iterations (residual-bounded,
data dependent), 21 computational stages accessing over 40 simulation
variables, and tasks from 100 µs to ~70 ms.

Substitution (documented in DESIGN.md): PhysBAM itself is 50 developer-years
of C++ numerics; what the evaluation measures is the *control structure* —
the number, length, and dependency pattern of tasks and the data-dependent
loop bounds. This proxy reproduces exactly that structure:

* the same triply nested loop, with the substep count driven by a CFL
  condition on a returned ``max_u`` value and the projection loop driven by
  a returned residual that decays at a substep-dependent rate;
* 21 named stages with the paper's task-length profile (majority of time in
  60–70 ms tasks, median 13 ms, 10 % < 3 ms, shortest 100 µs);
* one task per partition per stage, with ghost-region reads of neighbor
  partitions generating the cross-worker copies an MPI code would post;
* a particle reseeding block every few substeps, giving the dynamic
  control-flow branches that exercise template patching.

Field variables are double-buffered (every ghost-read stage writes a
different variable), matching how PhysBAM separates read and write arrays
inside a stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.spec import BlockSpec, LogicalTask, StageSpec
from ..nimbus.runtime import FunctionRegistry
from .datasets import Variables, block_home

MS = 1e-3


@dataclass
class WaterSpec:
    """Parameters of one water-simulation run.

    ``scale`` multiplies every stage duration; the default configuration is
    a scaled-down frame (the paper's full frame is ~32 s of MPI time — see
    EXPERIMENTS.md for the scaling argument; the MPI/Nimbus *ratios* are
    scale-invariant because control-plane cost per task is fixed).
    """

    num_workers: int = 64
    partitions_per_worker: int = 5
    frames: int = 1
    frame_duration: float = 1.0  # simulated fluid-time per frame
    cfl: float = 0.5
    dx: float = 1.0 / 256.0
    base_velocity: float = 1.4
    cg_tolerance: float = 1e-4
    cg_initial_residual: float = 1.0
    max_cg_iterations: int = 60
    reseed_every: int = 5  # substeps between particle reseeding blocks
    scale: float = 1.0
    field_bytes: int = 1 << 20  # per-partition field size (ghost copies)

    @property
    def num_partitions(self) -> int:
        return self.num_workers * self.partitions_per_worker

    def cg_decay(self, substep: int) -> float:
        """Substep-dependent residual decay rate (deterministic pseudo-noise)."""
        x = math.sin(substep * 12.9898 + 78.233) * 43758.5453
        frac = x - math.floor(x)
        return 0.35 + 0.3 * frac

    def max_velocity(self, substep: int) -> float:
        """Synthetic max fluid speed: smooth, bounded, substep-dependent."""
        return self.base_velocity * (1.0 + 0.35 * math.sin(0.9 * substep))

    def residual_after(self, substep: int, iteration: int) -> float:
        return self.cg_initial_residual * self.cg_decay(substep) ** (iteration + 1)

    def expected_cg_iterations(self, substep: int) -> int:
        decay = self.cg_decay(substep)
        need = math.log(self.cg_tolerance / self.cg_initial_residual) / math.log(decay)
        return min(self.max_cg_iterations, max(1, math.ceil(need)))

    def dt_of(self, substep: int) -> float:
        return self.cfl * self.dx / self.max_velocity(substep)

    def expected_substeps(self, frame: int = 0) -> int:
        """Substeps the CFL loop will take for one frame (for tests/benches)."""
        t, sub, count = 0.0, 0, 0
        while t < self.frame_duration:
            t += self.dt_of(sub)
            sub += 1
            count += 1
            if count > 10000:  # pragma: no cover - misconfiguration guard
                raise RuntimeError("CFL loop does not terminate")
        return count


# ---------------------------------------------------------------------------
# The 21-stage profile.
#
# Each row: (stage name, duration_ms, reads, ghost_reads, writes) over
# per-partition field variables. Ghost reads touch partitions p-1 and p+1,
# producing neighbor copies across workers.
# ---------------------------------------------------------------------------
ADVECT_STAGES: List[Tuple[str, float, Tuple[str, ...], Tuple[str, ...], str]] = [
    # name, ms, reads, ghost reads, write
    ("compute_occupied",      3.0, ("phi", "grid_metadata"), (), "occupied"),
    ("adjust_phi_objects",    2.0, ("phi", "psi_d", "collision_bodies"), (), "phi_adj"),
    ("advect_phi",           60.0, ("face_vel", "occupied"), ("phi_adj",), "phi"),
    ("advect_particles",     65.0, ("face_vel", "occupied"), ("particles",), "particles_adv"),
    ("advect_removed",       13.0, ("face_vel",), ("removed",), "removed_adv"),
    ("advect_velocity",      65.0, ("density", "viscosity"), ("face_vel",), "face_vel_new"),
    ("apply_forces",          3.0, ("face_vel_new", "forces", "gravity",
                                    "source_terms"), (), "face_vel_forced"),
    ("extrapolate_phi",      13.0, ("boundary_flux",), ("phi",), "phi_ghost"),
    ("step_particles",       13.0, ("phi_ghost", "particles_adv",
                                    "surface_tension"), (), "particles"),
    ("compute_divergence",   13.0, ("phi_ghost", "psi_n"), ("face_vel_forced",), "divergence"),
]

CG_STAGES: List[Tuple[str, float, Tuple[str, ...], Tuple[str, ...], str]] = [
    ("cg_smooth",             0.4, ("divergence", "laplacian"), ("pressure",), "pressure_tmp"),
    ("cg_apply",              0.3, ("pressure_tmp", "preconditioner"), (), "pressure"),
    ("cg_residual",           0.1, ("divergence",), ("pressure",), "res_part"),
]

POST_STAGES: List[Tuple[str, float, Tuple[str, ...], Tuple[str, ...], str]] = [
    ("apply_pressure",       13.0, ("face_vel_forced", "laplacian"), ("pressure",), "face_vel_proj"),
    ("extrapolate_velocity", 13.0, ("phi_ghost", "object_velocities"), ("face_vel_proj",), "face_vel"),
    ("mod_levelset",         13.0, ("particles", "cell_flags"), ("phi",), "phi_mod"),
    ("adjust_levelset",       3.0, ("curvature",), ("phi_mod",), "phi"),
    ("delete_particles",      2.0, ("phi", "particles"), (), "particles_del"),
    ("reincorporate",         3.0, ("removed_adv", "particles_del"), (), "particles"),
    ("second_projection",    60.0, ("phi", "psi_d"), ("face_vel",), "face_vel_final"),
    ("compute_max_u",         1.0, ("face_vel_final", "grid_metadata"), (), "maxu_part"),
]

RESEED_STAGES: List[Tuple[str, float, Tuple[str, ...], Tuple[str, ...], str]] = [
    ("reseed_particles",     13.0, ("seed_table",), ("phi",), "particles_seeded"),
    ("prune_particles",       2.0, ("particles_seeded", "phi"), (), "particles"),
]

#: read-only auxiliary fields (boundary conditions, material parameters)
STATIC_FIELDS = ("psi_d", "psi_n", "density", "forces", "viscosity",
                 "surface_tension", "object_velocities", "collision_bodies",
                 "gravity", "source_terms", "boundary_flux", "grid_metadata",
                 "laplacian", "preconditioner", "cell_flags", "curvature",
                 "seed_table")


class WaterApp:
    """Builds the registry, objects, and blocks for the water simulation."""

    def __init__(self, spec: WaterSpec):
        self.spec = spec
        self.variables = Variables()
        self._home = block_home(spec.partitions_per_worker)
        self._fields: Dict[str, List[int]] = {}

        field_names: List[str] = list(STATIC_FIELDS)
        for table in (ADVECT_STAGES, CG_STAGES, POST_STAGES, RESEED_STAGES):
            for _name, _ms, reads, ghosts, write in table:
                for var in (*reads, *ghosts, write):
                    if var not in field_names:
                        field_names.append(var)
        for name in field_names:
            self._fields[name] = self.variables.partitioned(
                name, spec.num_partitions, spec.field_bytes, self._home)

        # scalar chain for the data-dependent loops
        self.res_local = self.variables.partitioned(
            "res_local", spec.num_workers, 8, lambda w: w)
        self.residual = self.variables.scalar("residual", 8, home=0)
        self.maxu_local = self.variables.partitioned(
            "maxu_local", spec.num_workers, 8, lambda w: w)
        self.max_u = self.variables.scalar("max_u", 8, home=0)

        self.registry = self._build_registry()
        self.init_block = self._build_init_block()
        self.advect_block = self._stage_block("water.advect", ADVECT_STAGES)
        self.cg_block = self._build_cg_block()
        self.post_block = self._build_post_block()
        self.reseed_block = self._stage_block("water.reseed", RESEED_STAGES)

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Distinct simulation variables (the paper's job accesses 40+)."""
        return len(self._fields) + 4  # + residual/max_u chains

    def field(self, name: str) -> List[int]:
        return self._fields[name]

    # ------------------------------------------------------------------
    def _build_registry(self) -> FunctionRegistry:
        spec = self.spec
        registry = FunctionRegistry()
        for table in (ADVECT_STAGES, CG_STAGES, POST_STAGES, RESEED_STAGES):
            for name, ms, _r, _g, _w in table:
                if f"water.{name}" not in registry:
                    registry.register(f"water.{name}",
                                      duration=ms * MS * spec.scale)
        registry.register("water.init_field", duration=0.5 * MS * spec.scale)

        # the scalar chain carries real values so the driver's loops are
        # genuinely data-dependent
        def reduce_residual(ctx):
            ctx.write(ctx.write_set[0], 0.0)

        def root_residual(ctx):
            substep, iteration = ctx.params
            ctx.write(ctx.write_set[0],
                      spec.residual_after(substep, iteration))

        def reduce_maxu(ctx):
            ctx.write(ctx.write_set[0], 0.0)

        def root_maxu(ctx):
            substep = ctx.params
            ctx.write(ctx.write_set[0], spec.max_velocity(substep))

        registry.register("water.res_local", fn=reduce_residual,
                          duration=0.1 * MS * spec.scale)
        registry.register("water.res_root", fn=root_residual,
                          duration=0.2 * MS * spec.scale)
        registry.register("water.maxu_local", fn=reduce_maxu,
                          duration=0.1 * MS * spec.scale)
        registry.register("water.maxu_root", fn=root_maxu,
                          duration=0.2 * MS * spec.scale)
        return registry

    def _partition_tasks(self, fn: str, reads: Sequence[str],
                         ghosts: Sequence[str], write: str) -> List[LogicalTask]:
        spec = self.spec
        tasks = []
        last = spec.num_partitions - 1
        for p in range(spec.num_partitions):
            read_oids: List[int] = [self._fields[v][p] for v in reads]
            for v in ghosts:
                read_oids.append(self._fields[v][p])
                if p > 0:
                    read_oids.append(self._fields[v][p - 1])
                if p < last:
                    read_oids.append(self._fields[v][p + 1])
            tasks.append(LogicalTask(
                fn, read=tuple(read_oids),
                write=(self._fields[write][p],)))
        return tasks

    def _stage_block(self, block_id: str, table) -> BlockSpec:
        stages = [
            StageSpec(name, self._partition_tasks(
                f"water.{name}", reads, ghosts, write))
            for name, _ms, reads, ghosts, write in table
        ]
        return BlockSpec(block_id, stages)

    def _build_init_block(self) -> BlockSpec:
        tasks = []
        for name, oids in self._fields.items():
            tasks.extend(
                LogicalTask("water.init_field", read=(), write=(oid,))
                for oid in oids
            )
        return BlockSpec("water.init", [StageSpec("init_fields", tasks)])

    def _scalar_reduce_stages(self, parts_var: str, local_fn: str,
                              local_oids: List[int], root_fn: str,
                              root_oid: int, root_slot: str) -> List[StageSpec]:
        spec = self.spec
        local_tasks = []
        for w in range(spec.num_workers):
            mine = [self._fields[parts_var][p]
                    for p in range(spec.num_partitions) if self._home(p) == w]
            local_tasks.append(LogicalTask(
                local_fn, read=tuple(mine), write=(local_oids[w],)))
        root_task = LogicalTask(root_fn, read=tuple(local_oids),
                                write=(root_oid,), param_slot=root_slot)
        return [
            StageSpec(f"{root_fn}.local", local_tasks),
            StageSpec(f"{root_fn}.root", [root_task]),
        ]

    def _build_cg_block(self) -> BlockSpec:
        stages = [
            StageSpec(name, self._partition_tasks(
                f"water.{name}", reads, ghosts, write))
            for name, _ms, reads, ghosts, write in CG_STAGES
        ]
        stages += self._scalar_reduce_stages(
            "res_part", "water.res_local", self.res_local,
            "water.res_root", self.residual, "cg")
        return BlockSpec("water.cg", stages,
                         returns={"residual": self.residual})

    def _build_post_block(self) -> BlockSpec:
        stages = [
            StageSpec(name, self._partition_tasks(
                f"water.{name}", reads, ghosts, write))
            for name, _ms, reads, ghosts, write in POST_STAGES
        ]
        stages += self._scalar_reduce_stages(
            "maxu_part", "water.maxu_local", self.maxu_local,
            "water.maxu_root", self.max_u, "sub")
        return BlockSpec("water.post", stages,
                         returns={"max_u": self.max_u})

    # ------------------------------------------------------------------
    def program(self, frame_log: Optional[list] = None):
        """The triply nested simulation loop (Figure 11's workload).

        ``frame_log``, when given, collects the virtual completion time of
        each frame — the benchmarks use it to measure steady-state frame
        time after template installation.
        """
        spec = self.spec

        def _program(job):
            yield job.define(self.variables.definitions)
            yield job.run(self.init_block)
            substep = 0
            for _frame in range(spec.frames):
                t = 0.0
                while t < spec.frame_duration:  # middle loop: CFL-bounded
                    yield job.run(self.advect_block)
                    residual = math.inf
                    iteration = 0
                    while (residual > spec.cg_tolerance
                           and iteration < spec.max_cg_iterations):
                        res = yield job.run(
                            self.cg_block, {"cg": (substep, iteration)})
                        residual = res["residual"]
                        iteration += 1
                    if (spec.reseed_every
                            and substep % spec.reseed_every
                            == spec.reseed_every - 1):
                        yield job.run(self.reseed_block)
                    res = yield job.run(self.post_block, {"sub": substep})
                    max_u = res["max_u"]
                    t += spec.cfl * spec.dx / max_u
                    substep += 1
                if frame_log is not None:
                    frame_log.append(job.now)

        return _program

    # ------------------------------------------------------------------
    def expected_tasks_per_frame(self) -> int:
        """Approximate task count of one frame (for bench scaling notes)."""
        spec = self.spec
        n = spec.num_partitions
        per_substep = (len(ADVECT_STAGES) + len(POST_STAGES)) * n
        per_substep += spec.num_workers + 1  # max_u reduce
        total = 0
        for sub in range(spec.expected_substeps()):
            cg = self.spec.expected_cg_iterations(sub)
            total += per_substep
            total += cg * (len(CG_STAGES) * n + spec.num_workers + 1)
            if spec.reseed_every and sub % spec.reseed_every == spec.reseed_every - 1:
                total += len(RESEED_STAGES) * n
        return total
