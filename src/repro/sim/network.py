"""Network model: point-to-point links with latency and bandwidth.

The paper runs all nodes in one EC2 placement group with full bisection
bandwidth, so the model is a full mesh of independent links. Each directed
(src, dst) pair has a FIFO link whose serialization time is
``size_bytes / bandwidth``; propagation adds a fixed ``latency``.

Messages between actors on the same node (src is dst) are delivered with a
small loopback latency and no bandwidth charge.

Transmitting to (or from) a partitioned actor drops the message, like a
dead TCP peer — but never silently: the drop increments the
``partition_drops`` counter (and the ``net.partition_drops`` metric when a
:class:`~repro.sim.metrics.Metrics` is attached) and invokes the optional
``on_partition_drop`` callback so senders can observe the loss. Recovering
from such drops is the job of the reliable protocol layer
(:mod:`repro.nimbus.protocol`), not the network.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .actor import Actor, Message
from .engine import Simulator
from .metrics import Metrics


class Network:
    """Full-mesh network connecting actors.

    Parameters
    ----------
    sim:
        The simulation engine.
    latency:
        One-way propagation delay in seconds (default 100 µs, a typical
        intra-placement-group RTT/2 on EC2).
    bandwidth:
        Per-link bandwidth in bytes/second (default 1.25 GB/s ≈ 10 Gb/s).
    loopback_latency:
        Delivery delay for messages an actor sends to itself.
    metrics:
        Optional metrics sink; drops to partitioned actors are counted
        under ``net.partition_drops``.
    on_partition_drop:
        Optional ``(src, dst, msg)`` callback invoked for every message
        dropped because either end is partitioned.

    ``lossless`` advertises whether a successful :meth:`transmit` implies
    guaranteed delivery. True for the plain network until the first
    :meth:`partition` (and permanently False afterwards — conservative, so
    the reliable layer's trusted-transport fast path never races a heal);
    always False for chaos wrappers, which may drop any transmission.
    """

    #: see class docstring; ChaosNetwork overrides to False
    lossless = True

    def __init__(
        self,
        sim: Simulator,
        latency: float = 100e-6,
        bandwidth: float = 1.25e9,
        loopback_latency: float = 1e-6,
        metrics: Optional[Metrics] = None,
        on_partition_drop: Optional[Callable[[Actor, Actor, Message], None]] = None,
    ):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self.metrics = metrics
        self.on_partition_drop = on_partition_drop
        # (src, dst) -> [link free time, depart time of the latest-departing
        # message]; see _deliver for the depart-order serialization rule
        self._link_free: Dict[Tuple[str, str], list] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.partition_drops = 0
        self.partitioned: set = set()  # names of actors cut off (failure injection)
        self.actors: Dict[str, Actor] = {}  # name -> attached actor

    def attach(self, actor: Actor) -> Actor:
        """Attach an actor so it can send through this network."""
        actor.network = self
        self.actors[actor.name] = actor
        return actor

    def partition(self, actor_name: str) -> None:
        """Cut an actor off from the network (used for failure injection).

        Link reservations touching the actor are released immediately: a
        dead TCP peer aborts in-flight transfers, so serialization time
        charged to them must not delay the first message after a heal or
        a crashed worker's restart.
        """
        self.partitioned.add(actor_name)
        self.lossless = False  # sends may now be dropped; stays off for good
        self._clear_reservations(actor_name)

    def _clear_reservations(self, actor_name: str) -> None:
        """Drop link-busy state for every link into or out of ``actor_name``."""
        link_free = self._link_free
        stale = [key for key in link_free
                 if key[0] == actor_name or key[1] == actor_name]
        for key in stale:
            del link_free[key]

    def heal(self, actor_name: str) -> None:
        """Reconnect a previously partitioned actor."""
        self.partitioned.discard(actor_name)

    def transmit(self, src: Actor, dst: Actor, msg: Message, depart: float) -> None:
        """Transmit ``msg`` from ``src`` to ``dst``, departing at ``depart``."""
        if src.name in self.partitioned or dst.name in self.partitioned:
            self._drop_partitioned(src, dst, msg)
            return
        self._deliver(src, dst, msg, depart)

    def _drop_partitioned(self, src: Actor, dst: Actor, msg: Message) -> None:
        """Account for a message lost to a partition and notify the sender."""
        self.partition_drops += 1
        if self.metrics is not None:
            self.metrics.incr("net.partition_drops")
        if self.on_partition_drop is not None:
            self.on_partition_drop(src, dst, msg)

    def _deliver(self, src: Actor, dst: Actor, msg: Message, depart: float,
                 extra_delay: float = 0.0) -> None:
        """Charge the link and schedule delivery (shared with chaos wrappers)."""
        self.messages_sent += 1
        # Sized messages are mandatory: every Message carries size_bytes
        # (the class default covers bare control signals). An AttributeError
        # here means a non-Message object reached the network layer.
        size = msg.size_bytes
        self.bytes_sent += size
        if src is dst:
            arrive = depart + self.loopback_latency
        else:
            key = (src.name, dst.name)
            entry = self._link_free.get(key)
            if entry is None:
                done = depart + size / self.bandwidth
                self._link_free[key] = [done, depart]
            else:
                free, last_depart = entry
                if depart < last_depart:
                    # The link serializes in hand-off (depart) order, not
                    # in the order transmit() is called: a message sent
                    # from a long handler is handed to the NIC only when
                    # the handler's charged time elapses, so a transport
                    # frame (ack, retransmission) generated meanwhile goes
                    # out first. It fits before the future reservation
                    # begins; its own occupancy (tiny control frames) is
                    # not added to the staircase.
                    done = depart + size / self.bandwidth
                else:
                    start = depart if depart > free else free
                    done = start + size / self.bandwidth
                    entry[0] = done
                    entry[1] = depart
            arrive = done + self.latency
        arrive += extra_delay
        sim = self.sim
        now = sim._now
        sim.schedule_fast(arrive if arrive > now else now, dst.deliver, (msg,))
