"""Network model: point-to-point links with latency and bandwidth.

The paper runs all nodes in one EC2 placement group with full bisection
bandwidth, so the model is a full mesh of independent links. Each directed
(src, dst) pair has a FIFO link whose serialization time is
``size_bytes / bandwidth``; propagation adds a fixed ``latency``.

Messages between actors on the same node (src is dst) are delivered with a
small loopback latency and no bandwidth charge.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .actor import Actor, Message
from .engine import Simulator


class Network:
    """Full-mesh network connecting actors.

    Parameters
    ----------
    sim:
        The simulation engine.
    latency:
        One-way propagation delay in seconds (default 100 µs, a typical
        intra-placement-group RTT/2 on EC2).
    bandwidth:
        Per-link bandwidth in bytes/second (default 1.25 GB/s ≈ 10 Gb/s).
    loopback_latency:
        Delivery delay for messages an actor sends to itself.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float = 100e-6,
        bandwidth: float = 1.25e9,
        loopback_latency: float = 1e-6,
    ):
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.loopback_latency = loopback_latency
        self._link_free: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.partitioned: set = set()  # names of actors cut off (failure injection)

    def attach(self, actor: Actor) -> Actor:
        """Attach an actor so it can send through this network."""
        actor.network = self
        return actor

    def partition(self, actor_name: str) -> None:
        """Cut an actor off from the network (used for failure injection)."""
        self.partitioned.add(actor_name)

    def heal(self, actor_name: str) -> None:
        """Reconnect a previously partitioned actor."""
        self.partitioned.discard(actor_name)

    def transmit(self, src: Actor, dst: Actor, msg: Message, depart: float) -> None:
        """Transmit ``msg`` from ``src`` to ``dst``, departing at ``depart``."""
        if src.name in self.partitioned or dst.name in self.partitioned:
            return  # silently dropped, like a dead TCP peer
        self.messages_sent += 1
        size = getattr(msg, "size_bytes", 0)
        self.bytes_sent += size
        if src is dst:
            arrive = depart + self.loopback_latency
        else:
            key = (src.name, dst.name)
            free = self._link_free.get(key, 0.0)
            start = max(depart, free)
            done = start + size / self.bandwidth
            self._link_free[key] = done
            arrive = done + self.latency
        self.sim.schedule_at(max(arrive, self.sim.now), dst.deliver, msg)
