"""Metric collection for simulation runs.

A :class:`Metrics` instance collects three kinds of data:

* **counters** — monotonically increasing named counts (tasks executed,
  messages handled, patch-cache hits, ...)
* **series** — timestamped (t, value) samples per name (task throughput,
  queue lengths, ...)
* **intervals** — named (start, end, labels) spans (iterations, template
  install phases, ...), which the analysis layer turns into the per-iteration
  control-vs-computation breakdowns the paper plots.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Tuple


class Interval:
    """A named time span with free-form labels."""

    __slots__ = ("name", "start", "end", "labels")

    def __init__(self, name: str, start: float, labels: Optional[Dict[str, Any]] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.labels: Dict[str, Any] = labels or {}

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"interval {self.name!r} is still open")
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Interval {self.name} [{self.start:.6f}, {self.end}] {self.labels}>"


class Metrics:
    """Collects counters, time series, and intervals from a run."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        self.intervals: Dict[str, List[Interval]] = defaultdict(list)
        self._open: Dict[Tuple[str, Any], Interval] = {}

    # -- counters -------------------------------------------------------
    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def count(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def counters_snapshot(self, prefix: str = "") -> Dict[str, float]:
        """A plain-dict copy of all counters (optionally filtered by prefix).

        Used to compare whole runs — e.g. asserting that replaying a chaos
        seed reproduces byte-identical fault and protocol counters.
        """
        return {name: value for name, value in sorted(self.counters.items())
                if name.startswith(prefix)}

    # -- series ---------------------------------------------------------
    def sample(self, name: str, time: float, value: float) -> None:
        self.series[name].append((time, value))

    # -- intervals ------------------------------------------------------
    def begin(self, name: str, time: float, key: Any = None, **labels: Any) -> Interval:
        """Open an interval. ``key`` distinguishes concurrent spans.

        Raises :class:`KeyError` when an interval with the same
        ``(name, key)`` is already open — silently overwriting it would
        leak the first span and corrupt every downstream breakdown.
        """
        prior = self._open.get((name, key))
        if prior is not None:
            raise KeyError(
                f"interval {name!r} with key {key!r} is already open "
                f"(begun at t={prior.start!r}, begun again at t={time!r}); "
                f"end it first or use a distinct key")
        interval = Interval(name, time, labels)
        self._open[(name, key)] = interval
        return interval

    def end(self, name: str, time: float, key: Any = None, **labels: Any) -> Interval:
        """Close the open interval with the same (name, key).

        Raises :class:`KeyError` with a descriptive message when no such
        interval is open (ended twice, or never begun).
        """
        interval = self._open.pop((name, key), None)
        if interval is None:
            open_now = sorted(map(repr, self._open)) or ["<none>"]
            raise KeyError(
                f"no open interval {name!r} with key {key!r} to end at "
                f"t={time!r} (ended twice, or never begun?); currently "
                f"open: {', '.join(open_now)}")
        interval.end = time
        interval.labels.update(labels)
        self.intervals[name].append(interval)
        return interval

    def durations(self, name: str) -> List[float]:
        """Durations of all closed intervals with ``name``."""
        return [iv.duration for iv in self.intervals.get(name, [])]

    def label_values(self, name: str, label: str) -> List[Any]:
        return [iv.labels.get(label) for iv in self.intervals.get(name, [])]
