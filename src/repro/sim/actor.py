"""Actors: simulated nodes with a serial control thread.

Every node in the system (controller, worker, driver) is an :class:`Actor`.
An actor owns a single *control thread*: messages delivered to the actor are
handled one at a time, and each handler charges virtual CPU time via
:meth:`Actor.charge`. This serial service queue is exactly what makes a
centralized control plane a bottleneck — the effect the paper measures — so
it is the load-bearing part of the simulation substrate.

Handlers run as real Python code (they mutate real template and task-graph
data structures); only the *clock* is modeled. Outgoing messages sent during
a handler depart when the handler's charged time elapses.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from . import fastpath
from .engine import Simulator


class Message:
    """Base class for messages exchanged between actors.

    ``size_bytes`` is used by the network's bandwidth model. Subclasses are
    plain data holders; handlers dispatch on type.

    ``rel_seq``/``rel_src`` are stamped onto instances by the reliable
    channel layer; the class-level ``None`` makes the unreliable-message
    check in :meth:`ReliableEndpoint.deliver` a plain attribute load.
    """

    size_bytes: int = 256
    rel_seq = None
    rel_src = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class _Callback(Message):
    """Internal message used to run a timer callback on the control thread."""

    size_bytes = 0

    def __init__(self, fn: Callable, args: Tuple):
        self.fn = fn
        self.args = args


class Actor:
    """A simulated node with a serial message-handling control thread.

    Subclasses override :meth:`handle` and call :meth:`charge` to account
    for control-plane CPU time. Use :meth:`send` to transmit messages via
    the attached network and :meth:`call_later` for timers (which are also
    serviced by the control thread, preserving serialization).
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.network = None  # attached by Network.attach()
        self._inbox: Deque[Message] = deque()
        self._busy_until: float = 0.0
        self._draining: bool = False
        self._charged: float = 0.0
        self._handler_start: float = 0.0
        self.busy_time: float = 0.0  # cumulative control-thread busy seconds
        #: attached Tracer, or None (the common case — every hook site
        #: guards with a single `is not None` check, nothing is allocated)
        self._trace = None
        #: fused drain chains (REPRO_FUSED_CHAINS): when the next inbox
        #: message's service time is reachable via Simulator.try_advance,
        #: the drain loop continues inline instead of scheduling a fresh
        #: event per message. Wall-clock only; never active while traced.
        self._fused = fastpath.enabled_default()
        self._fused_check = fastpath.cross_check_enabled()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: "Actor", msg: Message) -> None:
        """Send ``msg`` to ``dst`` through the network.

        When called from inside a handler, the message departs once the
        handler's charged CPU time has elapsed.
        """
        if self.network is None:
            raise RuntimeError(f"actor {self.name} is not attached to a network")
        depart = max(self.sim._now, self._handler_start + self._charged)
        self.network.transmit(self, dst, msg, depart)

    def deliver(self, msg: Message) -> None:
        """Called by the network when a message arrives at this actor.

        An idle actor (empty inbox, nothing draining, not busy) handles
        the message inside the delivery event itself — equivalent to the
        drain event having been scheduled with the delivery's sequence
        number — instead of taking a queue round trip. Busy or draining
        actors enqueue as before, preserving FIFO handling.
        """
        if self._draining:
            self._inbox.append(msg)
            return
        sim = self.sim
        now = sim._now
        busy_until = self._busy_until
        if self._inbox or busy_until > now or not sim._running:
            # not idle — or delivered outside the event loop (e.g. a direct
            # kick-off before run()), where handlers must stay queued
            self._inbox.append(msg)
            self._draining = True
            sim.schedule_fast(busy_until if busy_until > now else now,
                              self._drain, ())
            return
        self._charged = 0.0
        self._handler_start = now
        if type(msg) is _Callback:
            msg.fn(*msg.args)
        else:
            self.handle(msg)
        cost = self._charged
        self._charged = 0.0
        self.busy_time += cost
        busy_until = self._busy_until = now + cost
        if self._trace is not None:
            self._trace.handler_span(
                self.name,
                msg.fn.__name__ if type(msg) is _Callback
                else type(msg).__name__,
                now, cost)
        if self._inbox:
            self._draining = True
            now = sim._now
            sim.schedule_fast(busy_until if busy_until > now else now,
                              self._drain, ())

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` on this actor's control thread after ``delay``."""
        sim = self.sim
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        sim.schedule_fast(sim._now + delay, self._timer_fire, (fn, args))

    def _timer_fire(self, fn: Callable, args: Tuple) -> None:
        """Run a timer callback, claiming an idle control thread directly.

        When the actor is idle at fire time — nothing queued, nothing
        draining, not busy — the callback runs inside the timer event
        itself (equivalent to the drain event having been scheduled with
        the timer's own sequence number), skipping the _Callback/deliver/
        drain round trip the busy case still takes. Handler semantics are
        identical: same charge accounting, same FIFO order with respect to
        queued messages (any pending message forces the fallback path).
        """
        sim = self.sim
        if self._draining or self._inbox or self._busy_until > sim._now:
            self.deliver(_Callback(fn, args))
            return
        if not self._timer_alive():
            return  # mirrors delivery to a crashed endpoint: dropped
        self._charged = 0.0
        start = self._handler_start = sim._now
        fn(*args)
        cost = self._charged
        self._charged = 0.0
        self.busy_time += cost
        busy_until = self._busy_until = start + cost
        if self._trace is not None:
            self._trace.handler_span(self.name, fn.__name__, start, cost)
        if self._inbox:
            # the callback delivered to itself synchronously; resume the
            # normal drain loop exactly as _drain would
            self._draining = True
            now = sim._now
            sim.schedule_fast(busy_until if busy_until > now else now,
                              self._drain, ())

    def _timer_alive(self) -> bool:
        """Whether timer callbacks may still run (crashed nodes drop them)."""
        return True

    # ------------------------------------------------------------------
    # Control-thread accounting
    # ------------------------------------------------------------------
    def charge(self, seconds: float) -> None:
        """Charge virtual CPU time to the current handler invocation."""
        if seconds < 0:
            raise ValueError(f"negative charge {seconds!r}")
        self._charged += seconds

    @property
    def control_queue_length(self) -> int:
        """Number of messages waiting for the control thread."""
        return len(self._inbox)

    def _drain(self) -> None:
        inbox = self._inbox
        if not inbox:
            self._draining = False
            return
        sim = self.sim
        # fused continuation: after each message, the next one is due at
        # the busy_until staircase step; when nothing else in the whole
        # simulation is due first, claim the clock via try_advance and keep
        # draining inside this one event. Each fused hop is accounted in
        # events_run, so fused and unfused runs report comparable counts.
        fused = self._fused and self._trace is None
        while True:
            msg = inbox.popleft()
            self._charged = 0.0
            start = self._handler_start = sim._now
            if type(msg) is _Callback:
                msg.fn(*msg.args)
            else:
                self.handle(msg)
            cost = self._charged
            self._charged = 0.0
            self.busy_time += cost
            busy_until = self._busy_until = start + cost
            if self._trace is not None:
                self._trace.handler_span(
                    self.name,
                    msg.fn.__name__ if type(msg) is _Callback
                    else type(msg).__name__,
                    start, cost)
            if not inbox:
                self._draining = False
                return
            now = sim._now
            next_time = busy_until if busy_until > now else now
            if fused and sim.try_advance(next_time):
                if self._fused_check:
                    # independent re-derivation from the raw queues: the
                    # unfused path would schedule a drain at next_time with
                    # the next seq, and that event runs next iff no zero-
                    # delay work is pending and every heap entry is due
                    # strictly later (an entry AT next_time has a smaller
                    # seq and would run first)
                    heap = sim._heap
                    assert sim._now == next_time and not sim._zero and (
                        not heap or heap[0][0] > next_time), \
                        "fused drain hop would reorder pending events"
                sim._events_run += 1
                continue
            sim.schedule_fast(next_time, self._drain, ())
            return

    # ------------------------------------------------------------------
    # Subclass API
    # ------------------------------------------------------------------
    def handle(self, msg: Message) -> None:
        """Handle one message. Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
