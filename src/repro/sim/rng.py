"""Deterministic random-number helpers.

All stochastic pieces of the reproduction (task-duration jitter, straggler
injection, data-dependent loop residuals) draw from named substreams so that
adding randomness to one subsystem never perturbs another — runs stay
reproducible bit-for-bit under refactoring.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class SeedSequence:
    """Derives independent, stable substreams from a root seed.

    ``seeds.stream("worker-3")`` always returns the same
    :class:`random.Random` stream for a given root seed, regardless of the
    order in which streams are requested.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the named substream (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def child(self, name: str) -> "SeedSequence":
        """Derive an independent child sequence (e.g. one per subsystem).

        ``seeds.child("chaos")`` always yields the same child for a given
        root seed, so a subsystem can own a whole namespace of substreams
        without colliding with — or perturbing — any sibling's draws.
        """
        digest = hashlib.sha256(
            f"{self.root_seed}/{name}".encode("utf-8")
        ).digest()
        return SeedSequence(int.from_bytes(digest[:8], "big"))
