"""Discrete-event simulation substrate.

Provides the virtual clock (:class:`Simulator`), serial-control-thread nodes
(:class:`Actor`), the latency/bandwidth network model (:class:`Network`),
deterministic RNG substreams (:class:`SeedSequence`), and run metrics
(:class:`Metrics`).
"""

from .actor import Actor, Message
from .engine import Event, SimulationError, Simulator
from .metrics import Interval, Metrics
from .network import Network
from .rng import SeedSequence

__all__ = [
    "Actor",
    "Event",
    "Interval",
    "Message",
    "Metrics",
    "Network",
    "SeedSequence",
    "SimulationError",
    "Simulator",
]
