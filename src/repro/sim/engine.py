"""Discrete-event simulation engine.

The engine maintains a virtual clock and an event heap. Everything in the
reproduction — controller, workers, driver, network — runs on top of this
engine so that control-plane costs measured in microseconds can be modeled
faithfully for clusters of 100 workers without needing the wall-clock
performance of the paper's C++ implementation.

Events are ``(time, seq, callback, args)`` tuples. ``seq`` is a monotonically
increasing tiebreaker so simultaneous events run in schedule order, which
keeps every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback. Cancellation is supported via :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from running; cancelled events are skipped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn}>"


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, my_callback, arg1)
        sim.run()
        assert sim.now >= 0.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of events executed so far."""
        return self._events_run

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < now={self._now!r}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next event. Returns ``False`` when no events remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.fn(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` more events have executed.

        When stopped by ``until``, the clock is advanced to ``until`` so that
        callers can interleave ``run(until=...)`` with external actions.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        budget = max_events
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    return
                if budget is not None:
                    if budget <= 0:
                        return
                    budget -= 1
                self.step()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
