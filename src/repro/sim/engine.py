"""Discrete-event simulation engine.

The engine maintains a virtual clock and an event heap. Everything in the
reproduction — controller, workers, driver, network — runs on top of this
engine so that control-plane costs measured in microseconds can be modeled
faithfully for clusters of 100 workers without needing the wall-clock
performance of the paper's C++ implementation.

Queue entries are plain tuples so ordering is resolved by C-level tuple
comparison; ``seq`` is a monotonically increasing tiebreaker so
simultaneous events run in schedule order, which keeps every simulation
fully deterministic. Two entry shapes share each queue — ``(time, seq,
Event)`` for cancellable events and ``(time, seq, fn, args)`` for the
fire-and-forget fast path — distinguished by length on pop; ``seq`` is
unique, so comparisons never reach the mismatched third element. Three
wall-clock fast paths keep the loop cheap:

* events scheduled at exactly the current virtual time bypass the heap and
  go to a FIFO *zero-delay queue* (the dominant case for actor control
  threads draining their inboxes);
* :meth:`Simulator.schedule_fast` skips the :class:`Event` wrapper
  entirely for callers that never cancel (timers, drains, deliveries);
* cancellation is lazy — a cancelled event stays queued and is skipped on
  pop, with a counter so the no-cancellation common case never scans;
* :meth:`Simulator.run` drains same-timestamp entries as a *cohort*: one
  clock write and one deadline check per distinct timestamp instead of per
  event. Within a cohort every heap entry precedes every zero-queue entry
  in seq order (heap entries at time T are pushed while the clock is still
  behind T; zero entries only exist once the clock reaches T), so the
  cohort drain preserves the exact per-event order of the unbatched loop;
* :meth:`Simulator.try_advance` lets an executing handler claim the clock
  up to a future instant when nothing else is due first, which is what
  allows actors to fuse whole message-drain chains into a single event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback. Cancellation is supported via :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, fn: Callable, args: Tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from running; cancelled events are skipped."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._cancelled += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn}>"


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, my_callback, arg1)
        sim.run()
        assert sim.now >= 0.5
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        #: entries are (time, seq, Event) or (time, seq, fn, args)
        self._heap: List[Tuple] = []
        #: entries due at exactly ``now`` (FIFO; all hold time == self._now)
        self._zero: Deque[Tuple] = deque()
        self._seq: int = 0
        self._events_run: int = 0
        self._running: bool = False
        self._halted: bool = False
        #: the active run()'s deadline (None outside run / no deadline);
        #: try_advance refuses to move the clock past it
        self._until: Optional[float] = None
        #: lazily-deleted (cancelled but still queued) event count
        self._cancelled: int = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total number of events executed so far."""
        return self._events_run

    def order_key(self) -> Tuple[float, int]:
        """``(now, seq)`` — a total order over scheduling decisions.

        Tracers stamp emitted events with this key so that simultaneous
        events export in execution order, without the engine paying any
        per-event callback cost when tracing is off.
        """
        return (self._now, self._seq)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < now={self._now!r}"
            )
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        event._sim = self
        if time == self._now:
            # zero-delay fast path: no heap insertion, plain FIFO. The
            # invariant that every queued entry has time == self._now holds
            # because the clock cannot advance while this queue is nonempty
            # (its entries are always among the earliest pending events).
            self._zero.append((time, self._seq, event))
        else:
            heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def schedule_fast(self, time: float, fn: Callable, args: Tuple) -> None:
        """Schedule a callback that will never be cancelled.

        Identical ordering semantics to :meth:`schedule_at`, but the queue
        entry is a bare ``(time, seq, fn, args)`` tuple — no :class:`Event`
        allocation — so hot internal callers (actor drains and timers,
        network deliveries, task-finish callbacks) stay cheap.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < now={self._now!r}"
            )
        self._seq += 1
        if time == self._now:
            self._zero.append((time, self._seq, fn, args))
        else:
            heapq.heappush(self._heap, (time, self._seq, fn, args))

    def schedule_fast_many(
        self, time: float, calls: Iterable[Tuple]
    ) -> None:
        """Bulk :meth:`schedule_fast`: never-cancelled callbacks sharing one
        absolute due ``time``, run in iteration order.

        ``calls`` yields ``(fn, args)`` pairs (args already a tuple). One
        queue-side branch and one ``self._seq`` write for the whole batch.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < now={self._now!r}"
            )
        seq = self._seq
        if time == self._now:
            append = self._zero.append
            for fn, args in calls:
                seq += 1
                append((time, seq, fn, args))
        else:
            heap = self._heap
            push = heapq.heappush
            for fn, args in calls:
                seq += 1
                push(heap, (time, seq, fn, args))
        self._seq = seq

    def schedule_many(
        self, delay: float, calls: Iterable[Tuple]
    ) -> List[Event]:
        """Batch-schedule callbacks ``delay`` seconds from now.

        ``calls`` yields ``(fn, *args)`` tuples. All events share one due
        time and run in iteration order. Returns the events in order.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        events: List[Event] = []
        seq = self._seq
        zero = time == self._now
        heap = self._heap
        for fn, *args in calls:
            seq += 1
            event = Event(time, seq, fn, tuple(args))
            event._sim = self
            if zero:
                self._zero.append((time, seq, event))
            else:
                heapq.heappush(heap, (time, seq, event))
            events.append(event)
        self._seq = seq
        return events

    def halt(self) -> None:
        """Stop the current :meth:`run` after the executing event returns.

        Lets an event handler (e.g. the driver finishing its program) end
        the run immediately instead of forcing the caller to single-step
        the simulation and poll for completion after every event.
        """
        self._halted = True

    def try_advance(self, time: float) -> bool:
        """Advance the clock to ``time`` iff nothing else is due first.

        The fusion primitive: an executing handler that knows its next
        action is due at ``time`` (e.g. an actor draining its inbox at its
        ``busy_until`` staircase) may claim the clock directly instead of
        scheduling a fresh event, **provided** the hop is unobservable —
        no zero-delay work pending, every heap entry strictly later than
        ``time`` (an entry *at* ``time`` was scheduled earlier, so its seq
        is smaller and it must run first), the run not halted, and ``time``
        within the active run's deadline. Returns whether the clock moved;
        on refusal the caller must fall back to normal scheduling. The
        caller accounts the fused hop via ``sim._events_run += 1`` so event
        counts stay comparable with the unfused path.
        """
        if self._halted or not self._running or self._zero:
            return False
        if time < self._now:
            return False
        until = self._until
        if until is not None and time > until:
            return False
        if self._cancelled:
            self._purge_cancelled_heads()
        heap = self._heap
        if heap and heap[0][0] <= time:
            return False
        self._now = time
        return True

    def _purge_cancelled_heads(self) -> None:
        """Drop lazily-deleted events from both queue heads."""
        zero = self._zero
        while zero:
            head = zero[0]
            if len(head) != 3 or not head[2].cancelled:
                break
            zero.popleft()
            self._cancelled -= 1
        heap = self._heap
        while heap:
            head = heap[0]
            if len(head) != 3 or not head[2].cancelled:
                break
            heapq.heappop(heap)
            self._cancelled -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if none remain."""
        if self._cancelled:
            self._purge_cancelled_heads()
        if self._zero:
            return self._now
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next event. Returns ``False`` when no events remain."""
        if self._cancelled:
            self._purge_cancelled_heads()
        zero, heap = self._zero, self._heap
        if zero:
            # a zero-queue entry is due at self._now; the heap head can tie
            # only at the same time, in which case the smaller seq wins
            if heap and heap[0][0] == self._now and heap[0][1] < zero[0][1]:
                entry = heapq.heappop(heap)
            else:
                entry = zero.popleft()
        elif heap:
            entry = heapq.heappop(heap)
        else:
            return False
        self._now = entry[0]
        self._events_run += 1
        if len(entry) == 4:
            entry[2](*entry[3])
        else:
            event = entry[2]
            event.fn(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` more events have executed.

        When stopped by ``until``, the clock is advanced to ``until`` so that
        callers can interleave ``run(until=...)`` with external actions.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._halted = False
        self._until = until
        budget = max_events
        try:
            if budget is None:
                # cohort-batched fast path: every entry due at one
                # timestamp drains as a single cohort — one clock write
                # and one deadline check per distinct time, not per event.
                # Heap entries at the cohort time always precede zero-queue
                # entries in seq order (see module docstring), so heap-then-
                # zero preserves the exact unbatched order; handlers may
                # append more zero-delay work mid-cohort (it correctly runs
                # after, in FIFO order) but can never add heap entries at
                # the current time (schedule routes those to the zero
                # queue). Cancelled events are skipped lazily on pop (a
                # cancelled head is the queue minimum, so skipping it never
                # changes an `until` stop decision — every live event is
                # due no earlier).
                zero, heap = self._zero, self._heap
                pop = heapq.heappop
                popleft = zero.popleft
                ran = 0
                try:
                    while True:
                        if zero:
                            t = self._now
                            if until is not None and t > until:
                                # the pending zero-delay work is due *after*
                                # the deadline; leave it queued, never
                                # rewind the clock
                                return
                        else:
                            # purge cancelled heads before reading the head
                            # time: the clock must not advance to (and the
                            # run must not stop at) an instant where only
                            # dead events were due
                            if self._cancelled and heap:
                                self._purge_cancelled_heads()
                            if not heap:
                                break
                            t = heap[0][0]
                            if until is not None and t > until:
                                if until > self._now:
                                    self._now = until
                                return
                            self._now = t
                        while heap and heap[0][0] == t:
                            entry = pop(heap)
                            if len(entry) == 4:
                                ran += 1
                                entry[2](*entry[3])
                            else:
                                event = entry[2]
                                if event.cancelled:
                                    self._cancelled -= 1
                                    continue
                                ran += 1
                                event.fn(*event.args)
                            if self._halted:
                                return
                        # a handler above may have claimed the clock via
                        # try_advance (only possible with zero empty and
                        # no heap entry at or before the new now), so any
                        # zero entry below is due at the *current* now
                        while zero:
                            entry = popleft()
                            if len(entry) == 4:
                                ran += 1
                                entry[2](*entry[3])
                            else:
                                event = entry[2]
                                if event.cancelled:
                                    self._cancelled -= 1
                                    continue
                                ran += 1
                                event.fn(*event.args)
                            if self._halted:
                                return
                finally:
                    self._events_run += ran
            else:
                # budgeted path: same fused pop-and-skip as above but one
                # event at a time, charging the budget only for live
                # events. Cancelled heads are purged once up front (never
                # twice as the old peek_time()+step() pairing did), so the
                # deadline/budget decisions below always see a live head.
                zero, heap = self._zero, self._heap
                pop = heapq.heappop
                ran = 0
                try:
                    while True:
                        if self._cancelled:
                            self._purge_cancelled_heads()
                        if zero:
                            now = self._now
                            if until is not None and now > until:
                                return
                            head = heap[0] if heap else None
                            if budget <= 0:
                                return
                            if (head is not None and head[0] == now
                                    and head[1] < zero[0][1]):
                                entry = pop(heap)
                            else:
                                entry = zero.popleft()
                        elif heap:
                            if until is not None and heap[0][0] > until:
                                if until > self._now:
                                    self._now = until
                                return
                            if budget <= 0:
                                return
                            entry = pop(heap)
                        else:
                            break
                        budget -= 1
                        self._now = entry[0]
                        ran += 1
                        if len(entry) == 4:
                            entry[2](*entry[3])
                        else:
                            event = entry[2]
                            event.fn(*event.args)
                        if self._halted:
                            return
                finally:
                    self._events_run += ran
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            self._until = None
