"""Env-flag gates for the fused event-loop fast paths.

The engine/actor/protocol fusion layers (cohort batching, inline drain
continuation via :meth:`Simulator.try_advance`, trusted-transport sender
bookkeeping elision, worker task-chain fusion) all change *wall-clock*
behavior only — virtual results are bit-identical by construction, and the
fused-off suite in CI proves the unfused path stays a complete drop-in
implementation.

Escape hatches mirror the compiled-template ones:

* ``REPRO_FUSED_CHAINS=0`` disables every fusion fast path (each run
  event takes its own trip through the queue, exactly as before);
* ``REPRO_FUSED_CROSS_CHECK=1`` turns on invariant assertions inside the
  fused loops (clock monotonicity, inbox-FIFO preservation) so seeded
  sweeps can cross-check the fused path against the plain one.
"""

from __future__ import annotations

import os


def enabled_default() -> bool:
    """Fusion on unless ``REPRO_FUSED_CHAINS`` disables it."""
    return os.environ.get("REPRO_FUSED_CHAINS", "1") not in (
        "", "0", "false", "no")


def cross_check_enabled() -> bool:
    return os.environ.get("REPRO_FUSED_CROSS_CHECK", "") not in ("", "0")
