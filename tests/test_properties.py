"""Property-based tests (hypothesis) on the core template machinery.

The central invariants:

1. **Generation soundness** — for any block and assignment, every read in a
   worker template is preceded (locally) by the write or receive providing
   it, or is a declared precondition; copy pairs are correctly matched.
2. **Closure** — applying a template's own directory delta to a state that
   satisfies its preconditions yields a state that still satisfies them
   (this is what makes auto-validation sound).
3. **Execution equivalence** — running a random program on the full
   simulated cluster (templates on, any worker count) produces exactly the
   values of a sequential interpreter.
4. **Patching** — for any directory state, the built patch repairs every
   validation violation.
"""

from typing import Dict, List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.controller_template import ControllerTemplate
from repro.core.patching import build_patch
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.core.validation import full_validate
from repro.core.worker_template import generate_worker_templates
from repro.nimbus.commands import CommandKind
from repro.nimbus.data import LogicalObject, ObjectDirectory
from repro.nimbus import NimbusCluster

from .helpers import combine_registry, reference_execute, simple_define

NUM_OBJECTS = 8
OIDS = list(range(1, NUM_OBJECTS + 1))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def random_block(draw, max_tasks=10, block_id="rand"):
    """A random basic block over a small object set (single-write tasks)."""
    num_tasks = draw(st.integers(1, max_tasks))
    tasks = []
    for _ in range(num_tasks):
        reads = draw(st.lists(st.sampled_from(OIDS), max_size=3, unique=True))
        write = draw(st.sampled_from(OIDS))
        tasks.append(LogicalTask("combine", read=tuple(reads), write=(write,)))
    # split into 1-3 stages
    num_stages = draw(st.integers(1, min(3, num_tasks)))
    bounds = sorted(draw(st.lists(
        st.integers(1, num_tasks - 1), max_size=num_stages - 1,
        unique=True))) if num_tasks > 1 else []
    stages, prev = [], 0
    for i, bound in enumerate(bounds + [num_tasks]):
        stages.append(StageSpec(f"s{i}", tasks[prev:bound]))
        prev = bound
    stages = [s for s in stages if s.tasks]
    return BlockSpec(block_id, stages)


@st.composite
def block_and_assignment(draw, num_workers=3):
    block = draw(random_block())
    assignment = [draw(st.integers(0, num_workers - 1))
                  for _ in range(block.num_tasks)]
    return block, assignment


# ---------------------------------------------------------------------------
# 1. Generation soundness
# ---------------------------------------------------------------------------
@given(block_and_assignment())
@settings(max_examples=120, deadline=None)
def test_generation_soundness(block_assignment):
    block, assignment = block_assignment
    template = ControllerTemplate.from_block(block, assignment)
    wts = generate_worker_templates(template, {oid: 8 for oid in OIDS})

    for worker, entries in wts.entries.items():
        provided: Dict[int, int] = {}  # oid -> providing local index
        for local_index, entry in enumerate(entries):
            assert entry.index == local_index
            for dep in entry.before:
                assert 0 <= dep < entry.index, "before sets point backward"
            for oid in entry.read:
                if oid in provided:
                    # a local provider exists and is ordered before (via
                    # before sets or transitively); at minimum it's earlier
                    assert provided[oid] < entry.index
                else:
                    assert oid in wts.preconditions.get(worker, frozenset()), (
                        f"read of {oid} on worker {worker} has no provider "
                        f"and is not a precondition")
            for oid in entry.write:
                provided[oid] = entry.index
            if entry.kind == CommandKind.SEND:
                recv = wts.entries[entry.dst_worker][entry.dst_index]
                assert recv.kind == CommandKind.RECV
                assert recv.src_worker == worker
                assert recv.write == entry.read

    # every controller-template task appears exactly once
    task_entries = [e for entries in wts.entries.values() for e in entries
                    if e.kind == CommandKind.TASK]
    assert len(task_entries) == template.num_tasks


# ---------------------------------------------------------------------------
# 2. Closure: preconditions are invariant under the template's own delta
# ---------------------------------------------------------------------------
@given(block_and_assignment())
@settings(max_examples=120, deadline=None)
def test_closure_invariant(block_assignment):
    block, assignment = block_assignment
    template = ControllerTemplate.from_block(block, assignment)
    wts = generate_worker_templates(template, {})
    directory = ObjectDirectory()
    for oid in OIDS:
        directory.register(LogicalObject(oid, f"o{oid}", 0, 8), home=0)
    # bring the state to one satisfying the preconditions (patch if needed)
    violations = full_validate(wts, directory)
    if violations:
        patch = build_patch(violations, directory, {})
        patch.apply_to_directory(directory)
    assert full_validate(wts, directory) == []
    # run the template several times: preconditions must keep holding
    for _ in range(3):
        wts.delta.apply(directory)
        assert full_validate(wts, directory) == []


# ---------------------------------------------------------------------------
# 3. Execution equivalence against the sequential interpreter
# ---------------------------------------------------------------------------
@given(
    blocks=st.lists(random_block(max_tasks=6), min_size=1, max_size=2),
    num_workers=st.integers(1, 3),
    iterations=st.integers(1, 3),
    seeds=st.lists(st.integers(1, 100), min_size=NUM_OBJECTS,
                   max_size=NUM_OBJECTS),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_cluster_matches_sequential_interpreter(blocks, num_workers,
                                                iterations, seeds):
    for i, block in enumerate(blocks):
        block.block_id = f"rand{i}"
    seed_block = BlockSpec("seedblk", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot=f"v{oid}")
        for oid in OIDS
    ])])
    params = {f"v{oid}": seeds[i] for i, oid in enumerate(OIDS)}
    schedule = [(seed_block, params)]
    for _ in range(iterations):
        for block in blocks:
            schedule.append((block, {}))
    expected = reference_execute(schedule)

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        for block, block_params in schedule:
            yield job.run(block, block_params)

    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(), use_templates=True)
    cluster.run_until_finished(max_seconds=1e6)
    directory = cluster.controller.directory
    for oid in OIDS:
        holders = directory.holders_of_latest(oid)
        assert holders
        value = cluster.workers[min(holders)].store.get(oid)
        assert value == expected.get(oid), (
            f"object {oid}: cluster={value} reference={expected.get(oid)}")


# ---------------------------------------------------------------------------
# 4. Patching repairs arbitrary violation sets
# ---------------------------------------------------------------------------
@given(
    writes=st.lists(
        st.tuples(st.sampled_from(OIDS), st.integers(0, 3)),
        max_size=12),
    copies=st.lists(
        st.tuples(st.sampled_from(OIDS), st.integers(0, 3)),
        max_size=12),
    block_assignment=block_and_assignment(num_workers=4),
)
@settings(max_examples=120, deadline=None)
def test_patch_repairs_any_state(writes, copies, block_assignment):
    block, assignment = block_assignment
    template = ControllerTemplate.from_block(block, assignment)
    wts = generate_worker_templates(template, {})
    directory = ObjectDirectory()
    for oid in OIDS:
        directory.register(LogicalObject(oid, f"o{oid}", 0, 8), home=0)
    for oid, worker in writes:
        directory.record_write(oid, worker)
    for oid, worker in copies:
        directory.record_copy(oid, worker)
    violations = full_validate(wts, directory)
    if violations:
        patch = build_patch(violations, directory, {})
        patch.apply_to_directory(directory)
    assert full_validate(wts, directory) == []


# ---------------------------------------------------------------------------
# 5. Migration equivalence: edits never change results
# ---------------------------------------------------------------------------
@given(
    block_assignment=block_and_assignment(num_workers=3),
    move_task=st.integers(0, 9),
    dst=st.integers(0, 2),
    seeds=st.lists(st.integers(1, 100), min_size=NUM_OBJECTS,
                   max_size=NUM_OBJECTS),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_migration_preserves_results(block_assignment, move_task, dst, seeds):
    from repro.core.edits import MigrationError
    from repro.nimbus import protocol as P

    block, assignment = block_assignment
    block.block_id = "mig"
    move_task = move_task % block.num_tasks
    seed_block = BlockSpec("seedblk", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot=f"v{oid}")
        for oid in OIDS
    ])])
    params = {f"v{oid}": seeds[i] for i, oid in enumerate(OIDS)}
    iterations = 6
    expected = reference_execute(
        [(seed_block, params)] + [(block, {})] * iterations)

    box = {}

    def migrate(controller):
        controller.edit_threshold = 1.0
        try:
            controller.migrate_tasks("mig", [(move_task, dst)])
        except MigrationError:
            pass  # not migratable (shared objects at destination): fine

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        yield job.run(seed_block, params)
        for i in range(iterations):
            if i == 4:
                box["cluster"].controller.deliver(P.ManagerDirective(migrate))
            yield job.run(block)

    cluster = NimbusCluster(3, program, registry=combine_registry(),
                            use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    directory = cluster.controller.directory
    for oid in OIDS:
        holders = directory.holders_of_latest(oid)
        value = cluster.workers[min(holders)].store.get(oid)
        assert value == expected.get(oid)
