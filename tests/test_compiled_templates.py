"""Compiled-plan equivalence: the compiled worker fast path is invisible.

The compiled template path (``repro.core.compiled``) replays pooled
command arenas instead of building fresh commands per instantiation. It
must be *semantics-preserving by construction*: every run — fault-free,
under chaos, or with mid-run edits/migration — produces bit-identical
virtual results to the interpreted path. These tests sweep 20 seeds of
randomized programs through both paths and compare everything observable:
the full metrics counter snapshot, virtual end time, events run, and the
final value of every data object.
"""

import pytest

from repro.apps import LRApp, LRSpec
from repro.chaos import PROFILES, FaultPlan
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    assert_identical as _assert_identical,
    cluster_observables,
    combine_registry,
    random_combine_schedule,
    simple_define,
    worker_values,
)

NUM_OBJECTS = 8
OIDS = list(range(1, NUM_OBJECTS + 1))
SEEDS = range(20)


def _run(seed, use_compiled, chaos_profile=None, num_workers=3):
    seed_block, params, blocks, iterations = random_combine_schedule(
        seed, OIDS)

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        yield job.run(seed_block, params)
        for _ in range(iterations):
            for block in blocks:
                yield job.run(block)

    kwargs = {}
    if chaos_profile is not None:
        kwargs["chaos_plan"] = FaultPlan.from_profile(chaos_profile,
                                                      seed=seed)
    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(),
                            use_compiled=use_compiled, **kwargs)
    cluster.run_until_finished(max_seconds=1e6)
    return cluster_observables(cluster, OIDS)


@pytest.mark.parametrize("seed", SEEDS)
def test_compiled_matches_interpreted(seed):
    _assert_identical(_run(seed, True), _run(seed, False), f"seed {seed}")


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", [3, 11])
def test_compiled_matches_interpreted_under_chaos(profile, seed):
    _assert_identical(
        _run(seed, True, chaos_profile=profile),
        _run(seed, False, chaos_profile=profile),
        f"seed {seed} profile {profile}",
    )


def test_cross_check_mode_validates_every_instantiation(monkeypatch):
    """REPRO_COMPILED_CROSS_CHECK re-derives each instantiation through
    the interpreted path and compares; a clean run means they agreed."""
    monkeypatch.setenv("REPRO_COMPILED_CROSS_CHECK", "1")
    _assert_identical(_run(7, True), _run(7, False), "cross-check seed 7")


# ---------------------------------------------------------------------------
# The fig10 path: mid-run migration edits the installed templates; the
# compiled plans must be invalidated, recompiled, and still bit-identical.
# ---------------------------------------------------------------------------
def _run_lr_with_migrations(use_compiled, num_workers=4, iterations=12):
    spec = LRSpec(num_workers=num_workers, iterations=iterations)
    app = LRApp(spec)
    box = {}
    state = {"round": 0}

    def migrate(controller):
        offset = state["round"]
        state["round"] += 1
        moves = [(offset % spec.num_partitions,
                  (offset + num_workers // 2) % num_workers)]
        controller.migrate_tasks("lr.iteration", moves)

    def program(job):
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        for i in range(iterations):
            if i in (6, 9):  # after templates are installed (warm-up is 3)
                box["cluster"].controller.deliver(P.ManagerDirective(migrate))
            yield job.run(app.iteration_block, {"step": spec.step_size})

    cluster = NimbusCluster(num_workers, program, registry=app.registry,
                            use_compiled=use_compiled)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


@pytest.mark.parametrize("seed", range(3))
def test_compiled_matches_interpreted_across_migration(seed):
    # seed only varies the run pairing; the LR program is deterministic,
    # so one pair suffices per seed to catch pooling-state carryover
    compiled = _run_lr_with_migrations(True, num_workers=4 + seed)
    interpreted = _run_lr_with_migrations(False, num_workers=4 + seed)
    assert compiled.metrics.count("edits_applied") > 0
    oids = [obj.oid for obj in compiled.controller.directory.objects()]
    _assert_identical(
        (compiled.metrics.counters_snapshot(), compiled.sim.now,
         compiled.sim.events_run, worker_values(compiled, oids)),
        (interpreted.metrics.counters_snapshot(), interpreted.sim.now,
         interpreted.sim.events_run, worker_values(interpreted, oids)),
        f"migration run, {4 + seed} workers",
    )


def test_migration_invalidates_and_recompiles_plans():
    cluster = _run_lr_with_migrations(True)
    recompiles = sum(w.plans_compiled for w in cluster.workers.values())
    workers = len(cluster.workers)
    # every worker compiles its half once; the two edit rounds force
    # recompiles on the edited workers, so the total must exceed one-per-worker
    assert recompiles > workers, (
        f"expected plan recompiles after migration edits, got "
        f"{recompiles} compilations across {workers} workers"
    )
