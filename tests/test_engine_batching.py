"""Engine cohort batching, ``try_advance``, and budget-path regressions.

The cohort-batched ``run()`` loop must be observably identical to the
one-event-per-iteration loop it replaced: the same execution order (seq
order within a timestamp, whichever queue the entries came from), the same
``halt()``/``until=`` stop points, and the same ``events_run`` accounting —
with cancellations interleaved anywhere. The property tests below build a
random scheduling script, record the ``(time, seq)`` key of every entry at
creation, and check the engine executes exactly the live entries in sorted
key order on every drive path (batched run, step loop, budgeted run).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.harness import _engine_bench_chunk, bench_engine_events
from repro.sim.engine import SimulationError, Simulator

TIMES = [0.0, 0.1, 0.1, 0.2, 0.5]


# ---------------------------------------------------------------------------
# Scripted scenarios: ops are (kind, time_index, payload) tuples
# ---------------------------------------------------------------------------
@st.composite
def scripts(draw):
    """A random scheduling script over a handful of timestamps.

    Op kinds: 0 = schedule (cancellable Event), 1 = schedule_fast,
    2 = schedule_fast_many batch of 2, 3 = cancel an earlier Event,
    4 = schedule an Event whose handler schedules a zero-delay follow-up
    (exercises mid-cohort appends to the zero queue).
    """
    n = draw(st.integers(3, 14))
    ops = []
    for _ in range(n):
        kind = draw(st.integers(0, 4))
        t = draw(st.integers(0, len(TIMES) - 1))
        target = draw(st.integers(0, 40)) if kind == 3 else None
        ops.append((kind, t, target))
    return ops


def _apply_script(sim, ops, order):
    """Run ``ops`` against ``sim``; return the expected execution order.

    Every scheduled entry's label is recorded with the ``(time, seq)`` key
    the engine assigned it (``sim._seq`` right after the call); the
    expectation is simply the live labels sorted by that key. Follow-up
    work scheduled from inside handlers is appended to the expectation at
    fire time by the handler itself, which keeps the oracle independent of
    any engine drain-order choice beyond the (time, seq) contract.
    """
    entries = []  # (time, seq, label, event_or_None)
    cancellable = []

    def fire(label):
        order.append(label)

    def fire_and_spawn(label):
        order.append(label)
        # zero-delay follow-up lands at (now, next seq): strictly after
        # everything already queued at this instant
        sim.schedule_fast(sim.now, fire, (f"{label}+",))
        entries.append((sim.now, sim._seq, f"{label}+", None))

    for i, (kind, t_idx, target) in enumerate(ops):
        time = TIMES[t_idx]
        label = f"op{i}"
        if kind == 0:
            event = sim.schedule_at(time, fire, label)
            entries.append((time, sim._seq, label, event))
            cancellable.append((len(entries) - 1, event))
        elif kind == 1:
            sim.schedule_fast(time, fire, (label,))
            entries.append((time, sim._seq, label, None))
        elif kind == 2:
            sim.schedule_fast_many(
                time, [(fire, (f"{label}a",)), (fire, (f"{label}b",))])
            entries.append((time, sim._seq - 1, f"{label}a", None))
            entries.append((time, sim._seq, f"{label}b", None))
        elif kind == 3:
            if cancellable:
                idx, event = cancellable[target % len(cancellable)]
                event.cancel()
                entries[idx] = None
        else:
            event = sim.schedule_at(time, fire_and_spawn, label)
            entries.append((time, sim._seq, label, event))
            cancellable.append((len(entries) - 1, event))
    return entries


def _expected(entries):
    live = [e for e in entries if e is not None]
    live.sort(key=lambda e: (e[0], e[1]))
    return [label for _t, _s, label, _e in live]


@settings(max_examples=200, deadline=None)
@given(scripts())
def test_cohort_drain_executes_in_time_seq_order(ops):
    sim = Simulator()
    order = []
    entries = _apply_script(sim, ops, order)
    sim.run()
    assert order == _expected(entries)
    assert sim.events_run == len(order)


@settings(max_examples=200, deadline=None)
@given(scripts())
def test_batched_run_matches_step_loop(ops):
    batched, stepped = Simulator(), Simulator()
    order_a, order_b = [], []
    _apply_script(batched, ops, order_a)
    _apply_script(stepped, ops, order_b)
    batched.run()
    while stepped.step():
        pass
    assert order_a == order_b
    assert batched.events_run == stepped.events_run
    assert batched.now == stepped.now


@settings(max_examples=200, deadline=None)
@given(scripts(), st.sampled_from(TIMES + [0.05, 0.3, 1.0]))
def test_until_stop_identical_with_batching_on_and_off(ops, until):
    batched, stepped = Simulator(), Simulator()
    order_a, order_b = [], []
    _apply_script(batched, ops, order_a)
    _apply_script(stepped, ops, order_b)
    batched.run(until=until)
    while True:
        nxt = stepped.peek_time()
        if nxt is None or nxt > until:
            break
        stepped.step()
    assert order_a == order_b
    assert batched.events_run == stepped.events_run
    assert batched.now == max(until, stepped.now)


class _HaltingRecorder(list):
    """Execution log that halts its simulator when a chosen label fires."""

    def __init__(self):
        super().__init__()
        self.sim = None
        self.victim = None

    def append(self, label):
        super().append(label)
        if label == self.victim:
            self.sim.halt()


@settings(max_examples=150, deadline=None)
@given(scripts(), st.integers(0, 12))
def test_halt_stops_on_same_event_with_batching_on_and_off(ops, halt_at):
    def build(sim, order):
        order.sim = sim
        entries = _apply_script(sim, ops, order)
        live = _expected(entries)
        if not live:
            return None
        order.victim = live[halt_at % len(live)]
        return order.victim

    batched, stepped = Simulator(), Simulator()
    order_a, order_b = _HaltingRecorder(), _HaltingRecorder()
    victim_a = build(batched, order_a)
    victim_b = build(stepped, order_b)
    assert victim_a == victim_b
    batched.run()
    # the reference: single-event budget honours halt the same way
    while not stepped._halted and stepped.peek_time() is not None:
        stepped.run(max_events=1)
    assert order_a == order_b
    if victim_a is not None:
        assert order_a[-1] == victim_a
    assert batched.events_run == stepped.events_run


# ---------------------------------------------------------------------------
# Budget path: events_run parity with the no-budget loop (the old
# peek_time()+step() pairing purged cancelled heads twice per event)
# ---------------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(scripts())
def test_events_run_matches_between_budget_and_no_budget_paths(ops):
    plain, budgeted = Simulator(), Simulator()
    order_a, order_b = [], []
    _apply_script(plain, ops, order_a)
    _apply_script(budgeted, ops, order_b)
    plain.run()
    budgeted.run(max_events=10_000)
    assert order_a == order_b
    assert plain.events_run == budgeted.events_run
    assert plain.now == budgeted.now


@settings(max_examples=150, deadline=None)
@given(scripts(), st.integers(1, 6))
def test_budget_path_resumes_to_identical_totals(ops, chunk):
    plain, chunked = Simulator(), Simulator()
    order_a, order_b = [], []
    _apply_script(plain, ops, order_a)
    _apply_script(chunked, ops, order_b)
    plain.run()
    while chunked.peek_time() is not None:
        before = chunked.events_run
        chunked.run(max_events=chunk)
        if chunked.events_run == before:
            break  # nothing live left within the budget
    assert order_a == order_b
    assert plain.events_run == chunked.events_run


def test_budget_purges_cancelled_heads_once_and_counts_live_only():
    sim = Simulator()
    seen = []
    cancelled = [sim.schedule(0.1, seen.append, i) for i in range(3)]
    for event in cancelled:
        event.cancel()
    sim.schedule(0.2, seen.append, "live")
    sim.run(max_events=1)
    assert seen == ["live"]
    assert sim.events_run == 1
    assert sim._cancelled == 0


# ---------------------------------------------------------------------------
# try_advance: the fusion primitive
# ---------------------------------------------------------------------------
def test_try_advance_refuses_outside_run():
    sim = Simulator()
    assert not sim.try_advance(1.0)
    assert sim.now == 0.0


def test_try_advance_claims_clock_when_nothing_due_first():
    sim = Simulator()
    log = []

    def handler():
        assert sim.try_advance(0.5)
        log.append(sim.now)

    sim.schedule_fast(0.1, handler, ())
    sim.schedule_fast(0.9, log.append, (None,))
    sim.run()
    assert log[0] == 0.5
    assert sim.now == 0.9


def test_try_advance_refuses_pending_zero_work_and_earlier_heap():
    sim = Simulator()
    results = {}

    def handler():
        sim.schedule_fast(sim.now, lambda: None, ())
        results["zero_pending"] = sim.try_advance(0.5)

    def handler2():
        # heap holds an entry at 0.4 <= 0.5: refuse (it must run first)
        results["heap_earlier"] = sim.try_advance(0.5)
        results["heap_equal"] = sim.try_advance(0.4)

    sim.schedule_fast(0.1, handler, ())
    sim.schedule_fast(0.2, handler2, ())
    sim.schedule_fast(0.4, lambda: None, ())
    sim.run()
    assert results == {"zero_pending": False, "heap_earlier": False,
                       "heap_equal": False}


def test_try_advance_purges_cancelled_heap_head():
    sim = Simulator()
    results = {}
    blocker = sim.schedule(0.3, lambda: None)

    def handler():
        blocker.cancel()
        results["after_cancel"] = sim.try_advance(0.5)

    sim.schedule_fast(0.1, handler, ())
    sim.schedule_fast(0.9, lambda: None, ())
    sim.run()
    assert results == {"after_cancel": True}


def test_try_advance_respects_until_deadline():
    sim = Simulator()
    results = {}

    def handler():
        results["past"] = sim.try_advance(0.8)
        results["within"] = sim.try_advance(0.4)

    sim.schedule_fast(0.1, handler, ())
    sim.run(until=0.5)
    assert results == {"past": False, "within": True}
    assert sim.now == 0.5


def test_try_advance_never_rewinds():
    sim = Simulator()
    results = {}

    def handler():
        results["behind"] = sim.try_advance(0.05)

    sim.schedule_fast(0.1, handler, ())
    sim.run()
    assert results == {"behind": False}


# ---------------------------------------------------------------------------
# schedule_fast_many
# ---------------------------------------------------------------------------
def test_schedule_fast_many_orders_against_singles():
    sim = Simulator()
    order = []
    sim.schedule_fast(1.0, order.append, ("single0",))
    sim.schedule_fast_many(1.0, [(order.append, ("batch0",)),
                                 (order.append, ("batch1",))])
    sim.schedule_fast(1.0, order.append, ("single1",))
    sim.run()
    assert order == ["single0", "batch0", "batch1", "single1"]


def test_schedule_fast_many_zero_delay_routes_to_fifo():
    sim = Simulator()
    order = []

    def spawn():
        sim.schedule_fast_many(sim.now, [(order.append, ("z0",)),
                                         (order.append, ("z1",))])
        order.append("spawn")

    sim.schedule_fast(0.2, spawn, ())
    sim.run()
    assert order == ["spawn", "z0", "z1"]
    assert sim.events_run == 3


def test_schedule_fast_many_rejects_past_times():
    sim = Simulator()
    sim.schedule_fast(1.0, lambda: None, ())
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_fast_many(0.5, [(lambda: None, ())])


# ---------------------------------------------------------------------------
# bench_engine_events isolation (perf/harness.py regression)
# ---------------------------------------------------------------------------
def test_engine_bench_chunk_counts_exactly_its_own_events():
    # a fresh simulator per chunk: the count is exactly 2*batch, every
    # time — prior chunks (or any warm-up) can never leak into it
    assert _engine_bench_chunk(50) == 100
    assert _engine_bench_chunk(50) == 100
    assert _engine_bench_chunk(1) == 2


def test_bench_engine_events_reports_positive_rate():
    assert bench_engine_events(batch=50) > 0
