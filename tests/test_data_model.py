"""Unit tests for the mutable-object data model."""

import pytest

from repro.nimbus.data import (
    LogicalObject,
    ObjectDirectory,
    ObjectStore,
    PartitionPlacement,
)


def make_directory():
    directory = ObjectDirectory()
    directory.register(LogicalObject(1, "x", 0, 100), home=0)
    directory.register(LogicalObject(2, "x", 1, 100), home=1)
    return directory


class TestObjectDirectory:
    def test_registration_initial_state(self):
        directory = make_directory()
        assert directory.latest_version(1) == 0
        assert directory.holders_of_latest(1) == [0]
        assert directory.is_fresh(1, 0)
        assert not directory.is_fresh(1, 1)
        assert 1 in directory and 99 not in directory

    def test_write_bumps_version_and_narrows_holders(self):
        directory = make_directory()
        directory.record_copy(1, 1)
        assert sorted(directory.holders_of_latest(1)) == [0, 1]
        version = directory.record_write(1, 1)
        assert version == 1
        assert directory.latest_version(1) == 1
        assert directory.holders_of_latest(1) == [1]
        assert not directory.is_fresh(1, 0)

    def test_copy_spreads_latest(self):
        directory = make_directory()
        directory.record_write(1, 0)
        directory.record_copy(1, 1)
        assert directory.is_fresh(1, 1)

    def test_stale_copy_not_latest(self):
        directory = make_directory()
        directory.record_copy(1, 1)  # version 0 copy
        directory.record_write(1, 0)  # version 1 at worker 0
        assert directory.holders_of_latest(1) == [0]
        assert directory.holds_any(1, 1)

    def test_snapshot_restore_roundtrip(self):
        directory = make_directory()
        directory.record_write(1, 0)
        snap = directory.snapshot()
        directory.record_write(1, 1)
        directory.record_copy(2, 0)
        directory.restore(snap)
        assert directory.latest_version(1) == 1
        assert directory.holders_of_latest(1) == [0]
        assert directory.holders_of_latest(2) == [1]

    def test_snapshot_is_deep(self):
        directory = make_directory()
        snap = directory.snapshot()
        directory.record_write(1, 1)
        latest, holders = snap
        assert latest[1] == 0
        assert holders[1] == {0: 0}

    def test_evict_worker(self):
        directory = make_directory()
        directory.record_copy(1, 1)
        directory.evict_worker(0)
        assert directory.holders_of_latest(1) == [1]

    def test_apply_block_delta(self):
        directory = make_directory()
        directory.apply_block_delta(1, 3, [0, 1])
        assert directory.latest_version(1) == 3
        assert sorted(directory.holders_of_latest(1)) == [0, 1]

    def test_unregister(self):
        directory = make_directory()
        directory.unregister(1)
        assert 1 not in directory


class TestObjectStore:
    def test_put_get(self):
        store = ObjectStore()
        store.create(1)
        assert store.get(1) is None
        store.put(1, "payload")
        assert store.get(1) == "payload"
        assert 1 in store

    def test_destroy(self):
        store = ObjectStore()
        store.put(1, "x")
        store.destroy(1)
        assert 1 not in store
        assert store.get(1) is None

    def test_live_objects(self):
        store = ObjectStore()
        store.create(1)
        store.create(5)
        assert sorted(store.live_objects()) == [1, 5]


class TestPartitionPlacement:
    def test_round_robin_default(self):
        placement = PartitionPlacement([0, 1, 2])
        homes = [placement.place(oid) for oid in range(6)]
        assert homes == [0, 1, 2, 0, 1, 2]

    def test_explicit_placement(self):
        placement = PartitionPlacement([0, 1])
        assert placement.place(7, worker=1) == 1
        assert placement.home(7) == 1

    def test_migrate(self):
        placement = PartitionPlacement([0, 1])
        placement.place(1, worker=0)
        placement.migrate(1, 1)
        assert placement.home(1) == 1

    def test_objects_on(self):
        placement = PartitionPlacement([0, 1])
        placement.place(1, worker=0)
        placement.place(2, worker=1)
        placement.place(3, worker=0)
        assert sorted(placement.objects_on(0)) == [1, 3]
