"""Unit tests for the driver: backpressure, directives, replay."""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster

from .helpers import combine_registry, simple_define


def one_task_block(block_id="blk", oid=1):
    return BlockSpec(block_id, [StageSpec("s", [
        LogicalTask("combine", read=(), write=(oid,))])])


def define_payload():
    return simple_define({1: ("x", 8), 2: ("y", 8)})


def test_backpressure_limits_inflight():
    """Posting far more blocks than max_inflight keeps the submitted
    window bounded; everything still completes, in order."""
    block = one_task_block()
    seen_inflight = []

    def program(job):
        yield job.define(define_payload())
        for _ in range(20):
            job.post(block)
        yield job.drain()

    cluster = NimbusCluster(1, program, registry=combine_registry())
    driver = cluster.driver
    original = driver._dispatch_request

    def spying(request_id, blk, params):
        seen_inflight.append(driver._outstanding - len(driver._backlog))
        original(request_id, blk, params)

    driver._dispatch_request = spying
    cluster.run_until_finished(max_seconds=1e5)
    assert max(seen_inflight) <= driver.max_inflight
    assert len(driver.iteration_log) == 20
    # iteration_log records (request, submit, complete) per request
    request_ids = [r for r, _s, _e in driver.iteration_log]
    assert request_ids == sorted(request_ids)


def test_blocking_run_returns_results_in_program_order():
    block_a = BlockSpec("a", [StageSpec("s", [
        LogicalTask("seed", read=(), write=(1,), param_slot="v")])],
        returns={"x": 1})
    block_b = BlockSpec("b", [StageSpec("s", [
        LogicalTask("combine", read=(1,), write=(2,))])], returns={"y": 2})
    order = []

    def program(job):
        yield job.define(define_payload())
        res_a = yield job.run(block_a, {"v": 9})
        order.append(("a", res_a["x"]))
        res_b = yield job.run(block_b)
        order.append(("b", res_b["y"]))

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e5)
    assert order[0] == ("a", 9)
    assert order[1][0] == "b" and order[1][1] is not None


def test_enable_templates_mid_run():
    block = one_task_block()

    def program(job):
        job.disable_templates()
        yield job.define(define_payload())
        for _ in range(3):
            yield job.run(block)
        job.enable_templates()
        for _ in range(6):
            yield job.run(block)

    cluster = NimbusCluster(1, program, registry=combine_registry(),
                            use_templates=False)
    cluster.run_until_finished(max_seconds=1e5)
    metrics = cluster.metrics
    assert metrics.count("controller_templates_installed") == 1
    assert metrics.count("template_instantiations") == 5
    assert metrics.count("auto_validations") >= 1


def test_unknown_directive_rejected():
    def program(job):
        yield ("frobnicate",)

    cluster = NimbusCluster(1, program, registry=combine_registry())
    with pytest.raises(ValueError):
        cluster.run_until_finished(max_seconds=1e5)


def test_empty_program_finishes_immediately():
    cluster = NimbusCluster(1, lambda job: iter(()),
                            registry=combine_registry())
    job = cluster.run_until_finished(max_seconds=1e5)
    assert job.finished
    assert job.finish_time == cluster.sim.now


def test_drain_with_nothing_outstanding_is_noop():
    def program(job):
        yield job.define(define_payload())
        yield job.drain()
        yield job.drain()

    cluster = NimbusCluster(1, program, registry=combine_registry())
    assert cluster.run_until_finished(max_seconds=1e5).finished


def test_replay_mismatch_detected():
    """A driver program that submits different blocks on replay is
    non-deterministic; the driver must fail loudly, not corrupt state."""
    from repro.nimbus import protocol as P

    block = one_task_block()
    other = one_task_block(block_id="other", oid=2)

    def program(job):
        yield job.define(define_payload())
        yield job.run(block)

    cluster = NimbusCluster(1, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e5)
    driver = cluster.driver
    # simulate a recovery whose history doesn't match the program
    driver._gen = (d for d in [("run", other, {})])
    driver._replay = [("blk", {})]
    driver._replay_cursor = 0
    with pytest.raises(RuntimeError, match="non-deterministic"):
        driver._advance(None)


def test_iteration_log_timestamps_are_ordered():
    block = one_task_block()

    def program(job):
        yield job.define(define_payload())
        for _ in range(4):
            yield job.run(block)

    cluster = NimbusCluster(1, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e5)
    for _request, submit, complete in cluster.driver.iteration_log:
        assert submit <= complete
