"""Unit tests for actors: serial control threads and charge accounting."""

import pytest

from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.network import Network


class Ping(Message):
    def __init__(self, tag, cost=0.0):
        self.tag = tag
        self.cost = cost
        self.size_bytes = 0


class Recorder(Actor):
    def __init__(self, sim, name="recorder"):
        super().__init__(sim, name)
        self.log = []

    def handle(self, msg):
        self.log.append((round(self.sim.now, 9), msg.tag))
        self.charge(msg.cost)


class Echo(Actor):
    def __init__(self, sim, peer=None):
        super().__init__(sim, "echo")
        self.peer = peer

    def handle(self, msg):
        self.charge(0.001)
        self.send(self.peer, Ping(f"echo-{msg.tag}"))


def make_pair(latency=0.0):
    sim = Simulator()
    net = Network(sim, latency=latency, bandwidth=1e12)
    a = net.attach(Recorder(sim, "a"))
    b = net.attach(Recorder(sim, "b"))
    return sim, net, a, b


def test_messages_handled_serially_with_charges():
    sim, net, a, _b = make_pair()
    for i in range(3):
        a.deliver(Ping(i, cost=0.1))
    sim.run()
    times = [t for t, _ in a.log]
    # each handler starts when the previous handler's charge elapses
    assert times == pytest.approx([0.0, 0.1, 0.2])
    assert a.busy_time == pytest.approx(0.3)


def test_charge_accumulates_within_handler():
    sim = Simulator()

    class Multi(Actor):
        def handle(self, msg):
            self.charge(0.05)
            self.charge(0.07)

    actor = Multi(sim, "multi")
    actor.deliver(Ping(0))
    sim.run()
    assert actor.busy_time == pytest.approx(0.12)


def test_negative_charge_rejected():
    sim = Simulator()

    class Bad(Actor):
        def handle(self, msg):
            self.charge(-1.0)

    actor = Bad(sim, "bad")
    actor.deliver(Ping(0))
    with pytest.raises(ValueError):
        sim.run()


def test_sends_depart_after_accumulated_charge():
    sim = Simulator()
    net = Network(sim, latency=0.0, bandwidth=1e12)
    recorder = net.attach(Recorder(sim))
    echo = net.attach(Echo(sim, peer=recorder))
    echo.deliver(Ping("x"))
    sim.run()
    # echo charges 1ms before sending; zero network latency
    assert recorder.log[0][0] == pytest.approx(0.001, abs=1e-9)


def test_call_later_runs_on_control_thread():
    sim = Simulator()
    seen = []

    class Timed(Actor):
        def handle(self, msg):
            pass

        def tick(self, tag):
            seen.append((self.sim.now, tag))

    actor = Timed(sim, "timed")
    actor.call_later(0.5, actor.tick, "t")
    sim.run()
    assert seen == [(pytest.approx(0.5), "t")]


def test_call_later_waits_behind_busy_control_thread():
    sim = Simulator()
    seen = []

    class Busy(Actor):
        def handle(self, msg):
            self.charge(1.0)

        def tick(self):
            seen.append(self.sim.now)

    actor = Busy(sim, "busy")
    actor.deliver(Ping(0))
    actor.call_later(0.1, actor.tick)
    sim.run()
    # the timer fires at 0.1 but the control thread is busy until 1.0
    assert seen == [pytest.approx(1.0)]


def test_send_requires_network():
    sim = Simulator()
    lonely = Recorder(sim, "lonely")
    with pytest.raises(RuntimeError):
        lonely.send(lonely, Ping(0))


def test_control_queue_length():
    sim, _net, a, _b = make_pair()
    a.deliver(Ping(0, cost=1.0))
    a.deliver(Ping(1))
    a.deliver(Ping(2))
    sim.run(until=0.5)
    assert a.control_queue_length == 2
    sim.run()
    assert a.control_queue_length == 0
