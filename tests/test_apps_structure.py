"""Structural unit tests for the application builders (no cluster runs)."""

import pytest

from repro.apps import (
    KMeansApp,
    KMeansSpec,
    LRApp,
    LRSpec,
    ReductionTree,
    Variables,
    WaterSpec,
    block_home,
    make_cluster_data,
    make_regression_data,
)
from repro.apps.water import WaterApp
from repro.core.spec import LogicalTask


class TestVariables:
    def test_partitioned_allocation(self):
        variables = Variables()
        oids = variables.partitioned("x", 4, 100, lambda p: p % 2)
        assert len(oids) == 4
        assert len(set(oids)) == 4
        homes = [d[4] for d in variables.definitions]
        assert homes == [0, 1, 0, 1]
        assert variables.oids("x") == oids

    def test_scalar(self):
        variables = Variables()
        oid = variables.scalar("s", 8, home=3)
        assert variables.definitions[0] == (oid, "s", 0, 8, 3)

    def test_distinct_variables_distinct_oids(self):
        variables = Variables()
        a = variables.partitioned("a", 3, 1)
        b = variables.partitioned("b", 3, 1)
        assert not (set(a) & set(b))

    def test_block_home(self):
        home = block_home(4)
        assert [home(p) for p in (0, 3, 4, 11)] == [0, 0, 1, 2]


class TestDatasets:
    def test_regression_data_separable(self):
        parts, truth = make_regression_data(2, 50, 5, seed=1, noise=0.0)
        assert len(parts) == 2
        x, y = parts[0]
        assert x.shape == (50, 5)
        assert set(y.tolist()) <= {0.0, 1.0}
        # labels consistent with the ground truth
        assert ((x @ truth > 0) == (y > 0.5)).all()

    def test_regression_data_with_shared_truth(self):
        _parts, truth = make_regression_data(1, 10, 4, seed=1)
        parts2, truth2 = make_regression_data(1, 10, 4, seed=2, truth=truth)
        assert (truth == truth2).all()

    def test_cluster_data_near_centers(self):
        import numpy as np
        parts, centers = make_cluster_data(2, 100, 3, 4, seed=0, spread=0.05)
        points = np.vstack(parts)
        dists = np.linalg.norm(
            points[:, None, :] - centers[None, :, :], axis=2).min(axis=1)
        assert dists.mean() < 0.2


class TestReductionTree:
    def make(self, num_workers=9, leaves_per_worker=2):
        variables = Variables()
        n_leaves = num_workers * leaves_per_worker
        leaves = variables.partitioned("leaf", n_leaves, 8,
                                       block_home(leaves_per_worker))
        tree = ReductionTree(variables, "sum", leaves,
                             block_home(leaves_per_worker), num_workers, 8)
        return tree, variables

    def test_group_structure(self):
        tree, _v = self.make(num_workers=9)
        assert tree.group_size == 3
        assert len(tree.groups) == 3
        assert tree.groups[0] == [0, 1, 2]

    def test_stages_cover_all_leaves(self):
        tree, _v = self.make()
        stages = tree.stages("local", "group", "root")
        local_stage = stages[0]
        covered = set()
        for task in local_stage.tasks:
            covered.update(task.read)
        assert covered == set(tree.leaf_oids)

    def test_root_reads_all_groups(self):
        tree, _v = self.make()
        stages = tree.stages("local", "group", "root",
                             extra_root_reads=(999,),
                             extra_root_writes=(998,),
                             root_param_slot="alpha")
        root = stages[2].tasks[0]
        assert set(tree.group_oids) <= set(root.read)
        assert 999 in root.read
        assert root.write == (tree.result_oid, 998)
        assert root.param_slot == "alpha"

    def test_single_worker_degenerate_tree(self):
        tree, _v = self.make(num_workers=1)
        stages = tree.stages("local", "group", "root")
        assert len(stages[0].tasks) == 1
        assert len(stages[1].tasks) == 1


class TestSpecs:
    def test_lr_spec_strong_scaling(self):
        small = LRSpec(num_workers=20)
        large = LRSpec(num_workers=100)
        # same data split finer: more tasks, each shorter
        assert large.num_partitions == 5 * small.num_partitions
        assert large.gradient_task_s == pytest.approx(
            small.gradient_task_s / 5)

    def test_kmeans_stats_bytes(self):
        spec = KMeansSpec(num_workers=2, num_clusters=10, dim=4)
        assert spec.stats_bytes == 8 * 10 * 5

    def test_lr_app_block_structure(self):
        app = LRApp(LRSpec(num_workers=2, data_bytes=1e9,
                           partitions_per_worker=3))
        block = app.iteration_block
        assert block.num_tasks == 6 + 2 + 2 + 1  # grads, local, group, root
        assert app.iteration_block.returns == {"grad_norm": app.tree.result_oid}
        # the same block object is reused across iterations: the template
        # contract requires a stable structure
        assert block.structure_signature() == app.iteration_block.structure_signature()

    def test_kmeans_app_block_structure(self):
        app = KMeansApp(KMeansSpec(num_workers=2, data_bytes=1e9,
                                   partitions_per_worker=2))
        assert app.iteration_block.num_tasks == 4 + 2 + 2 + 1


class TestWaterSpec:
    def test_cg_model_terminates(self):
        spec = WaterSpec(num_workers=2, partitions_per_worker=1)
        for substep in range(20):
            iters = spec.expected_cg_iterations(substep)
            assert 1 <= iters <= spec.max_cg_iterations
            assert spec.residual_after(substep, iters - 1) < spec.cg_tolerance

    def test_cg_iterations_vary_by_substep(self):
        spec = WaterSpec(num_workers=2, partitions_per_worker=1)
        counts = {spec.expected_cg_iterations(s) for s in range(10)}
        assert len(counts) > 1  # genuinely data-dependent

    def test_substep_count_depends_on_cfl(self):
        fast = WaterSpec(num_workers=2, partitions_per_worker=1,
                         frame_duration=0.05)
        slow = WaterSpec(num_workers=2, partitions_per_worker=1,
                         frame_duration=0.1)
        assert slow.expected_substeps() > fast.expected_substeps()

    def test_task_length_profile(self):
        """§5.5: majority of *time* in 60-70 ms tasks, shortest 100 µs."""
        from repro.apps.water import ADVECT_STAGES, CG_STAGES, POST_STAGES
        durations = [ms for _n, ms, *_rest in
                     ADVECT_STAGES + CG_STAGES + POST_STAGES]
        assert min(durations) == pytest.approx(0.1)  # 100 µs
        heavy_time = sum(d for d in durations if d >= 60)
        assert heavy_time > 0.5 * sum(durations)

    def test_double_buffering_invariant(self):
        """No stage ghost-reads a variable it also writes (the WAR hazard
        that mutable single-buffer stages would hit)."""
        from repro.apps.water import (ADVECT_STAGES, CG_STAGES, POST_STAGES,
                                      RESEED_STAGES)
        for table in (ADVECT_STAGES, CG_STAGES, POST_STAGES, RESEED_STAGES):
            for name, _ms, _reads, ghosts, write in table:
                assert write not in ghosts, name
