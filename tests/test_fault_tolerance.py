"""Fault-tolerance integration tests: checkpointing and recovery (§4.4)."""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    combine_registry,
    reference_execute,
    simple_define,
    worker_values,
)

DATA = [1, 2, 3]
OUT = [11, 12, 13]
ACC = 30


def blocks():
    seed_block = BlockSpec("seed", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot="v")
        for oid in DATA + [ACC]
    ])])
    iter_block = BlockSpec("iter", [
        StageSpec("map", [
            LogicalTask("combine", read=(DATA[i],), write=(OUT[i],))
            for i in range(len(DATA))
        ]),
        StageSpec("fold", [
            LogicalTask("combine", read=tuple(OUT) + (ACC,), write=(ACC,)),
        ]),
    ], returns={"acc": ACC})
    return seed_block, iter_block


def build_cluster(iterations, fail_worker_after=None, num_workers=3,
                  checkpoint_every=3):
    seed_block, iter_block = blocks()
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    box = {}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, {"v": 2})
        for i in range(iterations):
            if fail_worker_after is not None and i == fail_worker_after:
                cluster = box["cluster"]
                if not cluster.workers[num_workers - 1]._dead:
                    cluster.workers[num_workers - 1].fail()
            yield job.run(iter_block)

    cluster = NimbusCluster(
        num_workers, program, registry=combine_registry(),
        use_templates=True, checkpoint_every=checkpoint_every,
        heartbeat_timeout=0.5,
    )
    box["cluster"] = cluster
    cluster.start_fault_tolerance(heartbeat_interval=0.1, check_interval=0.2)
    return cluster


def reference(iterations):
    seed_block, iter_block = blocks()
    return reference_execute(
        [(seed_block, {"v": 2})] + [(iter_block, {})] * iterations)


def test_checkpoints_commit_periodically():
    cluster = build_cluster(iterations=8)
    cluster.run_until_finished(max_seconds=1e4)
    assert cluster.metrics.count("checkpoints_committed") >= 2
    # checkpointed payloads really are in durable storage
    checkpoint_id = cluster.controller._last_committed_checkpoint
    assert any(cluster.storage.has(checkpoint_id, oid) for oid in DATA)


def test_worker_failure_recovers_and_finishes():
    cluster = build_cluster(iterations=10, fail_worker_after=6)
    cluster.run_until_finished(max_seconds=1e4)
    assert cluster.metrics.count("recoveries_completed") == 1
    assert cluster.metrics.count("driver_replays") == 1
    assert cluster.job.finished
    # the dead worker is out of the live set
    assert 2 not in cluster.controller.live_workers


def test_recovered_run_produces_correct_results():
    """After a failure mid-job, replay + re-execution must converge to the
    exact values of an undisturbed run."""
    cluster = build_cluster(iterations=10, fail_worker_after=6)
    cluster.run_until_finished(max_seconds=1e4)
    expected = reference(10)
    assert worker_values(cluster, [ACC])[ACC] == expected[ACC]
    values = worker_values(cluster, OUT)
    assert values == {oid: expected[oid] for oid in OUT}


def test_failed_worker_objects_rehomed():
    cluster = build_cluster(iterations=10, fail_worker_after=6)
    cluster.run_until_finished(max_seconds=1e4)
    directory = cluster.controller.directory
    for oid in DATA + OUT + [ACC]:
        holders = directory.holders_of_latest(oid)
        assert holders, f"object {oid} lost"
        assert all(h in cluster.controller.live_workers for h in holders)


def test_failure_without_checkpoint_raises():
    cluster = build_cluster(iterations=30, fail_worker_after=0,
                            checkpoint_every=1000)
    with pytest.raises(RuntimeError):
        cluster.run_until_finished(max_seconds=1e4)


def _crash_on_message(cluster, target, message_type, after=0.0):
    """Kill ``target`` when the first ``message_type`` is transmitted to it
    (``after`` seconds later), so the crash lands inside a protocol window
    instead of between iterations."""
    original = cluster.network.transmit
    fired = {}

    def transmit(src, dst, msg, depart):
        original(src, dst, msg, depart)
        if not fired and dst is target and isinstance(msg, message_type):
            fired["at"] = cluster.sim.now
            if after == 0.0:
                target.fail()
            else:
                cluster.sim.schedule(after, target.fail)

    cluster.network.transmit = transmit
    return fired


def test_crash_during_template_install_recovers():
    """The worker dies while its template half is on the wire: the install
    never lands, the controller must re-halt and regenerate templates for
    the survivors, and the results still match the reference."""
    cluster = build_cluster(iterations=8, checkpoint_every=1)
    fired = _crash_on_message(cluster, cluster.workers[2],
                              P.InstallWorkerTemplate)
    cluster.run_until_finished(max_seconds=1e4)
    assert fired, "no InstallWorkerTemplate was ever sent to the victim"
    assert cluster.metrics.count("recoveries_completed") == 1
    expected = reference(8)
    assert worker_values(cluster, OUT + [ACC]) == \
        {oid: expected[oid] for oid in OUT + [ACC]}


def test_crash_between_instantiation_and_completion_recovers():
    """The worker dies after receiving an instantiation but before sending
    InstanceComplete — the controller is left waiting on a completion that
    will never come, and only failure recovery can unblock the job."""
    cluster = build_cluster(iterations=8, checkpoint_every=1)
    # task duration is 1e-3s: dying 2e-4s after the instantiation arrives
    # lands mid-instance, with commands enqueued but unreported
    fired = _crash_on_message(cluster, cluster.workers[2],
                              P.InstantiateWorkerTemplate, after=3e-4)
    cluster.run_until_finished(max_seconds=1e4)
    assert fired, "no InstantiateWorkerTemplate was ever sent to the victim"
    assert cluster.metrics.count("recoveries_completed") == 1
    assert cluster.metrics.count("driver_replays") == 1
    expected = reference(8)
    assert worker_values(cluster, OUT + [ACC]) == \
        {oid: expected[oid] for oid in OUT + [ACC]}


def test_templates_survive_recovery():
    """Controller templates persist; worker templates are regenerated for
    the surviving workers and the job returns to the template fast path."""
    cluster = build_cluster(iterations=14, fail_worker_after=6)
    cluster.run_until_finished(max_seconds=1e4)
    controller = cluster.controller
    assert "iter" in controller.templates
    assert controller.phase["iter"] == controller.PHASE_WT_INSTALLED
    # post-recovery iterations ran through templates again
    assert cluster.metrics.count("auto_validations") >= 2
