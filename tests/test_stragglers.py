"""Straggler scenarios: slow workers, and mitigation via template edits.

The paper's motivation for fine-grained scheduling: a centralized (or
template-cached-but-editable) control plane can migrate work *off* a slow
worker; a static data flow cannot (without a full reinstall). These tests
inject a straggler via per-worker duration scaling and verify both the
slowdown and the edit-based remedy.
"""

import pytest

from repro.apps import LRApp, LRSpec
from repro.analysis import mean_iteration_time
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P


def lr_app(num_workers=4):
    return LRApp(LRSpec(num_workers=num_workers, data_bytes=4e9,
                        partitions_per_worker=4, iterations=12))


def run(app, straggler_scales=None, migrate_at=None, moves=None):
    box = {}

    def directive(controller):
        controller.edit_threshold = 1.0
        controller.migrate_tasks("lr.iteration", moves)

    def program(job):
        yield job.define(app.variables.definitions)
        yield job.run(app.init_block)
        controller = box["cluster"].controller
        for i in range(app.spec.iterations):
            if migrate_at is not None and i == migrate_at:
                controller.deliver(P.ManagerDirective(directive))
            yield job.run(app.iteration_block, {"step": 0.5})

    cluster = NimbusCluster(app.spec.num_workers, program,
                            registry=app.registry,
                            straggler_scales=straggler_scales or {})
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


def test_straggler_slows_the_whole_iteration():
    fast = run(lr_app())
    slow = run(lr_app(), straggler_scales={3: 3.0})
    t_fast = mean_iteration_time(fast.metrics, "lr.iteration", skip=6)
    t_slow = mean_iteration_time(slow.metrics, "lr.iteration", skip=6)
    # one 3x-slow worker gates every reduction: iterations ~3x slower
    assert t_slow > 2.0 * t_fast


def test_migrating_off_the_straggler_recovers_time():
    app = lr_app()
    # move half of worker 3's gradient tasks (ct indices 12..15) elsewhere
    moves = [(12, 0), (13, 1)]
    mitigated = run(lr_app(), straggler_scales={3: 3.0},
                    migrate_at=6, moves=moves)
    unmitigated = run(lr_app(), straggler_scales={3: 3.0})

    def tail_time(cluster):
        ends = sorted(iv.end for iv in cluster.metrics.intervals["driver_block"]
                      if iv.labels["block_id"] == "lr.iteration")
        return ends[-1] - ends[-4]  # last 3 iterations

    assert tail_time(mitigated) < tail_time(unmitigated)
    assert mitigated.metrics.count("edits_applied") > 0


def test_straggler_does_not_change_results():
    import numpy as np
    spec = LRSpec(num_workers=3, data_bytes=3e9, partitions_per_worker=2,
                  dim=8, iterations=6, real_compute=True,
                  rows_per_partition=80)
    app_a, app_b = LRApp(spec), LRApp(spec)
    clean = NimbusCluster(3, app_a.program(blocking=True),
                          registry=app_a.registry)
    clean.run_until_finished(max_seconds=1e6)
    slow = NimbusCluster(3, app_b.program(blocking=True),
                         registry=app_b.registry,
                         straggler_scales={1: 5.0})
    slow.run_until_finished(max_seconds=1e6)
    assert np.allclose(clean.workers[0].store.get(app_a.coeff),
                       slow.workers[0].store.get(app_b.coeff))
    assert slow.sim.now > clean.sim.now
