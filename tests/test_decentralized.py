"""Decentralized self-scheduling: mode parity and the window protocol.

The contract (DESIGN.md §14): ``mode="decentralized"`` changes *when*
work happens — workers advance template instances locally from one
granted window instead of one controller round-trip per instance — but
never *what* is computed. These sweeps pin that down as bit-identity of
:func:`tests.helpers.computed_values` (results history, task counts,
final object values) against the centralized mode, across seeds, chaos
profiles, the rebalancer, and co-scheduled tenants with mixed per-job
modes. Timing observables are expected to differ; that difference is the
entire point of the mode (BENCH's ``scheduling_modes`` section measures
it).

Alongside the parity sweeps: the window mechanics themselves — grants
actually happen, the controller's steady-state message traffic collapses
(the ISSUE's ≤20% gate at fig07@100), and a mid-run partition-map epoch
bump stalls the grant at a block boundary and resumes via re-grant
without changing any computed value.
"""

import pytest

from repro.apps import (
    KMeansApp,
    KMeansSpec,
    RotationApp,
    RotationSpec,
    WaterApp,
    WaterSpec,
)
from repro.chaos import PROFILES
from repro.nimbus import NimbusCluster

from .helpers import computed_values, run_lr

SEEDS = range(10)
CHAOS_SEEDS = (3, 11)


# ---------------------------------------------------------------------------
# Workload runners (one cluster each, returning values-only observables)
# ---------------------------------------------------------------------------
def run_kmeans(mode, seed):
    spec = KMeansSpec(num_workers=4, iterations=8, partitions_per_worker=4)
    app = KMeansApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


def run_rotation(mode, seed):
    spec = RotationSpec(num_workers=4, iterations=10, seed=seed)
    app = RotationApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry,
                            seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


def run_water(mode, seed):
    spec = WaterSpec(num_workers=4, partitions_per_worker=2, scale=0.002,
                     frame_duration=0.006, reseed_every=3)
    app = WaterApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry,
                            seed=seed, mode=mode)
    cluster.run_until_finished(max_seconds=1e6)
    return computed_values(cluster)


# ---------------------------------------------------------------------------
# 10-seed bit-identity sweeps
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fig07_values_identical_across_modes(seed):
    cent = computed_values(run_lr(seed=seed))
    dec = computed_values(run_lr(seed=seed, mode="decentralized"))
    assert dec == cent, f"seed {seed}: fig07 values diverged across modes"


@pytest.mark.parametrize("seed", SEEDS)
def test_fig08_values_identical_across_modes(seed):
    assert run_kmeans("decentralized", seed) == run_kmeans(
        "centralized", seed), f"seed {seed}: fig08 values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_rotation_values_identical_across_modes(seed):
    assert run_rotation("decentralized", seed) == run_rotation(
        "centralized", seed), f"seed {seed}: rotation values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_water_values_identical_across_modes(seed):
    assert run_water("decentralized", seed) == run_water(
        "centralized", seed), f"seed {seed}: water values diverged"


# ---------------------------------------------------------------------------
# Chaos, stragglers, rebalancer
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_values_identical_across_modes(profile, seed):
    cent = computed_values(run_lr(seed=seed, chaos_profile=profile,
                                  chaos_seed=seed))
    dec = computed_values(run_lr(seed=seed, chaos_profile=profile,
                                 chaos_seed=seed, mode="decentralized"))
    assert dec == cent, f"{profile}/{seed}: chaos values diverged"


@pytest.mark.parametrize("seed", range(4))
def test_rebalancer_straggler_values_identical_across_modes(seed):
    kwargs = dict(seed=seed, iterations=16, rebalance=True,
                  straggler_scales={seed % 4: 3.0})
    cent = computed_values(run_lr(**kwargs))
    dec = computed_values(run_lr(mode="decentralized", **kwargs))
    assert dec == cent, f"seed {seed}: rebalanced values diverged"


# ---------------------------------------------------------------------------
# Mixed-mode multi-tenant pairs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("modes", [("centralized", "decentralized"),
                                   ("decentralized", "centralized")])
def test_mixed_mode_tenants_compute_solo_values(seed, modes):
    """Two co-scheduled tenants with different per-job scheduling modes
    each compute exactly what they compute running alone (and therefore
    exactly what the other mode computes)."""
    from .test_multitenant import (
        SHORT_ITERS,
        job_observables,
        run_solo,
        serve_cluster,
        small_lr_app,
    )

    app = small_lr_app(seed=seed)
    solo_a = run_solo(app, seed=seed)
    solo_b = run_solo(app, iterations=SHORT_ITERS, seed=seed)
    cluster = serve_cluster(app, seed=seed)
    a = cluster.jobs.submit(app.program(blocking=False), mode=modes[0])
    b = cluster.jobs.submit(app.program(blocking=False,
                                        iterations=SHORT_ITERS),
                            mode=modes[1])
    cluster.run_until_jobs_finished(max_seconds=1e6)
    assert job_observables(cluster, a.job_id, app) == solo_a, (
        f"seed {seed}: {modes[0]} tenant diverged from solo")
    assert job_observables(cluster, b.job_id, app) == solo_b, (
        f"seed {seed}: {modes[1]} tenant diverged from solo")


# ---------------------------------------------------------------------------
# Window mechanics
# ---------------------------------------------------------------------------
def test_steady_state_actually_self_schedules():
    cluster = run_lr(iterations=16, mode="decentralized")
    metrics = cluster.metrics
    grants = metrics.count("self_schedule_grants")
    instances = metrics.count("self_schedule_instances")
    assert grants > 0, "no window was ever granted"
    # windows batch many instances per grant — that is the whole saving
    assert instances > grants
    assert metrics.count("self_schedule.orphan_summaries") == 0


def test_centralized_mode_never_grants_windows():
    cluster = run_lr(iterations=16)
    assert cluster.metrics.count("self_schedule_grants") == 0
    assert cluster.metrics.count("self_schedule_instances") == 0


def test_controller_steady_messages_collapse_at_fig07_100():
    """The ISSUE's regression gate: on fig07@100 the decentralized
    controller sees ≤20% of the centralized steady-state message traffic
    (measured ~7%; the margin absorbs window-boundary effects)."""
    counts = {}
    for mode in ("centralized", "decentralized"):
        cluster = run_lr(workers=100, iterations=14,
                         partitions_per_worker=1, mode=mode)
        m = cluster.metrics
        counts[mode] = (m.count("controller.steady_messages_in")
                        + m.count("controller.steady_messages_out"))
    assert counts["centralized"] > 0
    ratio = counts["decentralized"] / counts["centralized"]
    assert ratio <= 0.20, (
        f"decentralized steady traffic is {ratio:.1%} of centralized "
        f"({counts['decentralized']} vs {counts['centralized']})")


def test_epoch_bump_stalls_and_resumes_without_changing_values():
    """A partition-map epoch bump mid-run is the controller reasserting
    ownership: any outstanding grant stalls at its next block boundary,
    is re-granted under the new epoch, and the run's values are
    untouched."""
    baseline = computed_values(run_lr(iterations=20))

    from repro.apps import LRApp, LRSpec
    spec = LRSpec(num_workers=4, iterations=20, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0,
                            mode="decentralized")
    cluster.sim.schedule_at(0.5, cluster.controller.bump_partition_epoch)
    cluster.run_until_finished(max_seconds=1e6)
    assert cluster.controller.pm_epoch >= 1
    assert computed_values(cluster) == baseline


def test_crashed_worker_releases_outstanding_window():
    """Regression (autoscaler bugfix 1): a worker crash-faulted while it
    holds part of an outstanding self-schedule window must have its
    granted-but-unfinished instances reclaimed. Before the fix the window
    never closed — the controller waited forever on summaries from the
    dead worker, ``outstanding_grants()`` stayed pinned at 1, and every
    partition-map change (eviction, migration, autoscaler drain) wedged
    on ``_require_quiesced``."""
    from repro.apps import LRApp, LRSpec
    spec = LRSpec(num_workers=4, iterations=24, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=0,
                            mode="decentralized")
    ctrl = cluster.controller
    state = {}

    def crash():
        policy = ctrl.jobs[0].policy
        state["grants_before"] = policy.outstanding_grants()
        cluster.workers[3].fail()
        ctrl.on_worker_dead(3)
        state["grants_after"] = policy.outstanding_grants()

    cluster.sim.schedule_at(0.5, crash)
    # data on the dead worker is unrecoverable without a checkpoint, so
    # the program cannot finish — but the control plane must not wedge:
    # run the event horizon dry and inspect the reclaim.
    cluster.driver.start()
    cluster.sim.run(until=30.0)
    assert state["grants_before"] == 1, "no window in flight at crash time"
    assert state["grants_after"] == 0, "crash left the window outstanding"
    assert 3 not in ctrl.live_workers
    assert cluster.metrics.count("self_schedule.reclaimed_instances") > 0
    # eviction re-homed the dead worker's template entries: nothing in
    # the current controller template still targets worker 3
    ctx = ctrl.jobs[0]
    for block_id, template in ctx.templates.items():
        workers = {entry.worker for entry in template.entries}
        assert 3 not in workers, f"{block_id} still targets the dead worker"


def test_decentralized_checkpoints_actually_commit():
    """Regression (autoscaler bugfix 1, second half): the window-summary
    completion path skipped the per-block checkpoint accounting, so a
    decentralized run with ``checkpoint_every`` set never committed a
    checkpoint (count stayed 0 before the fix) and crash recovery had
    nothing to restart from.

    40 iterations split into two windows (window_size=32), so the first
    window boundary — the only checkpointable quiesce point — lands
    mid-run and the checkpoint commits while the second window runs."""
    cluster = run_lr(iterations=40, mode="decentralized",
                     checkpoint_every=4)
    assert cluster.metrics.count("checkpoints_committed") > 0
    assert computed_values(cluster) == computed_values(
        run_lr(iterations=40, checkpoint_every=4))


def test_wait_queued_job_window_respects_dispatch_fifo():
    """Regression: a decentralized job admitted from the wait queue into
    a busy serve cluster reaches steady state while its own capture
    SubmitBlock for the next block is still parked in the fair-share
    dispatch queue. Its InstantiateWindow must queue behind that submit
    (FIFO within a job), not overtake it and try to instantiate a
    template that does not exist yet (KeyError before the fix: windows
    bypassed _gate_dispatch)."""
    from repro.perf.serve_bench import run_job_arrival

    cent = run_job_arrival(num_workers=8, num_jobs=4, seed=0,
                           mode="centralized")
    dec = run_job_arrival(num_workers=8, num_jobs=4, seed=0,
                          mode="decentralized")
    assert dec["jobs_finished"] == cent["jobs_finished"] == 4
    assert dec["jobs_rejected"] == cent["jobs_rejected"] == 0
    assert dec["tasks_executed"] == cent["tasks_executed"]
    for c_job, d_job in zip(cent["per_job"], dec["per_job"]):
        assert d_job["tasks_scheduled"] == c_job["tasks_scheduled"], (
            f"job {d_job['job_id']} scheduled a different task count "
            f"decentralized")
