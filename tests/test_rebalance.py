"""Adaptive rebalancer: unit tests, the no-skew bit-identity property,
and end-to-end straggler convergence.

The determinism contract under test: with ``rebalance=True`` the observe
path is pure — timings ride in fixed-size message headers, no cost is
charged, no RNG is drawn — so on a *balanced* cluster the rebalancer
never trips and the run is bit-identical to a rebalancer-off run, across
seeds and under chaos. Only an actual straggler makes the runs diverge.
"""

import random

import pytest

from repro.apps import LRApp, LRSpec
from repro.nimbus import NimbusCluster
from repro.sched import GreedyLeastLoaded, LoadTracker

from .helpers import run_lr, virtual_results

LR_BLOCK = "lr.iteration"


# ---------------------------------------------------------------------------
# LoadTracker
# ---------------------------------------------------------------------------
def test_load_tracker_ewma():
    tracker = LoadTracker(alpha=0.5)
    tracker.observe(0, 10.0, {3: 4.0})
    assert tracker.load[0] == 10.0  # first sample seeds the average
    assert tracker.task_time[3] == 4.0
    tracker.observe(0, 20.0, {3: 8.0})
    assert tracker.load[0] == 15.0
    assert tracker.task_time[3] == 6.0
    assert tracker.samples[0] == 2
    assert tracker.min_samples([0, 1]) == 0  # worker 1 unseen
    tracker.reset()
    assert not tracker.load and not tracker.samples and not tracker.task_time


# ---------------------------------------------------------------------------
# GreedyLeastLoaded on synthetic observations
# ---------------------------------------------------------------------------
class FakeWTS:
    def __init__(self, task_locations):
        self.task_locations = task_locations


def make_skewed():
    """Workers 0/1 run two 10 ms tasks each; worker 2 runs two 21 ms
    tasks (a 2x straggler)."""
    tracker = LoadTracker()
    tracker.observe(0, 20.0, {0: 10.0, 1: 10.0})
    tracker.observe(1, 20.0, {2: 10.0, 3: 10.0})
    tracker.observe(2, 42.0, {4: 21.0, 5: 21.0})
    wts = FakeWTS({0: (0, 0), 1: (0, 1), 2: (1, 0), 3: (1, 1),
                   4: (2, 0), 5: (2, 1)})
    return tracker, wts


def test_policy_is_quiet_on_balanced_load():
    tracker = LoadTracker()
    for w in range(3):
        tracker.observe(w, 20.0, {2 * w: 10.0, 2 * w + 1: 10.0})
    wts = FakeWTS({i: (i // 2, i % 2) for i in range(6)})
    policy = GreedyLeastLoaded(threshold=1.4, rng=random.Random(42))
    moves = policy.propose(tracker, wts, [0, 1, 2], max_moves=6,
                           conflict=lambda ct, dst: None, slots=8)
    assert moves == []


def test_policy_drains_the_straggler():
    tracker, wts = make_skewed()
    policy = GreedyLeastLoaded(threshold=1.4, rng=random.Random(42))
    moves = policy.propose(tracker, wts, [0, 1, 2], max_moves=6,
                           conflict=lambda ct, dst: None, slots=8)
    # both slow tasks leave worker 2 in ONE proposal (the straggler gates
    # the block until its last slow task is gone), spread across both
    # receivers; the healthy workers' tasks are left alone
    assert sorted(ct for ct, _ in moves) == [4, 5]
    assert sorted(dst for _, dst in moves) == [0, 1]


def test_policy_books_moved_tasks_at_projected_cost():
    """A task observed slow *because its worker was slow* must not make
    its destination look like a new straggler (that would stall the
    drain after one move)."""
    tracker, wts = make_skewed()
    policy = GreedyLeastLoaded(threshold=1.4, rng=random.Random(42))
    moves = policy.propose(tracker, wts, [0, 1, 2], max_moves=1,
                           conflict=lambda ct, dst: None, slots=8)
    assert len(moves) == 1  # budget-limited: proves the loop wanted more
    moves = policy.propose(tracker, wts, [0, 1, 2], max_moves=6,
                           conflict=lambda ct, dst: None, slots=8)
    assert len(moves) == 2


def test_policy_respects_conflicts():
    tracker, wts = make_skewed()
    policy = GreedyLeastLoaded(threshold=1.4, rng=random.Random(42))
    moves = policy.propose(
        tracker, wts, [0, 1, 2], max_moves=6,
        conflict=lambda ct, dst: "blocked" if dst == 0 else None, slots=8)
    assert moves and all(dst != 0 for _, dst in moves)


def test_policy_seeded_tie_breaks_are_reproducible():
    tracker, wts = make_skewed()
    results = []
    for _ in range(2):
        policy = GreedyLeastLoaded(threshold=1.4, rng=random.Random(7))
        results.append(policy.propose(tracker, wts, [0, 1, 2], max_moves=6,
                                      conflict=lambda ct, dst: None,
                                      slots=8))
    assert results[0] == results[1]


# ---------------------------------------------------------------------------
# Bit-identity: rebalancer-on with no skew == rebalancer-off
# ---------------------------------------------------------------------------
def test_rebalancer_is_bit_identical_without_skew_across_seeds():
    for seed in range(10):
        off = run_lr(seed=seed, rebalance=False)
        on = run_lr(seed=seed, rebalance=True)
        assert on.rebalancer.decisions == []
        assert virtual_results(on) == virtual_results(off), \
            f"seed {seed}: enabling the rebalancer changed the simulation"


@pytest.mark.parametrize("profile", ["light", "lossy", "hostile"])
def test_rebalancer_is_bit_identical_under_chaos(profile):
    for chaos_seed in (0, 1):
        off = run_lr(rebalance=False, chaos_profile=profile,
                     chaos_seed=chaos_seed)
        on = run_lr(rebalance=True, chaos_profile=profile,
                    chaos_seed=chaos_seed)
        assert on.rebalancer.decisions == []
        assert virtual_results(on) == virtual_results(off), \
            f"{profile}/seed {chaos_seed}: rebalancer changed a chaos run"


# ---------------------------------------------------------------------------
# End-to-end convergence on a real straggler
# ---------------------------------------------------------------------------
def _iteration_spacing(metrics):
    ends = sorted(iv.end for iv in metrics.intervals.get("driver_block", ())
                  if iv.labels.get("block_id") == LR_BLOCK
                  and not iv.labels.get("aborted"))
    return [b - a for a, b in zip(ends, ends[1:])]


def test_rebalancer_drains_a_static_straggler():
    straggler = 3
    cluster = run_lr(workers=4, iterations=20, rebalance=True,
                     straggler_scales={straggler: 2.0})
    rebalancer = cluster.rebalancer
    assert rebalancer.decisions, "the straggler never tripped the policy"
    assert all(mech == "edits" for (_t, _b, _mv, mech) in
               rebalancer.decisions)
    assert cluster.metrics.count("rebalance_moves") > 0
    # every gradient task left the straggler (entries 12..15 are worker
    # 3's gradient tasks at 4 partitions per worker)
    version = cluster.controller.current_version[LR_BLOCK]
    wts = cluster.controller.worker_templates[(LR_BLOCK, version)]
    still_there = [ct for ct in range(12, 16)
                   if wts.task_locations[ct][0] == straggler]
    assert not still_there
    # iteration time actually recovered: the last iterations run faster
    # than the degraded window right after templates installed
    spacing = _iteration_spacing(cluster.metrics)
    degraded = sum(spacing[4:7]) / 3
    recovered = sum(spacing[-3:]) / 3
    assert recovered < 0.8 * degraded


def test_rebalance_decisions_emit_trace_spans():
    spec = LRSpec(num_workers=4, iterations=20, partitions_per_worker=4)
    app = LRApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, rebalance=True,
                            straggler_scales={3: 2.0}, trace=True)
    cluster.run_until_finished(max_seconds=1e6)
    assert cluster.rebalancer.decisions
    spans = [ev for ev in cluster.tracer.events
             if ev[0] == "span" and ev[2] == "rebalance"]
    assert len(spans) == len(cluster.rebalancer.decisions)
    for ev in spans:
        assert ev[3] == "rebalance.decision"
        args = ev[7]
        assert args["mechanism"] == "edits"
        assert args["moves"] > 0
