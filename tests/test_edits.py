"""Unit tests for edits and migration planning (§2.3, §4.3, Figure 6)."""

import pytest

from repro.core.controller_template import ControllerTemplate
from repro.core.edits import (
    EditOp,
    MigrationError,
    apply_edits,
    plan_migration,
    plan_migrations,
)
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.core.worker_template import TemplateEntry, generate_worker_templates
from repro.nimbus.commands import CommandKind

SIZES = {oid: 32 for oid in range(1, 30)}


def make_wts(assignment=(0, 0, 0)):
    """Figure-6-like block: produce input, task t, consume t's result."""
    block = BlockSpec("fig6", [
        StageSpec("produce", [LogicalTask("p", read=(), write=(1,))]),
        StageSpec("t", [LogicalTask("t", read=(1,), write=(2,))]),
        StageSpec("consume", [LogicalTask("c", read=(2,), write=(3,))]),
    ])
    template = ControllerTemplate.from_block(block, list(assignment))
    return generate_worker_templates(template, SIZES)


class TestApplyEdits:
    def entry(self, index):
        return TemplateEntry(index=index, kind=CommandKind.TASK,
                             function="x")

    def test_replace(self):
        entries = [self.entry(0), self.entry(1)]
        new = TemplateEntry(index=0, kind=CommandKind.RECV, write=(9,))
        apply_edits(entries, [EditOp(EditOp.REPLACE, 1, new)])
        assert entries[1].kind == CommandKind.RECV
        assert entries[1].index == 1

    def test_append(self):
        entries = [self.entry(0)]
        apply_edits(entries, [EditOp(EditOp.APPEND, 1, self.entry(1))])
        assert len(entries) == 2

    def test_append_wrong_index_rejected(self):
        entries = [self.entry(0)]
        with pytest.raises(ValueError):
            apply_edits(entries, [EditOp(EditOp.APPEND, 5, self.entry(5))])

    def test_remove_tombstones(self):
        entries = [self.entry(0), self.entry(1)]
        apply_edits(entries, [EditOp(EditOp.REMOVE, 0)])
        assert entries[0] is None and entries[1] is not None

    def test_replace_tombstone_rejected(self):
        entries = [self.entry(0)]
        apply_edits(entries, [EditOp(EditOp.REMOVE, 0)])
        with pytest.raises(ValueError):
            apply_edits(entries, [EditOp(EditOp.REPLACE, 0, self.entry(0))])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            apply_edits([self.entry(0)], [EditOp("mutate", 0)])


class TestPlanMigration:
    def test_figure6_shape(self):
        """Migrating t from worker 0 to worker 1 produces S1/R1/t'/S2/R2."""
        wts = make_wts()
        ops = plan_migration(wts, ct_index=1, dst=1, object_sizes=SIZES)
        src_ops, dst_ops = ops[0], ops[1]
        # source: replace t's slot with the result RECV, append input SEND
        kinds_src = [(op.op, op.entry.kind if op.entry else None)
                     for op in src_ops]
        assert (EditOp.APPEND, CommandKind.SEND) in kinds_src
        assert (EditOp.REPLACE, CommandKind.RECV) in kinds_src
        # destination: input RECV, the task, result SEND
        kinds_dst = [op.entry.kind for op in dst_ops]
        assert kinds_dst == [CommandKind.RECV, CommandKind.TASK,
                             CommandKind.SEND]

    def test_result_recv_keeps_task_index(self):
        """Fig. 6: the replacement RECV takes the task's index so dependents'
        before sets are untouched."""
        wts = make_wts()
        old_worker, old_index = wts.task_locations[1]
        consumer_before = wts.entries[0][2].before  # consumer names t's index
        plan_migration(wts, 1, 1, SIZES)
        replaced = wts.entries[0][old_index]
        assert replaced.kind == CommandKind.RECV
        assert replaced.write == (2,)
        assert wts.entries[0][2].before == consumer_before

    def test_controller_half_mutated_and_location_updated(self):
        wts = make_wts()
        plan_migration(wts, 1, 1, SIZES)
        worker, index = wts.task_locations[1]
        assert worker == 1
        migrated = wts.entries[1][index]
        assert migrated.kind == CommandKind.TASK
        assert migrated.function == "t"

    def test_contract_preserved(self):
        """Preconditions and the directory delta survive the migration, so
        auto-validation stays sound (the result ships home every run)."""
        wts = make_wts()
        before_preconds = {w: set(s) for w, s in wts.preconditions.items()}
        before_counts = dict(wts.delta.write_counts)
        plan_migration(wts, 1, 1, SIZES)
        assert {w: set(s) for w, s in wts.preconditions.items()} == before_preconds
        assert wts.delta.write_counts == before_counts
        # the original worker still ends up holding the result
        assert 0 in wts.delta.final_holders[2]
        assert 1 in wts.delta.final_holders[2]

    def test_migrate_to_same_worker_is_noop(self):
        wts = make_wts()
        assert plan_migration(wts, 1, 0, SIZES) == {}

    def test_repeated_migration_follows_task(self):
        wts = make_wts(assignment=(0, 0, 0))
        plan_migration(wts, 1, 1, SIZES)
        ops = plan_migration(wts, 1, 2, SIZES)
        assert set(ops) == {1, 2}
        assert wts.task_locations[1][0] == 2

    def test_unknown_task_rejected(self):
        wts = make_wts()
        with pytest.raises(MigrationError):
            plan_migration(wts, 99, 1, SIZES)

    def test_multi_write_task_rejected(self):
        block = BlockSpec("mw", [
            StageSpec("s", [LogicalTask("t", read=(), write=(1, 2))]),
        ])
        template = ControllerTemplate.from_block(block, [0])
        wts = generate_worker_templates(template, SIZES)
        with pytest.raises(MigrationError):
            plan_migration(wts, 0, 1, SIZES)

    def test_destination_conflict_rejected(self):
        # destination already touches the task's objects
        wts = make_wts(assignment=(0, 0, 1))  # consumer of oid 2 on worker 1
        with pytest.raises(MigrationError):
            plan_migration(wts, 1, 1, SIZES)

    def test_report_flag_transfers_to_result_recv(self):
        block = BlockSpec("rep", [
            StageSpec("p", [LogicalTask("p", read=(), write=(1,))]),
            StageSpec("t", [LogicalTask("t", read=(1,), write=(2,))]),
        ], returns={"out": 2})
        template = ControllerTemplate.from_block(block, [0, 0])
        wts = generate_worker_templates(template, SIZES)
        old_worker, old_index = wts.task_locations[1]
        plan_migration(wts, 1, 1, SIZES)
        replaced = wts.entries[0][old_index]
        assert replaced.report  # the recv now reports the returned value


def test_plan_migrations_batches_and_counts_ops():
    block = BlockSpec("batch", [
        StageSpec("p", [LogicalTask("p", read=(), write=(1,)),
                        LogicalTask("p", read=(), write=(2,))]),
        StageSpec("t", [LogicalTask("t", read=(1,), write=(11,)),
                        LogicalTask("t", read=(2,), write=(12,))]),
    ])
    template = ControllerTemplate.from_block(block, [0, 0, 0, 0])
    wts = generate_worker_templates(template, SIZES)
    edits, total, relocations = plan_migrations(wts, [(2, 1), (3, 2)], SIZES)
    # inputs here are produced *in-block*, so they ship per iteration:
    # each single-input/single-output migration is 5 ops (S1,R1,t',S2,R2)
    assert total == 10
    assert set(edits) == {0, 1, 2}
    assert relocations == []


def test_sole_reader_preblock_inputs_relocate():
    """A task whose input is pre-block data it alone reads (a training
    partition) relocates the input instead of re-shipping it every
    instantiation: 3 edit ops (t', S2, R2) plus a reported relocation."""
    block = BlockSpec("reloc", [
        StageSpec("t", [LogicalTask("t", read=(1,), write=(11,)),
                        LogicalTask("t", read=(2,), write=(12,))]),
    ])
    template = ControllerTemplate.from_block(block, [0, 0])
    wts = generate_worker_templates(template, SIZES)
    edits, total, relocations = plan_migrations(wts, [(0, 1)], SIZES)
    assert total == 3
    assert relocations == [(1, 1)]
    # the precondition moved with the data
    assert 1 not in wts.preconditions[0]
    assert 1 in wts.preconditions[1]
    # object 2 (the other task's input) stays put
    assert 2 in wts.preconditions[0]
