"""Data-command lifecycle: create and destroy objects (§3.4)."""

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster

from .helpers import combine_registry, simple_define


def test_undefine_removes_objects_everywhere():
    block = BlockSpec("b", [StageSpec("s", [
        LogicalTask("combine", read=(1,), write=(2,))])])

    def program(job):
        yield job.define(simple_define({1: ("x", 8), 2: ("y", 8),
                                        3: ("z", 8)}))
        yield job.run(block)
        yield job.undefine([1, 2])

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    directory = cluster.controller.directory
    assert 1 not in directory and 2 not in directory
    assert 3 in directory
    for worker in cluster.workers.values():
        assert 1 not in worker.store
        assert 2 not in worker.store


def test_undefine_unknown_object_is_harmless():
    def program(job):
        yield job.define(simple_define({1: ("x", 8)}))
        yield job.undefine([99])

    cluster = NimbusCluster(1, program, registry=combine_registry())
    assert cluster.run_until_finished(max_seconds=1e4).finished


def test_space_can_be_reused_after_undefine():
    """Dropping a dataset and defining a fresh one under new oids works —
    the staged-job pattern (load A, reduce to B, drop A, analyze B)."""
    block_a = BlockSpec("a", [StageSpec("s", [
        LogicalTask("seed", read=(), write=(1,), param_slot="v")])])
    block_b = BlockSpec("b", [StageSpec("s", [
        LogicalTask("combine", read=(10,), write=(11,))])],
        returns={"out": 11})
    results = []

    def program(job):
        yield job.define(simple_define({1: ("x", 8)}))
        yield job.run(block_a, {"v": 5})
        yield job.undefine([1])
        yield job.define(simple_define({10: ("p", 8), 11: ("q", 8)}))
        res = yield job.run(block_b)
        results.append(res["out"])

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    assert results and results[0] is not None
    assert 1 not in cluster.controller.directory
