"""Unit tests for the network model."""

import pytest

from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.metrics import Metrics
from repro.sim.network import Network


class Packet(Message):
    def __init__(self, tag, size_bytes=0):
        self.tag = tag
        self.size_bytes = size_bytes


class Sink(Actor):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def handle(self, msg):
        self.arrivals.append((self.sim.now, msg.tag))


def build(latency=0.001, bandwidth=1e6):
    sim = Simulator()
    net = Network(sim, latency=latency, bandwidth=bandwidth)
    src = net.attach(Sink(sim, "src"))
    dst = net.attach(Sink(sim, "dst"))
    return sim, net, src, dst


def test_latency_applied():
    sim, net, src, dst = build(latency=0.005)
    net.transmit(src, dst, Packet("p"), depart=0.0)
    sim.run()
    assert dst.arrivals[0][0] == pytest.approx(0.005)


def test_bandwidth_serialization():
    sim, net, src, dst = build(latency=0.0, bandwidth=1000.0)
    net.transmit(src, dst, Packet("big", size_bytes=500), depart=0.0)
    sim.run()
    assert dst.arrivals[0][0] == pytest.approx(0.5)


def test_link_is_fifo_under_load():
    sim, net, src, dst = build(latency=0.0, bandwidth=1000.0)
    # both messages depart at 0; the link serializes them
    net.transmit(src, dst, Packet("first", size_bytes=500), depart=0.0)
    net.transmit(src, dst, Packet("second", size_bytes=500), depart=0.0)
    sim.run()
    assert [tag for _t, tag in dst.arrivals] == ["first", "second"]
    assert dst.arrivals[1][0] == pytest.approx(1.0)


def test_distinct_links_do_not_interfere():
    sim = Simulator()
    net = Network(sim, latency=0.0, bandwidth=1000.0)
    a = net.attach(Sink(sim, "a"))
    b = net.attach(Sink(sim, "b"))
    c = net.attach(Sink(sim, "c"))
    net.transmit(a, b, Packet("ab", size_bytes=1000), depart=0.0)
    net.transmit(a, c, Packet("ac", size_bytes=1000), depart=0.0)
    sim.run()
    # full mesh: each directed pair has its own link capacity
    assert b.arrivals[0][0] == pytest.approx(1.0)
    assert c.arrivals[0][0] == pytest.approx(1.0)


def test_loopback_is_fast_and_free():
    sim, net, src, _dst = build(latency=0.5)
    net.transmit(src, src, Packet("self", size_bytes=10**9), depart=0.0)
    sim.run()
    assert src.arrivals[0][0] == pytest.approx(net.loopback_latency)


def test_partitioned_actor_drops_messages():
    sim, net, src, dst = build()
    net.partition("dst")
    net.transmit(src, dst, Packet("lost"), depart=0.0)
    sim.run()
    assert dst.arrivals == []
    net.heal("dst")
    net.transmit(src, dst, Packet("found"), depart=sim.now)
    sim.run()
    assert [tag for _t, tag in dst.arrivals] == ["found"]


def test_partitioned_sender_drops_messages():
    sim, net, src, dst = build()
    net.partition("src")
    net.transmit(src, dst, Packet("lost"), depart=0.0)
    sim.run()
    assert dst.arrivals == []


def test_partition_drops_are_observable():
    """Partition losses are never silent: they increment the network's
    counter, the ``net.partition_drops`` metric, and fire the sender
    callback with the exact (src, dst, msg) that was lost."""
    sim = Simulator()
    metrics = Metrics()
    observed = []
    net = Network(
        sim, metrics=metrics,
        on_partition_drop=lambda s, d, m: observed.append((s.name, d.name, m.tag)),
    )
    src = net.attach(Sink(sim, "src"))
    dst = net.attach(Sink(sim, "dst"))
    net.partition("dst")
    net.transmit(src, dst, Packet("lost-1"), depart=0.0)
    net.transmit(src, dst, Packet("lost-2"), depart=0.0)
    net.heal("dst")
    net.transmit(src, dst, Packet("kept"), depart=0.0)
    sim.run()
    assert net.partition_drops == 2
    assert metrics.count("net.partition_drops") == 2
    assert observed == [("src", "dst", "lost-1"), ("src", "dst", "lost-2")]
    assert [tag for _t, tag in dst.arrivals] == ["kept"]


def test_attach_registers_actor_by_name():
    sim, net, src, dst = build()
    assert net.actors == {"src": src, "dst": dst}


def test_traffic_accounting():
    sim, net, src, dst = build()
    net.transmit(src, dst, Packet("a", size_bytes=100), depart=0.0)
    net.transmit(src, dst, Packet("b", size_bytes=200), depart=0.0)
    sim.run()
    assert net.messages_sent == 2
    assert net.bytes_sent == 300
