"""Elastic autoscaling (DESIGN.md §15): parity, convergence, drains.

The autoscaler's determinism contract mirrors the rebalancer's and the
tracer's: the reconciliation tick is pure observation until a decision
trips, and every decision it does take flows through value-preserving
mechanisms (template edits/reinstalls for spreads, the eviction drain
for scale-down). Two families of guarantees follow, and both are pinned
here:

* **parity** — enabling the autoscaler never changes what a job
  computes: :func:`tests.helpers.computed_values` (results history,
  executed-task count, final object values) is bit-identical to the
  fixed-size run, across seeds, workloads, chaos, and the decentralized
  scheduling mode — *whether or not* the policy trips.
* **convergence** — a scripted demand step (seeded chaos
  ``FaultPlan.demand_step``) triggers reconciliation that re-stabilizes
  within a bounded number of intervals: scale-up provisions and spreads
  through the template machinery (never a job restart), scale-down
  drains through DRAINING → evict → drained with zero lost or
  duplicated task completions.
"""

import pytest

from repro.apps import KMeansApp, KMeansSpec, WaterApp, WaterSpec
from repro.chaos import FaultPlan
from repro.nimbus import NimbusCluster
from repro.scale import TargetUtilizationPolicy

from .helpers import computed_values, run_lr

SEEDS = range(10)
CHAOS_SEEDS = (3, 11)


def run_kmeans(seed, **kw):
    spec = KMeansSpec(num_workers=4, iterations=8, partitions_per_worker=4)
    app = KMeansApp(spec)
    cluster = NimbusCluster(4, app.program(blocking=False),
                            registry=app.registry, seed=seed, **kw)
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


def run_water(seed, **kw):
    spec = WaterSpec(num_workers=4, partitions_per_worker=2, scale=0.002,
                     frame_duration=0.006, reseed_every=3)
    app = WaterApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry,
                            seed=seed, **kw)
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


def run_step(workers=8, iterations=40, seed=0, step_at=15.0, step=2.0,
             autoscale=False, **kw):
    """Fig07 LR with a scripted demand step at ``step_at``."""
    from repro.apps import LRApp, LRSpec

    spec = LRSpec(num_workers=workers, iterations=iterations,
                  partitions_per_worker=4)
    app = LRApp(spec)
    plan = FaultPlan(seed).demand_step(step_at, step)
    cluster = NimbusCluster(workers, app.program(blocking=False),
                            registry=app.registry, seed=seed,
                            chaos_plan=plan, autoscale=autoscale, **kw)
    cluster.run_until_finished(max_seconds=1e6)
    return cluster


# ---------------------------------------------------------------------------
# 10-seed bit-identity: autoscaler-on ≡ fixed-size
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fig07_values_identical_with_autoscaler(seed):
    fixed = computed_values(run_lr(seed=seed))
    auto = computed_values(run_lr(seed=seed, autoscale=True))
    assert auto == fixed, f"seed {seed}: fig07 values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_fig08_values_identical_with_autoscaler(seed):
    fixed = computed_values(run_kmeans(seed))
    auto = computed_values(run_kmeans(seed, autoscale=True))
    assert auto == fixed, f"seed {seed}: fig08 values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_water_values_identical_with_autoscaler(seed):
    fixed = computed_values(run_water(seed))
    auto = computed_values(run_water(seed, autoscale=True))
    assert auto == fixed, f"seed {seed}: water values diverged"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_lossy_values_identical_with_autoscaler(seed):
    fixed = computed_values(run_lr(seed=seed, chaos_profile="lossy",
                                   chaos_seed=seed))
    auto = computed_values(run_lr(seed=seed, chaos_profile="lossy",
                                  chaos_seed=seed, autoscale=True))
    assert auto == fixed, f"seed {seed}: chaos-lossy values diverged"


@pytest.mark.parametrize("seed", SEEDS)
def test_decentralized_values_identical_with_autoscaler(seed):
    fixed = computed_values(run_lr(seed=seed, mode="decentralized"))
    auto = computed_values(run_lr(seed=seed, mode="decentralized",
                                  autoscale=True))
    assert auto == fixed, f"seed {seed}: decentralized values diverged"


def test_steady_run_takes_no_decisions():
    """The no-trigger half of the determinism contract, stated directly:
    a steady run's autoscaler ticks away but never acts."""
    cluster = run_lr(iterations=30, autoscale=True)
    assert cluster.autoscaler.ticks > 0
    assert cluster.autoscaler.decisions == []


# ---------------------------------------------------------------------------
# Convergence: a 2x demand step scales up and re-stabilizes
# ---------------------------------------------------------------------------
def test_demand_step_scales_up_and_restabilizes():
    fixed = run_step()
    auto = run_step(autoscale=True)

    ups = [d for d in auto.autoscaler.decisions if d["action"] == "scale_up"]
    spreads = [d for d in auto.autoscaler.decisions
               if d["action"] == "spread"]
    assert ups, "2x demand step never triggered a scale-up"
    assert len(auto.controller.live_workers) > 8

    # bounded convergence: every scaling action lands within 120
    # reconciliation intervals of the step, then the loop goes quiet
    interval = auto.autoscaler.interval
    last = max(d["t"] for d in auto.autoscaler.decisions)
    assert last - 15.0 <= 120 * interval, (
        f"still reconciling {last - 15.0:.2f}s after the step")

    # scale-up went through the template machinery only — no restart:
    # the driver ran exactly one program to completion and every spread
    # mechanism is a template edit, reinstall, or pre-install reassign
    for d in spreads:
        assert set(d["mechanisms"]) <= {"edits", "reinstall", "reassign"}
    assert auto.job.finished

    # ... and changed nothing about what was computed
    assert computed_values(auto) == computed_values(fixed)


def test_new_workers_receive_work():
    """Scale-up is real capacity, not bookkeeping: the spread re-homes
    template entries onto the provisioned workers and they execute."""
    auto = run_step(autoscale=True)
    new_workers = [w for w in auto.workers if w >= 8]
    assert new_workers
    # the load EWMA only gains an entry when a worker reports completed
    # instances — real execution, not bookkeeping
    tracked = [w for w in new_workers
               if w in auto.controller.load_tracker.load]
    assert tracked, "no provisioned worker ever reported load"


# ---------------------------------------------------------------------------
# Scale-down: DRAINING → evict → drained, nothing lost or duplicated
# ---------------------------------------------------------------------------
def test_demand_drop_drains_workers_without_losing_completions():
    fixed = run_step(step=0.5)
    auto = run_step(step=0.5, autoscale=True)

    downs = [d for d in auto.autoscaler.decisions
             if d["action"] == "scale_down"]
    assert downs, "0.5x demand step never triggered a scale-down"
    assert len(auto.controller.live_workers) < 8

    # the DRAINING lifecycle ran to completion: every drained worker is
    # out of the live set with empty queues and no granted windows
    drained = [w for w, wk in auto.workers.items()
               if wk.lifecycle == "drained"]
    assert drained
    for wid in drained:
        worker = auto.workers[wid]
        assert wid not in auto.controller.live_workers
        assert worker.queued_commands == 0
        assert not worker._grants

    # zero lost or duplicated task completions: identical executed-task
    # count and bit-identical results/values vs the fixed-size run
    assert (auto.metrics.count("tasks_executed")
            == fixed.metrics.count("tasks_executed"))
    assert computed_values(auto) == computed_values(fixed)


def test_drain_respects_decentralized_window_boundary():
    """A DRAINING worker holding part of an open self-schedule window is
    never evicted mid-window: the drain waits for the boundary quiesce.
    The whole run staying value-identical is the strongest statement
    that no granted instance was lost to the drain."""
    fixed = run_step(step=0.5, mode="decentralized", iterations=60)
    auto = run_step(step=0.5, mode="decentralized", iterations=60,
                    autoscale=True)
    assert computed_values(auto) == computed_values(fixed)


# ---------------------------------------------------------------------------
# Policy unit behavior
# ---------------------------------------------------------------------------
def test_policy_validates_band_and_bounds():
    with pytest.raises(ValueError):
        TargetUtilizationPolicy(low=1.2)
    with pytest.raises(ValueError):
        TargetUtilizationPolicy(high=0.9)
    with pytest.raises(ValueError):
        TargetUtilizationPolicy(min_workers=0)
    with pytest.raises(ValueError):
        TargetUtilizationPolicy(min_workers=8, max_workers=4)


def test_policy_calibrates_then_tracks_band():
    from repro.sched.rebalance import LoadTracker

    tracker = LoadTracker()
    policy = TargetUtilizationPolicy(warmup=2, cooldown=0)
    live = [0, 1]
    # ramping EWMA: no decision until the mean settles within tolerance
    for value in (1.0, 3.0, 3.8):
        for w in live:
            tracker.observe(w, value, {})
        assert policy.decide(tracker, live) == 0
    assert policy.target_load is None  # still drifting >5% per round
    for _ in range(5):  # EWMA converges toward 3.9; drift falls inside 5%
        for w in live:
            tracker.observe(w, 3.9, {})
        assert policy.decide(tracker, live) == 0
    assert policy.target_load is not None  # settled → calibrated
    target = policy.target_load
    # a 2x step in observed load demands 2x the workers
    for _ in range(6):
        for w in live:
            tracker.observe(w, target * 2.0, {})
    assert policy.decide(tracker, live) == 2


def test_policy_cooldown_suppresses_consecutive_decisions():
    from repro.sched.rebalance import LoadTracker

    tracker = LoadTracker()
    policy = TargetUtilizationPolicy(target_load=1.0, warmup=1, cooldown=2)
    live = [0, 1]
    for _ in range(4):
        for w in live:
            tracker.observe(w, 2.0, {})
    assert policy.decide(tracker, live) == 2
    assert policy.decide(tracker, live) == 0  # cooling down
    assert policy.decide(tracker, live) == 0  # cooling down
    assert policy.decide(tracker, live) == 2  # cooldown elapsed
