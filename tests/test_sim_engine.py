"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(0.3, order.append, "c")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == pytest.approx(0.3)


def test_simultaneous_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_events_are_skipped():
    sim = Simulator()
    seen = []
    event = sim.schedule(0.1, seen.append, "cancelled")
    sim.schedule(0.2, seen.append, "kept")
    event.cancel()
    sim.run()
    assert seen == ["kept"]
    assert sim.events_run == 1


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert seen == ["early", "late"]


def test_run_until_advances_clock_on_empty_heap():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == pytest.approx(3.0)


def test_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]
    sim.run()
    assert len(seen) == 10


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == pytest.approx(0.4)


def test_step_returns_false_when_drained():
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(0.1, lambda: None)
    sim.schedule(0.5, lambda: None)
    event.cancel()
    assert sim.peek_time() == pytest.approx(0.5)


def test_schedule_many_preserves_iteration_order():
    sim = Simulator()
    seen = []
    events = sim.schedule_many(0.5, ((seen.append, i) for i in range(6)))
    assert len(events) == 6
    assert all(e.time == pytest.approx(0.5) for e in events)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]


def test_schedule_many_zero_delay_interleaves_with_schedule():
    # zero-delay events (FIFO deque) and a same-time heap event must still
    # run in global schedule order — the seq tie-break crosses both queues
    sim = Simulator()
    seen = []
    sim.schedule_many(0.0, ((seen.append, "batch0"), (seen.append, "batch1")))
    sim.schedule(0.0, seen.append, "heap")
    sim.run()
    assert seen == ["batch0", "batch1", "heap"]


def test_schedule_many_events_are_cancellable():
    sim = Simulator()
    seen = []
    events = sim.schedule_many(0.1, ((seen.append, i) for i in range(4)))
    events[1].cancel()
    events[3].cancel()
    sim.run()
    assert seen == [0, 2]


def test_schedule_many_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_many(-0.1, [(lambda: None,)])


def test_halt_stops_run_immediately():
    sim = Simulator()
    seen = []
    sim.schedule(0.1, seen.append, "first")
    sim.schedule(0.2, lambda: (seen.append("stop"), sim.halt()))
    sim.schedule(0.3, seen.append, "never")
    sim.run()
    assert seen == ["first", "stop"]
    assert sim.now == pytest.approx(0.2)
    # the remaining event survives the halt and runs on the next call
    sim.run()
    assert seen == ["first", "stop", "never"]


def test_halt_stops_zero_delay_drain():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, lambda: (seen.append("a"), sim.halt()))
    sim.schedule(0.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b"]


def test_halt_respected_under_max_events_budget():
    sim = Simulator()
    seen = []
    sim.schedule(0.1, lambda: (seen.append(0), sim.halt()))
    for i in range(1, 5):
        sim.schedule(0.1 * (i + 1), seen.append, i)
    sim.run(max_events=10)
    assert seen == [0]


def test_halt_does_not_leak_into_next_run():
    sim = Simulator()
    sim.schedule(0.1, sim.halt)
    sim.run()
    seen = []
    sim.schedule(0.1, seen.append, "later")
    sim.run()  # a fresh run() clears the stale halt flag
    assert seen == ["later"]


def test_run_until_with_pending_zero_delay_past_deadline():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()  # now == 1.0
    seen = []
    sim.schedule(0.0, seen.append, "due-now")
    sim.run(until=0.5)  # deadline already behind now: nothing may run
    assert seen == []
    assert sim.now == pytest.approx(1.0)  # the clock must never rewind
    sim.run(until=1.0)
    assert seen == ["due-now"]


def test_run_until_behind_now_never_rewinds_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(2.0, lambda: None)  # heap (non-zero-delay) pending work
    sim.run(until=0.25)
    assert sim.now == pytest.approx(1.0)
    sim.run(until=0.25, max_events=5)
    assert sim.now == pytest.approx(1.0)


def test_determinism_across_identical_runs():
    def run_once():
        sim = Simulator()
        log = []

        def tick(n):
            log.append((round(sim.now, 9), n))
            if n < 20:
                sim.schedule(0.01 * ((n * 7) % 5 + 1), tick, n + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        return log

    assert run_once() == run_once()
