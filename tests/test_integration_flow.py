"""End-to-end dataflow integration tests on the full cluster.

These exercise the whole stack — driver program, controller scheduling and
templates, worker execution, direct data exchange — and check *values*, not
just timing: the templated execution must produce exactly what a sequential
interpreter of the program produces.
"""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    combine_registry,
    reference_execute,
    run_program,
    simple_define,
    worker_values,
)


def diamond_blocks():
    """Seed two inputs; a diamond of combines; an in-place accumulator."""
    seed_block = BlockSpec("seed", [
        StageSpec("seed", [
            LogicalTask("seed", read=(), write=(1,), param_slot="a"),
            LogicalTask("seed", read=(), write=(2,), param_slot="b"),
            LogicalTask("seed", read=(), write=(9,), param_slot="acc"),
        ]),
    ])
    diamond_block = BlockSpec("diamond", [
        StageSpec("left", [LogicalTask("combine", read=(1,), write=(3,))]),
        StageSpec("right", [LogicalTask("combine", read=(2,), write=(4,))]),
        StageSpec("join", [LogicalTask("combine", read=(3, 4, 9), write=(9,))]),
    ], returns={"acc": 9})
    return seed_block, diamond_block


def diamond_program(iterations=4, params=None):
    seed_block, diamond_block = diamond_blocks()
    params = params or {"a": 5, "b": 11, "acc": 1}
    objects = {oid: (f"o{oid}", 8) for oid in (1, 2, 3, 4, 9)}

    def program(job):
        yield job.define(simple_define(objects))
        yield job.run(seed_block, params)
        for _ in range(iterations):
            yield job.run(diamond_block)

    return program, seed_block, diamond_block, params


def reference_final(iterations=4):
    program, seed_block, diamond_block, params = diamond_program(iterations)
    blocks = [(seed_block, params)] + [(diamond_block, {})] * iterations
    return reference_execute(blocks)


@pytest.mark.parametrize("use_templates", [True, False])
@pytest.mark.parametrize("num_workers", [1, 2, 3])
def test_matches_sequential_reference(use_templates, num_workers):
    program, *_ = diamond_program(iterations=4)
    cluster = run_program(program, combine_registry(),
                          num_workers=num_workers,
                          use_templates=use_templates)
    expected = reference_final(iterations=4)
    values = worker_values(cluster, [1, 2, 3, 4, 9])
    assert values == {oid: expected[oid] for oid in values}


def test_returned_values_reach_driver():
    program, seed_block, diamond_block, params = diamond_program(2)
    seen = []

    def checking_program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in (1, 2, 3, 4, 9)}))
        yield job.run(seed_block, params)
        for _ in range(3):
            res = yield job.run(diamond_block)
            seen.append(res["acc"])

    cluster = run_program(checking_program, combine_registry(), 2)
    reference = reference_execute(
        [(seed_block, params)] + [(diamond_block, {})] * 3)
    # each iteration's returned accumulator matches the reference prefix
    prefix = reference_execute([(seed_block, params), (diamond_block, {})])
    assert seen[-1] == reference[9]
    assert len(seen) == 3 and seen[0] == prefix[9]


def test_template_phase_progression():
    program, *_ = diamond_program(iterations=6)
    cluster = run_program(program, combine_registry(), 2)
    controller = cluster.controller
    assert controller.phase["diamond"] == controller.PHASE_WT_INSTALLED
    metrics = cluster.metrics
    # 6 iterations: capture, generate, install, then 3 templated runs
    template_runs = [iv for iv in metrics.intervals["block"]
                     if iv.labels["block_id"] == "diamond"
                     and iv.labels["mode"] == "template"]
    central_runs = [iv for iv in metrics.intervals["block"]
                    if iv.labels["block_id"] == "diamond"
                    and iv.labels["mode"] == "central"]
    assert len(central_runs) == 3
    assert len(template_runs) == 3


def test_steady_state_message_count_is_n_plus_1():
    """§2.2: once templates are installed and validated, one iteration
    costs one driver→controller message plus one message per worker."""
    program, *_ = diamond_program(iterations=10)
    registry = combine_registry()
    cluster = NimbusCluster(2, program, registry=registry, use_templates=True)
    counts = {}
    original = cluster.network.transmit

    def counting(src, dst, msg, depart):
        counts.setdefault(type(msg).__name__, 0)
        counts[type(msg).__name__] += 1
        original(src, dst, msg, depart)

    cluster.network.transmit = counting
    cluster.run_until_finished(max_seconds=1e5)

    # 11 submissions total: 2 SubmitBlock (seed capture + diamond capture),
    # 9 InstantiateBlock
    assert counts["SubmitBlock"] == 2
    assert counts["InstantiateBlock"] == 9
    # steady-state diamond iterations (7 of 10) cost one message per worker
    assert counts["InstantiateWorkerTemplate"] == 7 * 2
    # worker halves installed once per (block, worker with entries)
    assert counts["InstallWorkerTemplate"] >= 2
    # central dispatch happens only during installation-phase iterations
    assert counts["DispatchCommand"] > 0


def test_non_blocking_posts_equal_blocking_results():
    seed_block, diamond_block = diamond_blocks()
    objects = {oid: (f"o{oid}", 8) for oid in (1, 2, 3, 4, 9)}
    params = {"a": 2, "b": 3, "acc": 1}

    def make_program(blocking):
        def program(job):
            yield job.define(simple_define(objects))
            yield job.run(seed_block, params)
            if blocking:
                for _ in range(5):
                    yield job.run(diamond_block)
            else:
                for _ in range(5):
                    job.post(diamond_block)
                yield job.drain()
        return program

    a = run_program(make_program(True), combine_registry(), 2)
    b = run_program(make_program(False), combine_registry(), 2)
    assert (worker_values(a, [9]) == worker_values(b, [9]))


def test_single_worker_cluster_works():
    program, *_ = diamond_program(iterations=3)
    cluster = run_program(program, combine_registry(), num_workers=1)
    assert cluster.job.finished


def test_deterministic_across_runs():
    program, *_ = diamond_program(iterations=5)
    a = run_program(program, combine_registry(), 3, seed=7)
    program2, *_ = diamond_program(iterations=5)
    b = run_program(program2, combine_registry(), 3, seed=7)
    assert a.sim.now == b.sim.now
    assert a.sim.events_run == b.sim.events_run
