"""Controller-level behavior tests: placement, checkpoint protocol,
validation-state transitions between alternating blocks."""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import combine_registry, simple_define


def test_define_objects_honors_placement_hints():
    def program(job):
        yield job.define([(1, "a", 0, 8, 1), (2, "b", 0, 8, 0)])

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    controller = cluster.controller
    assert controller.placement.home(1) == 1
    assert controller.placement.home(2) == 0
    assert controller.directory.holders_of_latest(1) == [1]
    # the objects physically exist at their homes
    assert 1 in cluster.workers[1].store
    assert 2 in cluster.workers[0].store


def test_assign_worker_anchor_rules():
    cluster = NimbusCluster(3, lambda job: iter(()),
                            registry=combine_registry())
    controller = cluster.controller
    controller.placement.place(1, worker=2)
    controller.placement.place(5, worker=1)
    # write anchor wins
    assert controller._assign_worker(read=(5,), write=(1,)) == 2
    # read anchor as fallback
    assert controller._assign_worker(read=(5,), write=()) == 1
    # no objects at all: deterministic fallback
    assert controller._assign_worker(read=(), write=()) == 0


def test_checkpoint_commits_only_after_all_acks():
    blocks = [BlockSpec("b", [StageSpec("s", [
        LogicalTask("seed", read=(), write=(1,), param_slot="v")])])]

    def program(job):
        yield job.define(simple_define({1: ("x", 8)}))
        for _ in range(2):
            yield job.run(blocks[0], {"v": 1})

    cluster = NimbusCluster(3, program, registry=combine_registry(),
                            checkpoint_every=1)
    cluster.run_until_finished(max_seconds=1e4)
    # the program is done but checkpoint traffic may still be in flight
    cluster.sim.run(until=cluster.sim.now + 1.0)
    controller = cluster.controller
    assert controller._last_committed_checkpoint is not None
    # a stale/duplicate ack for an old checkpoint is ignored
    before = controller._last_committed_checkpoint
    controller._on_checkpoint_ack(P.CheckpointAck(0, checkpoint_id=-5))
    assert controller._last_committed_checkpoint == before


def test_alternating_blocks_never_auto_validate():
    """Auto-validation requires instantiating the *same* template again;
    alternating between two blocks always takes the full-validation path
    (Table 2's 7.3 µs case)."""
    block_a = BlockSpec("a", [StageSpec("s", [
        LogicalTask("combine", read=(1,), write=(2,))])])
    block_b = BlockSpec("b", [StageSpec("s", [
        LogicalTask("combine", read=(2,), write=(1,))])])

    def program(job):
        yield job.define(simple_define({1: ("x", 8), 2: ("y", 8)}))
        for _ in range(8):
            yield job.run(block_a)
            yield job.run(block_b)

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    metrics = cluster.metrics
    assert metrics.count("auto_validations") == 0
    assert metrics.count("full_validations") >= 8


def test_repeating_block_auto_validates_after_install():
    block = BlockSpec("a", [StageSpec("s", [
        LogicalTask("combine", read=(1,), write=(1,))])])

    def program(job):
        yield job.define(simple_define({1: ("x", 8)}))
        for _ in range(10):
            yield job.run(block)

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    metrics = cluster.metrics
    # 10 runs: 3 install phases, 1 full validation, 6 auto
    assert metrics.count("full_validations") == 1
    assert metrics.count("auto_validations") == 6


def test_prev_block_key_drives_patch_cache_keying():
    """Same violations after different predecessors are cached separately
    (a patch that is correct after block A may be wrong after block B)."""
    cluster = NimbusCluster(2, lambda job: iter(()),
                            registry=combine_registry())
    cache = cluster.controller.patch_cache
    from repro.core.patching import build_patch
    from repro.nimbus.data import LogicalObject, ObjectDirectory
    directory = ObjectDirectory()
    directory.register(LogicalObject(1, "x", 0, 8), home=0)
    patch = build_patch([(1, 1)], directory, {})
    cache.store("after-a", ("blk", 0), patch)
    assert cache.lookup("after-b", ("blk", 0), [(1, 1)], directory) is None
    assert cache.lookup("after-a", ("blk", 0), [(1, 1)], directory) is patch


def test_water_task_count_estimate_matches_execution():
    from repro.apps import WaterApp, WaterSpec

    spec = WaterSpec(num_workers=4, partitions_per_worker=2, scale=0.002,
                     frame_duration=0.004, reseed_every=3)
    app = WaterApp(spec)
    cluster = NimbusCluster(4, app.program(), registry=app.registry)
    cluster.run_until_finished(max_seconds=1e6)
    executed = cluster.metrics.count("tasks_executed")
    init_tasks = app.init_block.num_tasks
    estimate = app.expected_tasks_per_frame()
    # the analytic estimate tracks the actual execution within 15%
    # (it approximates the reduce-tree task counts)
    assert abs((executed - init_tasks) - estimate) / estimate < 0.15


def test_controller_counts_scheduled_tasks():
    block = BlockSpec("a", [StageSpec("s", [
        LogicalTask("combine", read=(), write=(1,)),
        LogicalTask("combine", read=(), write=(2,))])])

    def program(job):
        yield job.define(simple_define({1: ("x", 8), 2: ("y", 8)}))
        for _ in range(5):
            yield job.run(block)

    cluster = NimbusCluster(2, program, registry=combine_registry())
    cluster.run_until_finished(max_seconds=1e4)
    assert cluster.metrics.count("tasks_scheduled") == 10
    assert cluster.metrics.count("tasks_executed") == 10
