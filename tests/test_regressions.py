"""Regression tests pinning bugs found during development.

Both were discovered by the hypothesis property suite
(tests/test_properties.py) and are kept here as explicit, minimal
reproducers with the story of what went wrong.
"""

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    combine_registry,
    reference_execute,
    simple_define,
    worker_values,
)

OIDS = list(range(1, 5))


def run_migrating(block, move, iterations=6, num_workers=3):
    seed_block = BlockSpec("seedblk", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot=f"v{oid}")
        for oid in OIDS
    ])])
    params = {f"v{oid}": 1 for oid in OIDS}
    expected = reference_execute(
        [(seed_block, params)] + [(block, {})] * iterations)
    box = {}

    def migrate(controller):
        controller.edit_threshold = 1.0
        controller.migrate_tasks(block.block_id, [move])

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        yield job.run(seed_block, params)
        for i in range(iterations):
            if i == 4:
                box["cluster"].controller.deliver(P.ManagerDirective(migrate))
            yield job.run(block)

    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(), use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    return cluster, expected


def test_bug1_migration_to_uninstalled_worker_does_not_double_apply():
    """Bug 1: migrating a task to a worker that had no entries in the
    template shipped the already-edited controller half at install time
    AND re-applied the pending edits at instantiation, corrupting the
    entry array ("append index != array length"). Fixed by dropping
    pending edits for a worker when its half is freshly installed."""
    block = BlockSpec("mig1", [StageSpec("s0", [
        LogicalTask("combine", read=(1,), write=(2,)),
    ])])
    # worker 2 has no entries in this template until the migration
    cluster, expected = run_migrating(block, move=(0, 2))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}
    wts_key = ("mig1", cluster.controller.current_version["mig1"])
    wts = cluster.controller.worker_templates[wts_key]
    assert wts.task_locations[0][0] == 2


def test_bug2_migrating_read_modify_write_task_does_not_deadlock():
    """Bug 2: migrating a task that reads and writes the same object put
    the result RECV (low index) before the input SEND (appended) on the
    source worker; the conflict tracker then ordered the send after the
    recv while the recv's data transitively required the send — a cycle.
    Fixed by two-pass batch resolution with forward before-references and
    intra-batch tracker suppression."""
    block = BlockSpec("mig2", [StageSpec("s0", [
        LogicalTask("combine", read=(2,), write=(2,)),  # read-modify-write
        LogicalTask("combine", read=(), write=(1,)),
    ])])
    cluster, expected = run_migrating(block, move=(0, 0))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}


def test_bug3_intermediate_result_not_marked_final_holder():
    """Bug 3: when a later task overwrites the migrated task's result, the
    destination's copied-back value is an *intermediate* version; marking
    the destination a final holder let later readers patch stale data."""
    block = BlockSpec("mig3", [StageSpec("s0", [
        LogicalTask("combine", read=(1,), write=(2,)),   # migrated
        LogicalTask("combine", read=(2,), write=(2,)),   # overwrites result
    ])])
    cluster, expected = run_migrating(block, move=(0, 2))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}
