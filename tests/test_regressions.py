"""Regression tests pinning bugs found during development.

The migration bugs (1-3) were discovered by the hypothesis property
suite (tests/test_properties.py); the error-reporting regressions (4)
came out of the multi-tenant work, where bare ``KeyError: <id>``
messages made cross-job failures undebuggable. Each is kept as an
explicit, minimal reproducer with the story of what went wrong.
"""

import pytest

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P

from .helpers import (
    combine_registry,
    reference_execute,
    run_lr,
    simple_define,
    worker_values,
)

OIDS = list(range(1, 5))


def run_migrating(block, move, iterations=6, num_workers=3):
    seed_block = BlockSpec("seedblk", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot=f"v{oid}")
        for oid in OIDS
    ])])
    params = {f"v{oid}": 1 for oid in OIDS}
    expected = reference_execute(
        [(seed_block, params)] + [(block, {})] * iterations)
    box = {}

    def migrate(controller):
        controller.edit_threshold = 1.0
        controller.migrate_tasks(block.block_id, [move])

    def program(job):
        yield job.define(simple_define(
            {oid: (f"o{oid}", 8) for oid in OIDS}))
        yield job.run(seed_block, params)
        for i in range(iterations):
            if i == 4:
                box["cluster"].controller.deliver(P.ManagerDirective(migrate))
            yield job.run(block)

    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(), use_templates=True)
    box["cluster"] = cluster
    cluster.run_until_finished(max_seconds=1e6)
    return cluster, expected


def test_bug1_migration_to_uninstalled_worker_does_not_double_apply():
    """Bug 1: migrating a task to a worker that had no entries in the
    template shipped the already-edited controller half at install time
    AND re-applied the pending edits at instantiation, corrupting the
    entry array ("append index != array length"). Fixed by dropping
    pending edits for a worker when its half is freshly installed."""
    block = BlockSpec("mig1", [StageSpec("s0", [
        LogicalTask("combine", read=(1,), write=(2,)),
    ])])
    # worker 2 has no entries in this template until the migration
    cluster, expected = run_migrating(block, move=(0, 2))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}
    wts_key = ("mig1", cluster.controller.current_version["mig1"])
    wts = cluster.controller.worker_templates[wts_key]
    assert wts.task_locations[0][0] == 2


def test_bug2_migrating_read_modify_write_task_does_not_deadlock():
    """Bug 2: migrating a task that reads and writes the same object put
    the result RECV (low index) before the input SEND (appended) on the
    source worker; the conflict tracker then ordered the send after the
    recv while the recv's data transitively required the send — a cycle.
    Fixed by two-pass batch resolution with forward before-references and
    intra-batch tracker suppression."""
    block = BlockSpec("mig2", [StageSpec("s0", [
        LogicalTask("combine", read=(2,), write=(2,)),  # read-modify-write
        LogicalTask("combine", read=(), write=(1,)),
    ])])
    cluster, expected = run_migrating(block, move=(0, 0))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}


def test_bug4_unknown_object_placement_error_names_job_and_ids():
    """Bug 4 (multi-tenant hardening): a task referencing an object its job
    never defined used to surface as a bare ``KeyError: <oid>`` from the
    placement map — useless when several jobs share the controller. The
    error must now name the job, the job-local id, and the global id."""
    cluster = run_lr(workers=2, iterations=2)
    with pytest.raises(KeyError, match=(
            r"job 0: cannot place a task touching unknown object id 999999 "
            r"\(global id 999999\); the job never defined it")):
        cluster.controller._assign_worker(read=(999999,))


def test_bug4_unknown_block_instantiation_error_lists_installed_blocks():
    """Instantiating a block with no installed controller template must
    name the job and enumerate what IS installed, not KeyError on a dict."""
    cluster = run_lr(workers=2, iterations=2)
    controller = cluster.controller
    msg = P.InstantiateBlock("ghost", 0, 0, {})
    with pytest.raises(KeyError) as err:
        controller._process_instantiate(controller._job0, msg)
    text = str(err.value)
    assert "job 0: no controller template installed for block 'ghost'" in text
    assert "installed blocks:" in text
    assert "lr.iteration" in text  # the real suspects are listed


def test_bug4_migration_errors_name_the_job():
    """migrate_tasks must distinguish \"no such job\" from \"job exists but
    the block's template was never captured\" — and say which job."""
    cluster = run_lr(workers=2, iterations=2)
    with pytest.raises(KeyError, match=(
            r"cannot migrate tasks of block 'x': job 99 is not registered "
            r"\(live jobs: \[0\]\)")):
        cluster.controller.migrate_tasks("x", [], job_id=99)
    with pytest.raises(KeyError, match=(
            r"job 0: cannot migrate tasks of block 'ghost': no controller "
            r"template captured yet")):
        cluster.controller.migrate_tasks("ghost", [], job_id=0)


def test_bug4_worker_unknown_template_error_names_job_and_version():
    """A worker asked to instantiate a template it never had installed
    must report the worker, the requesting job, and the (block, version)
    pair — the raw dict KeyError hid all three."""
    cluster = run_lr(workers=2, iterations=2)
    worker = cluster.workers[0]
    msg = P.InstantiateWorkerTemplate("ghost", 0, instance_id=10**9,
                                      cid_base=10**9, params={}, block_seq=0,
                                      job_id=7)
    with pytest.raises(KeyError) as err:
        worker._on_instantiate_template(msg)
    text = str(err.value)
    assert ("worker 0: job 7 asked to instantiate template ('ghost', v0) "
            "which was never installed here") in text


def test_bug3_intermediate_result_not_marked_final_holder():
    """Bug 3: when a later task overwrites the migrated task's result, the
    destination's copied-back value is an *intermediate* version; marking
    the destination a final holder let later readers patch stale data."""
    block = BlockSpec("mig3", [StageSpec("s0", [
        LogicalTask("combine", read=(1,), write=(2,)),   # migrated
        LogicalTask("combine", read=(2,), write=(2,)),   # overwrites result
    ])])
    cluster, expected = run_migrating(block, move=(0, 2))
    values = worker_values(cluster, OIDS)
    assert values == {oid: expected.get(oid) for oid in OIDS}
