"""Unit tests for RNG substreams and metrics collection."""

import pytest

from repro.sim.metrics import Metrics
from repro.sim.rng import SeedSequence


class TestSeedSequence:
    def test_same_name_same_stream(self):
        seeds = SeedSequence(42)
        first = [seeds.stream("a").random() for _ in range(3)]
        other = SeedSequence(42)
        assert [other.stream("a").random() for _ in range(3)] == first

    def test_streams_are_independent_of_request_order(self):
        forward = SeedSequence(7)
        fa = forward.stream("a").random()
        fb = forward.stream("b").random()
        backward = SeedSequence(7)
        bb = backward.stream("b").random()
        ba = backward.stream("a").random()
        assert (fa, fb) == (ba, bb)

    def test_different_names_differ(self):
        seeds = SeedSequence(0)
        assert seeds.stream("x").random() != seeds.stream("y").random()

    def test_different_roots_differ(self):
        assert (SeedSequence(1).stream("a").random()
                != SeedSequence(2).stream("a").random())

    def test_stream_is_cached(self):
        seeds = SeedSequence(0)
        assert seeds.stream("a") is seeds.stream("a")


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.incr("tasks")
        metrics.incr("tasks", 4)
        assert metrics.count("tasks") == 5
        assert metrics.count("missing") == 0

    def test_series(self):
        metrics = Metrics()
        metrics.sample("queue", 0.0, 1.0)
        metrics.sample("queue", 1.0, 3.0)
        assert metrics.series["queue"] == [(0.0, 1.0), (1.0, 3.0)]

    def test_intervals_and_durations(self):
        metrics = Metrics()
        metrics.begin("block", 1.0, key=1, block_id="b")
        metrics.begin("block", 2.0, key=2, block_id="b")
        metrics.end("block", 4.0, key=1, result="x")
        metrics.end("block", 5.0, key=2)
        assert metrics.durations("block") == [3.0, 3.0]
        first = metrics.intervals["block"][0]
        assert first.labels == {"block_id": "b", "result": "x"}

    def test_end_without_begin_raises(self):
        metrics = Metrics()
        with pytest.raises(KeyError):
            metrics.end("nope", 1.0)

    def test_open_interval_duration_raises(self):
        metrics = Metrics()
        interval = metrics.begin("open", 0.0)
        with pytest.raises(ValueError):
            _ = interval.duration

    def test_label_values(self):
        metrics = Metrics()
        metrics.begin("i", 0.0, key=1)
        metrics.end("i", 1.0, key=1, n=10)
        metrics.begin("i", 1.0, key=2)
        metrics.end("i", 2.0, key=2, n=20)
        assert metrics.label_values("i", "n") == [10, 20]
