"""Tests for the analysis layer: breakdowns, throughput, rendering."""

import pytest

from repro.analysis import (
    iteration_breakdowns,
    mean_iteration_time,
    render_bars,
    render_series,
    render_table,
    task_throughput,
)
from repro.analysis.breakdown import mean_compute_time
from repro.sim.metrics import Metrics


def synthetic_metrics(iteration_times, compute=0.04, tasks=100,
                      block_id="iter"):
    """Build metrics as the controller/driver would for a steady run."""
    metrics = Metrics()
    t = 0.0
    for i, duration in enumerate(iteration_times, start=1):
        metrics.begin("driver_block", t, key=i, block_id=block_id,
                      request_id=i)
        metrics.begin("block", t, key=i, block_id=block_id, seq=i,
                      mode="template", num_tasks=tasks, request_id=i)
        t += duration
        metrics.end("block", t, key=i, compute=compute, results={})
        metrics.end("driver_block", t, key=i, results={})
    return metrics


class TestBreakdowns:
    def test_joins_driver_and_controller_views(self):
        metrics = synthetic_metrics([0.1, 0.1, 0.1])
        rows = iteration_breakdowns(metrics)
        assert len(rows) == 3
        assert rows[0].total == pytest.approx(0.1)
        assert rows[0].compute == pytest.approx(0.04)
        assert rows[0].control == pytest.approx(0.06)
        assert rows[0].num_tasks == 100
        assert rows[0].mode == "template"

    def test_control_never_negative(self):
        metrics = synthetic_metrics([0.02], compute=0.05)
        rows = iteration_breakdowns(metrics)
        assert rows[0].control == 0.0

    def test_filter_by_block(self):
        metrics = synthetic_metrics([0.1])
        assert iteration_breakdowns(metrics, block_id="other") == []

    def test_mean_iteration_time_steady_state(self):
        # warm-up 1s, then 0.1s steady iterations
        metrics = synthetic_metrics([1.0, 0.1, 0.1, 0.1, 0.1])
        assert mean_iteration_time(metrics, "iter", skip=1) == pytest.approx(0.1)

    def test_mean_iteration_time_without_skip_spans_all(self):
        metrics = synthetic_metrics([0.2, 0.2])
        assert mean_iteration_time(metrics, "iter") == pytest.approx(0.2)

    def test_mean_iteration_requires_enough_samples(self):
        metrics = synthetic_metrics([0.1])
        with pytest.raises(ValueError):
            mean_iteration_time(metrics, "iter", skip=5)

    def test_task_throughput(self):
        metrics = synthetic_metrics([0.1, 0.1, 0.1], tasks=50)
        assert task_throughput(metrics, "iter", skip=1) == pytest.approx(500.0)

    def test_mean_compute_time(self):
        metrics = synthetic_metrics([0.1, 0.1], compute=0.03)
        assert mean_compute_time(metrics, "iter") == pytest.approx(0.03)


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table("T1", ["name", "value"],
                           [["a", 1.0], ["long-name", 123456.0]])
        lines = out.splitlines()
        assert lines[0] == "=== T1 ==="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all data rows have the same width
        assert len(lines[3]) == len(lines[4])

    def test_render_table_float_formats(self):
        out = render_table("T", ["v"], [[0.0000001], [0.5], [12345678.0], [0]])
        assert "1.000e-07" in out
        assert "0.5" in out
        assert "1.235e+07" in out

    def test_render_series(self):
        out = render_series("Fig", "workers", [20, 50],
                            {"nimbus": [0.21, 0.10], "spark": [0.44, 0.75]},
                            unit="s")
        assert "workers" in out
        assert "nimbus (s)" in out
        assert "0.21" in out and "0.75" in out

    def test_render_bars(self):
        out = render_bars("F", ["mpi", "nimbus"], [1.0, 2.0], unit="s")
        lines = out.splitlines()
        assert lines[1].count("#") * 2 <= lines[2].count("#") + 1

    def test_render_bars_empty_safe(self):
        assert render_bars("F", [], []).startswith("=== F ===")
