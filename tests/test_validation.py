"""Unit tests for template validation (§4.2, Table 2)."""

from repro.core.controller_template import ControllerTemplate
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.core.validation import (
    ValidationState,
    brute_force_validate,
    full_validate,
    validate,
)
from repro.core.worker_template import generate_worker_templates
from repro.nimbus.data import LogicalObject, ObjectDirectory


def make_setup():
    """Two workers; each reads its partition plus the shared object 10."""
    block = BlockSpec("b", [
        StageSpec("s", [LogicalTask("g", read=(1, 10), write=(2,)),
                        LogicalTask("g", read=(3, 10), write=(4,))]),
        StageSpec("u", [LogicalTask("u", read=(2, 4), write=(10,))]),
    ])
    template = ControllerTemplate.from_block(block, [0, 1, 0])
    wts = generate_worker_templates(template, {})
    directory = ObjectDirectory()
    for oid, home in ((1, 0), (2, 0), (3, 1), (4, 1), (10, 0)):
        directory.register(LogicalObject(oid, f"o{oid}", 0, 8), home)
    return wts, directory


def test_full_validate_detects_missing_shared_object():
    wts, directory = make_setup()
    violations = full_validate(wts, directory)
    assert violations == [(1, 10)]  # worker 1 lacks the shared object


def test_full_validate_passes_after_copy():
    wts, directory = make_setup()
    directory.record_copy(10, 1)
    assert full_validate(wts, directory) == []


def test_full_validate_detects_stale_replica():
    wts, directory = make_setup()
    directory.record_copy(10, 1)
    directory.record_write(10, 0)  # new version only on worker 0
    assert full_validate(wts, directory) == [(1, 10)]


def test_incremental_matches_brute_force_across_20_random_seeds():
    """Property: the dirty-set incremental path in ``full_validate`` is
    semantically identical to the brute-force precondition scan, under
    random interleavings of writes, copies, evictions, and validations
    (which exercise cold cache, empty dirty set, and partial dirty set)."""
    import random

    workers = (0, 1)
    oids = (1, 2, 3, 4, 10)
    for seed in range(20):
        rng = random.Random(seed)
        wts, directory = make_setup()
        for _step in range(60):
            op = rng.randrange(3)
            if op == 0:
                directory.record_write(rng.choice(oids), rng.choice(workers))
            elif op == 1:
                directory.record_copy(rng.choice(oids), rng.choice(workers))
            else:
                directory.evict_worker(rng.choice(workers))
            # validate on a random cadence so the dirty set between
            # consecutive validations varies from empty to everything
            if rng.random() < 0.5:
                assert full_validate(wts, directory) == \
                    brute_force_validate(wts, directory), f"seed {seed}"
        assert full_validate(wts, directory) == \
            brute_force_validate(wts, directory), f"seed {seed}"


def test_violations_sorted_deterministically():
    wts, directory = make_setup()
    directory.record_write(1, 1)  # worker 0's partition moved away
    directory.evict_worker(0)
    violations = full_validate(wts, directory)
    assert violations == sorted(violations)


class TestValidationState:
    def test_initially_not_auto(self):
        state = ValidationState()
        assert not state.auto_validates(("b", 0))

    def test_auto_after_same_key(self):
        state = ValidationState()
        state.note_instantiation(("b", 0))
        assert state.auto_validates(("b", 0))

    def test_not_auto_after_different_key(self):
        state = ValidationState()
        state.note_instantiation(("b", 0))
        assert not state.auto_validates(("b", 1))
        assert not state.auto_validates(("other", 0))

    def test_invalidate_clears_auto(self):
        state = ValidationState()
        state.note_instantiation(("b", 0))
        state.invalidate()
        assert not state.auto_validates(("b", 0))

    def test_block_transition_then_return(self):
        state = ValidationState()
        state.note_instantiation(("inner", 0))
        state.note_instantiation(("outer", 0))
        # returning to the inner loop requires a full validation
        assert not state.auto_validates(("inner", 0))


def test_validate_uses_auto_path():
    wts, directory = make_setup()
    state = ValidationState()
    state.note_instantiation(wts.key)
    # even with a violation present, auto-validation skips the check —
    # the contract is that note_instantiation is only called when the
    # template's own delta was applied (closure guarantees preconditions)
    result = validate(wts, directory, state)
    assert result.auto and result.ok


def test_validate_full_path_reports_violations():
    wts, directory = make_setup()
    state = ValidationState()
    result = validate(wts, directory, state)
    assert not result.auto
    assert result.violations == [(1, 10)]
    assert not result.ok


def test_closure_makes_template_self_validating():
    """After applying a template's own delta, full validation passes —
    the §4.2 postcondition-closure property, checked explicitly."""
    wts, directory = make_setup()
    # bring the system to a state where the template can run
    directory.record_copy(10, 1)
    assert full_validate(wts, directory) == []
    # run the template: apply its cached directory delta
    wts.delta.apply(directory)
    # preconditions must hold again without any patch
    assert full_validate(wts, directory) == []
