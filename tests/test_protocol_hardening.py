"""Property tests: the hardened protocol masks chaos from the application.

The central claim: under drops, delays, duplicates, and reorders, a Nimbus
run produces **bit-identical results and control-plane decisions** to a
fault-free run — the reliable channel layer absorbs every fault — while
the protocol counters prove the faults actually happened and were handled.
"""

import pytest

from repro.chaos import FaultPlan
from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P
from repro.sim.actor import Actor, Message
from repro.sim.engine import Simulator
from repro.sim.metrics import Metrics

from .helpers import (
    combine_registry,
    reference_execute,
    simple_define,
    worker_values,
)

DATA = [1, 2, 3]
OUT = [11, 12, 13]
ACC = 30
ITERATIONS = 4

#: counters that capture the controller's template decisions; chaos must
#: not change a single one of them
TEMPLATE_COUNTERS = (
    "controller_templates_installed", "worker_templates_installed",
    "template_instantiations", "auto_validations", "full_validations",
    "patches_computed", "patch_cache_hits", "edits_applied",
    "tasks_executed",
)


def blocks():
    seed_block = BlockSpec("seed", [StageSpec("seed", [
        LogicalTask("seed", read=(), write=(oid,), param_slot="v")
        for oid in DATA + [ACC]
    ])])
    iter_block = BlockSpec("iter", [
        StageSpec("map", [
            LogicalTask("combine", read=(DATA[i],), write=(OUT[i],))
            for i in range(len(DATA))
        ]),
        StageSpec("fold", [
            LogicalTask("combine", read=tuple(OUT) + (ACC,), write=(ACC,)),
        ]),
    ], returns={"acc": ACC})
    return seed_block, iter_block


def program(job):
    objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
    seed_block, iter_block = blocks()
    yield job.define(simple_define(objects))
    yield job.run(seed_block, {"v": 2})
    for _ in range(ITERATIONS):
        yield job.run(iter_block)


def run_cluster(chaos_plan=None, num_workers=3, **kwargs):
    cluster = NimbusCluster(num_workers, program,
                            registry=combine_registry(),
                            chaos_plan=chaos_plan, **kwargs)
    cluster.run_until_finished(max_seconds=1e5)
    return cluster


def final_values(cluster):
    return worker_values(cluster, OUT + [ACC])


def template_snapshot(cluster):
    return {name: cluster.metrics.count(name) for name in TEMPLATE_COUNTERS}


def expected_values():
    seed_block, iter_block = blocks()
    store = reference_execute(
        [(seed_block, {"v": 2})] + [(iter_block, {})] * ITERATIONS)
    return {oid: store[oid] for oid in OUT + [ACC]}


# ---------------------------------------------------------------------------
# The acceptance sweep: >= 20 chaos seeds, all bit-identical to fault-free
# ---------------------------------------------------------------------------
def test_chaos_runs_match_fault_free_across_20_seeds():
    baseline = run_cluster()
    base_values = final_values(baseline)
    base_templates = template_snapshot(baseline)
    assert base_values == expected_values()

    total_dups = 0.0
    total_retries = 0.0
    for chaos_seed in range(20):
        plan = FaultPlan.from_profile("lossy", seed=chaos_seed)
        cluster = run_cluster(chaos_plan=plan)
        assert final_values(cluster) == base_values, \
            f"chaos seed {chaos_seed} changed the results"
        # the control plane made the exact same template decisions
        assert template_snapshot(cluster) == base_templates, \
            f"chaos seed {chaos_seed} changed control-plane decisions"
        # ... while the transport provably did real work
        assert cluster.metrics.count("chaos.drops") > 0
        # retries and duplicate discards are asserted across the sweep, not
        # per seed: dispatch/completion batching shrank the message surface
        # enough that a given seed's few drops can all land on redundant
        # acks (every arrival is acked, including chaos duplicates), which
        # need no retransmission
        total_retries += cluster.metrics.count("protocol.retries")
        total_dups += cluster.metrics.count("protocol.dup_discards")
    assert total_retries > 0
    assert total_dups > 0


def test_incremental_validation_cross_checked_across_20_chaos_seeds(
        monkeypatch):
    """Property: across 20 chaos seeds, every incremental ``full_validate``
    the controller performs agrees with the brute-force precondition scan.

    ``CROSS_CHECK`` makes the validation layer itself raise on any
    divergence, so simply completing the sweep is the assertion; the
    counter check proves the cross-checked path actually ran.
    """
    from repro.core import validation

    monkeypatch.setattr(validation, "CROSS_CHECK", True)
    for chaos_seed in range(20):
        plan = FaultPlan.from_profile("lossy", seed=chaos_seed)
        cluster = run_cluster(chaos_plan=plan)
        assert cluster.metrics.count("full_validations") >= 1, \
            f"chaos seed {chaos_seed} never exercised full validation"


def test_chaos_plus_crash_sweep_matches_reference_across_20_seeds():
    """The full acceptance scenario: 5% drops + latency jitter + duplicates
    + reorders *and* one mid-run worker crash, across 20 chaos seeds —
    every run recovers and lands on the exact reference values.

    The crash fires at a program point (before the second-to-last
    iteration submits) rather than at a wall-clock time, because chaos
    stretches each seed's timeline differently — a fixed-time crash would
    land after the job ends on fast seeds and before the first checkpoint
    commits on slow ones.
    """
    expected = expected_values()
    total_dups = 0.0
    for chaos_seed in range(20):
        box = {}

        def crashing_program(job):
            objects = {oid: (f"o{oid}", 8) for oid in DATA + OUT + [ACC]}
            seed_block, iter_block = blocks()
            yield job.define(simple_define(objects))
            yield job.run(seed_block, {"v": 2})
            for i in range(ITERATIONS):
                if i == ITERATIONS - 2 and not box["cluster"].workers[2]._dead:
                    box["cluster"].workers[2].fail()
                yield job.run(iter_block)

        plan = FaultPlan.from_profile("lossy", seed=chaos_seed)
        cluster = NimbusCluster(
            3, crashing_program, registry=combine_registry(),
            chaos_plan=plan, checkpoint_every=1, heartbeat_timeout=1.0,
        )
        box["cluster"] = cluster
        cluster.start_fault_tolerance(heartbeat_interval=0.1,
                                      check_interval=0.2)
        cluster.run_until_finished(max_seconds=1e5)
        assert cluster.metrics.count("recoveries_completed") == 1, \
            f"chaos seed {chaos_seed}: crash did not land mid-run"
        assert final_values(cluster) == expected, \
            f"chaos seed {chaos_seed} diverged from the reference"
        assert cluster.metrics.count("protocol.retries") > 0
        total_dups += cluster.metrics.count("protocol.dup_discards")
    assert total_dups > 0


def test_replaying_a_chaos_seed_is_bit_identical():
    plan_a = FaultPlan.from_profile("lossy", seed=1234)
    plan_b = FaultPlan.from_profile("lossy", seed=1234)
    first = run_cluster(chaos_plan=plan_a)
    second = run_cluster(chaos_plan=plan_b)
    assert first.metrics.counters_snapshot() == second.metrics.counters_snapshot()
    assert first.network.fault_log == second.network.fault_log
    assert first.sim.now == second.sim.now
    assert final_values(first) == final_values(second)


# ---------------------------------------------------------------------------
# Reliable channels in isolation: exactly-once, in-order under hostile chaos
# ---------------------------------------------------------------------------
class Datum(Message):
    size_bytes = 64

    def __init__(self, tag):
        self.tag = tag


class Peer(P.ReliableEndpoint, Actor):
    def __init__(self, sim, name, metrics):
        super().__init__(sim, name)
        self._init_reliable(metrics)
        self.received = []

    def handle(self, msg):
        self.received.append(msg.tag)


def test_reliable_channel_is_exactly_once_in_order_under_hostile_chaos():
    from repro.chaos import ChaosNetwork

    plan = FaultPlan.from_profile("hostile", seed=99)
    sim = Simulator()
    metrics = Metrics()
    net = ChaosNetwork(sim, plan, metrics=metrics)
    alice = net.attach(Peer(sim, "alice", metrics))
    bob = net.attach(Peer(sim, "bob", metrics))
    for i in range(100):
        alice.send_reliable(bob, Datum(i))
    sim.run()
    assert bob.received == list(range(100))
    assert metrics.count("chaos.drops") > 0
    assert metrics.count("protocol.retries") > 0
    assert metrics.count("protocol.dup_discards") > 0
    assert metrics.count("protocol.reorder_holds") > 0
    assert not alice._rel_unacked  # every message was acknowledged


def test_plain_peers_fall_back_to_unreliable_sends():
    sim = Simulator()
    metrics = Metrics()
    from repro.sim.network import Network

    net = Network(sim, metrics=metrics)
    alice = net.attach(Peer(sim, "alice", metrics))

    class Bare(Actor):  # not a ReliableEndpoint; never acks
        def __init__(self, sim):
            super().__init__(sim, "bare")
            self.received = []

        def handle(self, msg):
            self.received.append(msg.tag)

    bare = net.attach(Bare(sim))
    alice.send_reliable(bare, Datum("x"))
    sim.run()
    assert bare.received == ["x"]
    assert not alice._rel_unacked  # no retransmission state was created
    assert metrics.count("protocol.retries") == 0


# ---------------------------------------------------------------------------
# Transient partitions: a paused worker is a crash-and-restart
# ---------------------------------------------------------------------------
def test_transient_worker_partition_is_masked_by_retransmission():
    plan = (FaultPlan(seed=0)
            .pause_actor(at=0.002, actor="worker-1", duration=0.4))
    cluster = run_cluster(chaos_plan=plan)
    assert final_values(cluster) == expected_values()
    # messages really were lost to the partition, then retransmitted
    assert cluster.metrics.count("net.partition_drops") > 0
    assert cluster.metrics.count("protocol.retries") > 0
    assert cluster.metrics.count("recoveries_completed") == 0


def test_chaos_plus_midrun_crash_still_recovers_to_correct_values():
    """Chaos and a real (permanent) crash compose: checkpoint recovery runs
    under a faulty network and still converges to the reference values."""
    plan = (FaultPlan.from_profile("lossy", seed=7)
            .crash_worker(at=0.9, worker=2))
    cluster = NimbusCluster(
        3, program, registry=combine_registry(), chaos_plan=plan,
        checkpoint_every=1, heartbeat_timeout=1.0,
    )
    cluster.start_fault_tolerance(heartbeat_interval=0.1, check_interval=0.2)
    cluster.run_until_finished(max_seconds=1e5)
    assert cluster.metrics.count("recoveries_completed") == 1
    assert cluster.metrics.count("driver_replays") == 1
    assert final_values(cluster) == expected_values()
    assert cluster.metrics.count("protocol.retries") > 0
