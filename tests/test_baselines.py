"""Tests for the Spark-like, Naiad-like, and MPI-like baselines."""

import numpy as np
import pytest

from repro.apps import LRApp, LRSpec
from repro.baselines import (
    MPICluster,
    NaiadCluster,
    SparkCluster,
    make_mpi_costs,
    make_spark_costs,
)
from repro.nimbus import NimbusCluster
from repro.nimbus import protocol as P
from repro.analysis import mean_iteration_time, task_throughput


def small_lr(**kwargs):
    defaults = dict(num_workers=2, data_bytes=2e9, partitions_per_worker=2,
                    dim=8, iterations=6, real_compute=True,
                    rows_per_partition=100)
    defaults.update(kwargs)
    return LRApp(LRSpec(**defaults))


def timing_lr(num_workers, iterations=12):
    return LRApp(LRSpec(num_workers=num_workers, iterations=iterations))


class TestSpark:
    def test_produces_same_results_as_nimbus(self):
        app_a = small_lr()
        nimbus = NimbusCluster(2, app_a.program(blocking=True),
                               registry=app_a.registry)
        nimbus.run_until_finished(max_seconds=1e5)
        app_b = small_lr()
        spark = SparkCluster(2, app_b.program(blocking=True),
                             registry=app_b.registry)
        spark.run_until_finished(max_seconds=1e5)
        assert np.allclose(nimbus.workers[0].store.get(app_a.coeff),
                           spark.workers[0].store.get(app_b.coeff))

    def test_cost_profile(self):
        costs = make_spark_costs()
        assert costs.central_schedule_per_task == pytest.approx(166e-6)
        assert costs.central_receive_per_task == 0.0

    def test_throughput_saturates_near_6000(self):
        """Fig. 8: Spark's scheduler caps near 6,000 tasks/second."""
        app = timing_lr(50)
        cluster = SparkCluster(50, app.program(blocking=False),
                               registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        throughput = task_throughput(cluster.metrics, "lr.iteration", skip=4)
        assert 3000 < throughput < 6100

    def test_no_templates_ever(self):
        app = small_lr()
        cluster = SparkCluster(2, app.program(blocking=True),
                               registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        assert cluster.metrics.count("template_instantiations") == 0
        assert cluster.metrics.count("worker_templates_installed") == 0

    def test_stage_barriers_serialize_blocks(self):
        """BSP: iteration completions are spaced by at least one
        iteration's serial dispatch time — blocks never overlap."""
        app = timing_lr(4, iterations=6)
        cluster = SparkCluster(4, app.program(blocking=False),
                               registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        ends = sorted(iv.end for iv in cluster.metrics.intervals["block"]
                      if iv.labels["block_id"] == "lr.iteration")
        tasks_per_iter = app.spec.num_partitions
        min_spacing = 0.9 * tasks_per_iter * 166e-6
        for before, after in zip(ends, ends[1:]):
            assert after - before >= min_spacing


class TestNaiad:
    def test_produces_same_results_as_nimbus(self):
        app_a = small_lr()
        nimbus = NimbusCluster(2, app_a.program(blocking=True),
                               registry=app_a.registry)
        nimbus.run_until_finished(max_seconds=1e5)
        app_b = small_lr()
        naiad = NaiadCluster(2, app_b.program(blocking=True),
                             registry=app_b.registry)
        naiad.run_until_finished(max_seconds=1e5)
        assert np.allclose(nimbus.workers[0].store.get(app_a.coeff),
                           naiad.workers[0].store.get(app_b.coeff))

    def test_installs_once_and_runs_distributed(self):
        app = small_lr(iterations=8)
        cluster = NaiadCluster(2, app.program(blocking=True),
                               registry=app.registry)
        cluster.run_until_finished(max_seconds=1e5)
        # one install per distinct block (init + iteration)
        assert cluster.metrics.count("naiad_installs") == 2
        # no central per-task scheduling after install
        assert cluster.metrics.count("full_validations") == 0
        assert cluster.metrics.count("auto_validations") == 0

    def test_migration_reinstalls_whole_graph(self):
        app = small_lr(iterations=10)
        box = {}
        base_program = app.program(blocking=True)

        def program(job):
            gen = base_program(job)
            count = 0
            value = None
            while True:
                try:
                    directive = gen.send(value)
                except StopIteration:
                    return
                count += 1
                if count == 6:
                    box["cluster"].controller.deliver(P.ManagerDirective(
                        lambda c: c.migrate_tasks("lr.iteration", [(0, 1)])))
                value = yield directive

        cluster = NaiadCluster(2, program, registry=app.registry)
        box["cluster"] = cluster
        cluster.run_until_finished(max_seconds=1e5)
        # install(init) + install(iteration) + reinstall(migration)
        assert cluster.metrics.count("naiad_installs") == 3
        assert cluster.metrics.count("edits_applied") == 0

    def test_workers_charge_callback_overhead(self):
        app = small_lr()
        cluster = NaiadCluster(2, app.program(blocking=True),
                               registry=app.registry)
        assert cluster.workers[0].callback_overhead == pytest.approx(
            cluster.costs.naiad_callback_per_task)


class TestMPI:
    def test_zero_control_costs(self):
        costs = make_mpi_costs()
        assert costs.central_schedule_per_task == 0.0
        assert costs.instantiate_worker_template_auto_per_task == 0.0
        assert costs.edit_per_task == 0.0
        # storage still behaves like storage
        assert costs.storage_bandwidth > 0

    def test_produces_same_results_as_nimbus(self):
        app_a = small_lr()
        nimbus = NimbusCluster(2, app_a.program(blocking=True),
                               registry=app_a.registry)
        nimbus.run_until_finished(max_seconds=1e5)
        app_b = small_lr()
        mpi = MPICluster(2, app_b.program(blocking=True),
                         registry=app_b.registry)
        mpi.run_until_finished(max_seconds=1e5)
        assert np.allclose(nimbus.workers[0].store.get(app_a.coeff),
                           mpi.workers[0].store.get(app_b.coeff))

    def test_faster_than_nimbus_which_beats_spark(self):
        """Fig. 11 ordering: MPI ≤ Nimbus ≪ Nimbus-without-templates, and
        Spark (central per-task) is the slowest control plane."""
        times = {}
        for name, cls, kwargs in (
            ("mpi", MPICluster, {}),
            ("nimbus", NimbusCluster, {"use_templates": True}),
            ("central", NimbusCluster, {"use_templates": False}),
            ("spark", SparkCluster, {}),
        ):
            # 40 workers: enough parallelism that a central per-task
            # control plane is the bottleneck (Fig. 1's regime)
            app = timing_lr(40, iterations=10)
            cluster = cls(40, app.program(blocking=False),
                          registry=app.registry, **kwargs)
            cluster.run_until_finished(max_seconds=1e5)
            times[name] = mean_iteration_time(
                cluster.metrics, "lr.iteration", skip=5)
        assert times["mpi"] <= times["nimbus"] * 1.05
        assert times["nimbus"] < 0.7 * times["central"]
        assert times["nimbus"] < 0.7 * times["spark"]
