"""Shared test helpers: tiny programs, reference interpreters, builders."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.spec import BlockSpec, LogicalTask, StageSpec
from repro.nimbus import FunctionRegistry, NimbusCluster


def combine_registry() -> FunctionRegistry:
    """Registry with a deterministic value-combining task function.

    ``combine`` writes a hash-like fold of its read payloads and parameter,
    so any reordering or missed copy changes the result — ideal for
    verifying read-latest-value semantics end to end.
    """
    registry = FunctionRegistry()

    def combine(ctx):
        acc = 17
        for value in ctx.reads():
            acc = (acc * 31 + (value if value is not None else 7)) % 1000003
        if ctx.params is not None:
            acc = (acc * 31 + ctx.params) % 1000003
        ctx.write(ctx.write_set[0], acc)

    def seed(ctx):
        ctx.write(ctx.write_set[0], ctx.params if ctx.params is not None else 1)

    registry.register("combine", fn=combine, duration=1e-3)
    registry.register("seed", fn=seed, duration=1e-4)
    return registry


def reference_execute(blocks: Sequence[Tuple[BlockSpec, Dict[str, Any]]],
                      initial: Optional[Dict[int, Any]] = None) -> Dict[int, Any]:
    """Sequential reference interpreter: run blocks in program order on a
    single global store, with the same ``combine``/``seed`` semantics."""
    store: Dict[int, Any] = dict(initial or {})
    for block, params in blocks:
        for _stage, task in block.all_tasks():
            param = params.get(task.param_slot) if task.param_slot else None
            if task.function == "seed":
                store[task.write[0]] = param if param is not None else 1
            elif task.function == "combine":
                acc = 17
                for oid in task.read:
                    value = store.get(oid)
                    acc = (acc * 31 + (value if value is not None else 7)) % 1000003
                if param is not None:
                    acc = (acc * 31 + param) % 1000003
                store[task.write[0]] = acc
            else:
                raise ValueError(f"unknown reference function {task.function}")
    return store


def run_program(program, registry, num_workers=2, use_templates=True,
                max_seconds=1e5, **kwargs):
    """Build a cluster, run the program to completion, return the cluster."""
    cluster = NimbusCluster(num_workers, program, registry=registry,
                            use_templates=use_templates, **kwargs)
    cluster.run_until_finished(max_seconds=max_seconds)
    return cluster


def simple_define(objects: Dict[int, Tuple[str, int]], homes=None):
    """Build a job.define() payload: {oid: (name, size)} (+ optional homes)."""
    homes = homes or {}
    return [(oid, name, 0, size, homes.get(oid))
            for oid, (name, size) in objects.items()]


def worker_values(cluster: NimbusCluster, oids) -> Dict[int, Any]:
    """Read each object's value from the worker holding its latest version."""
    directory = cluster.controller.directory
    out = {}
    for oid in oids:
        holders = directory.holders_of_latest(oid)
        assert holders, f"object {oid} has no latest holder"
        out[oid] = cluster.workers[min(holders)].store.get(oid)
    return out
